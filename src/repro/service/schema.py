"""Request/response schemas for the imputation service.

The wire format is plain JSON.  An ``/impute`` payload is either a batch::

    {"requests": [{"dataset": "DAN", "start": [lat, lng], "end": [lat, lng],
                   "id": "r0"}, ...],
     "config": {"resolution": 9}}

or the single-gap shorthand (``dataset``/``start``/``end`` at top level).
``config`` holds optional :class:`repro.core.HabitConfig` field overrides;
unknown fields are rejected rather than silently ignored.  Parsing raises
:class:`SchemaError` (mapped to HTTP 400 by the transport) with a message
naming the offending field.
"""

from dataclasses import asdict, dataclass, field, fields
from math import isfinite

import numpy as np

from repro.core import HabitConfig
from repro.io import linestring_feature

__all__ = [
    "GapRequest",
    "ImputeResult",
    "Provenance",
    "SchemaError",
    "build_config",
    "parse_impute_payload",
]


class SchemaError(ValueError):
    """An ``/impute`` payload does not match the request schema."""


@dataclass(frozen=True)
class GapRequest:
    """One gap to impute: a dataset name plus two ``(lat, lng)`` endpoints.

    ``typed=True`` routes the gap over the dataset's
    :class:`repro.core.TypedHabitImputer` (resolved and persisted under
    its own model id); ``vessel_type`` then picks the class-specific
    graph, falling back to the global one when omitted or unknown.

    ``max_points`` caps the response polyline: when the rendered path is
    longer, it is compressed to the budget with
    :func:`repro.geo.compress_to_budget` *after* the render memo, so
    cached paths stay budget-agnostic and a large budget is an exact
    no-op.  Must be an integer >= 2 when given.
    """

    dataset: str
    start: tuple
    end: tuple
    request_id: str = ""
    typed: bool = False
    vessel_type: str | None = None
    max_points: int | None = None


@dataclass(frozen=True)
class Provenance:
    """How one imputation was produced (attached to every result).

    ``cache`` records how the model was obtained: ``"hit"`` (in-memory),
    ``"load"`` (read from the registry directory) or ``"fit"`` (fitted on
    miss).  ``path_cache`` records the engine's snap-and-path cache tier
    for the *route*: ``"hit"`` (answered without touching the search
    kernel), ``"miss"`` (searched, now cached), ``"coalesced"`` (an
    identical route earlier in the same batch was searched once and this
    request rode the same kernel lane), ``"cross_batch"`` (an identical
    route submitted by a *different* concurrent request landed in the
    same micro-batching window and was searched once -- the
    cross-request extension of ``"coalesced"``; see
    :class:`repro.service.dispatch.BatchDispatcher`) or ``"bypass"``
    (uncacheable -- snap fallback or cache disabled).  ``expanded`` is
    the number of
    nodes the search that produced the route settled (0 for straight
    lines; preserved on cache hits even though the heap wasn't touched),
    so search quality is observable per served response -- with the
    default contraction-hierarchy search (``HabitConfig.search="ch"``)
    expect an order of magnitude fewer than the ALT landmark search
    reported.  ``revision``
    is the model's incremental-refresh counter (1 until the first
    :meth:`repro.service.ModelRegistry.refresh`), so clients can tell
    which vintage of the model answered.  ``executor`` records which
    batch executor ran the request -- ``"thread"`` (in-process pool, the
    default) or ``"process"`` (fanned to a worker process; see
    :class:`repro.service.BatchImputationEngine`).  ``path_length_m`` is
    the metric length of the returned polyline -- the path-cost measure
    exposed to clients.  When a request's ``max_points`` budget actually
    compressed the response, ``points_in``/``points_out`` record the
    polyline size before/after compression and ``max_sed_m`` the worst
    synchronized-Euclidean displacement of any dropped point; all three
    stay at their zero defaults when no points were dropped, so an
    over-large budget yields a response byte-identical to omitting it.
    """

    model_id: str
    cache: str
    method: str
    fallback: bool
    num_cells: int
    path_length_m: float
    elapsed_ms: float
    revision: int = 1
    path_cache: str = "bypass"
    expanded: int = 0
    executor: str = "thread"
    points_in: int = 0
    points_out: int = 0
    max_sed_m: float = 0.0

    def to_dict(self):
        """Plain-dict view for JSON responses."""
        return asdict(self)


@dataclass(frozen=True)
class ImputeResult:
    """An imputed path plus its provenance, tied back to the request."""

    request: GapRequest
    lats: np.ndarray = field(repr=False)
    lngs: np.ndarray = field(repr=False)
    provenance: Provenance

    @property
    def num_points(self):
        """Number of path positions."""
        return len(self.lats)

    def to_feature(self):
        """GeoJSON LineString feature with provenance in ``properties``."""
        properties = {
            "request_id": self.request.request_id,
            "dataset": self.request.dataset,
            **self.provenance.to_dict(),
        }
        return linestring_feature(self.lats, self.lngs, properties)


#: HabitConfig field name -> default value, used to coerce JSON overrides.
_CONFIG_DEFAULTS = {f.name: f.default for f in fields(HabitConfig)}


def build_config(overrides):
    """A :class:`HabitConfig` from a JSON override dict.

    Values are coerced to the type of the field's default; unknown field
    names raise :class:`SchemaError`.
    """
    if overrides is None:
        return HabitConfig()
    if not isinstance(overrides, dict):
        raise SchemaError("config must be a JSON object of HabitConfig overrides")
    unknown = sorted(set(overrides) - set(_CONFIG_DEFAULTS))
    if unknown:
        raise SchemaError(
            f"unknown config fields: {', '.join(unknown)}; "
            f"valid fields are {', '.join(sorted(_CONFIG_DEFAULTS))}"
        )
    kwargs = {}
    for name, value in overrides.items():
        default = _CONFIG_DEFAULTS[name]
        try:
            if isinstance(default, bool):
                coerced = bool(value)
            elif isinstance(default, int):
                coerced = int(value)
            elif isinstance(default, float):
                coerced = float(value)
            else:
                coerced = str(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"config field {name!r}: cannot coerce {value!r}") from exc
        kwargs[name] = coerced
    return HabitConfig(**kwargs)


def _parse_endpoint(value, where):
    if not isinstance(value, (list, tuple)) or len(value) != 2:
        raise SchemaError(f"{where} must be a [lat, lng] pair")
    try:
        lat, lng = float(value[0]), float(value[1])
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"{where} must hold two numbers, got {value!r}") from exc
    if not (isfinite(lat) and isfinite(lng)):
        raise SchemaError(f"{where} must be finite, got {value!r}")
    if not (-90.0 <= lat <= 90.0 and -180.0 <= lng <= 180.0):
        raise SchemaError(f"{where} out of range: lat {lat}, lng {lng}")
    return (lat, lng)


def _parse_request(item, index):
    if not isinstance(item, dict):
        raise SchemaError(f"requests[{index}] must be a JSON object")
    dataset = item.get("dataset")
    if not isinstance(dataset, str) or not dataset.strip():
        raise SchemaError(f"requests[{index}].dataset must be a non-empty string")
    request_id = str(item.get("id", f"req-{index}"))
    typed = item.get("typed", False)
    if not isinstance(typed, bool):
        raise SchemaError(f"requests[{index}].typed must be a boolean")
    vessel_type = item.get("vessel_type")
    if vessel_type is not None and not isinstance(vessel_type, str):
        raise SchemaError(f"requests[{index}].vessel_type must be a string")
    max_points = item.get("max_points")
    if max_points is not None:
        if isinstance(max_points, bool) or not isinstance(max_points, int):
            raise SchemaError(
                f"requests[{index}].max_points must be an integer >= 2, "
                f"got {max_points!r}"
            )
        if max_points < 2:
            raise SchemaError(
                f"requests[{index}].max_points must be >= 2 "
                f"(both endpoints are always kept), got {max_points}"
            )
    return GapRequest(
        dataset=dataset.strip(),
        start=_parse_endpoint(item.get("start"), f"requests[{index}].start"),
        end=_parse_endpoint(item.get("end"), f"requests[{index}].end"),
        request_id=request_id,
        typed=typed,
        vessel_type=vessel_type,
        max_points=max_points,
    )


def parse_impute_payload(payload):
    """Validate an ``/impute`` body; returns ``(requests, config)``."""
    if not isinstance(payload, dict):
        raise SchemaError("payload must be a JSON object")
    raw = payload.get("requests")
    if raw is None and "dataset" in payload:
        raw = [payload]  # single-gap shorthand
    if not isinstance(raw, list) or not raw:
        raise SchemaError(
            "payload must carry a non-empty 'requests' list "
            "(or top-level dataset/start/end for a single gap)"
        )
    config = build_config(payload.get("config"))
    return [_parse_request(item, i) for i, item in enumerate(raw)], config
