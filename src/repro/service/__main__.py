"""CLI daemon: ``python -m repro.service``.

Fit models into a registry directory, serve them over HTTP, or both::

    python -m repro.service --fit DAN --fit KIEL      # populate the registry
    python -m repro.service --serve --port 8080       # serve what's there
    python -m repro.service --fit DAN --serve         # one-shot demo

    curl -s localhost:8080/impute -d \\
      '{"dataset": "DAN", "start": [55.7, 11.9], "end": [55.9, 11.8]}'
"""

import argparse

from repro.core import HabitConfig
from repro.service.http import make_server
from repro.service.registry import ModelRegistry

__all__ = ["main"]


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Fit HABIT models into a registry and/or serve them over HTTP.",
    )
    parser.add_argument(
        "--fit",
        action="append",
        default=[],
        metavar="DATASET",
        help="fit-and-save this dataset (repeatable; DAN, KIEL, SAR)",
    )
    parser.add_argument(
        "--typed",
        action="store_true",
        help="fit TypedHabitImputer models (per-vessel-class graphs) instead of plain",
    )
    parser.add_argument("--serve", action="store_true", help="start the HTTP daemon")
    parser.add_argument(
        "--registry",
        default=".cache/repro/models",
        help="model registry directory (default: %(default)s)",
    )
    parser.add_argument(
        "--data-cache",
        default=".cache/repro",
        help="prepared-dataset cache directory (default: %(default)s)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="dataset scale for fitting (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--capacity", type=int, default=8, help="LRU cache size in models"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="imputation thread-pool size"
    )
    parser.add_argument(
        "--fit-on-miss",
        action="store_true",
        help="fit (at --scale) when a requested model is neither cached nor on disk",
    )
    default = HabitConfig()
    model = parser.add_argument_group("model config")
    model.add_argument("--resolution", type=int, default=default.resolution)
    model.add_argument("--tolerance-m", type=float, default=default.tolerance_m)
    model.add_argument(
        "--projection", choices=("center", "median"), default=default.projection
    )
    model.add_argument(
        "--edge-weight",
        choices=("transitions", "inverse_frequency"),
        default=default.edge_weight,
    )
    model.add_argument("--resample-m", type=float, default=default.resample_m)
    return parser


def _config_from_args(args):
    return HabitConfig(
        resolution=args.resolution,
        tolerance_m=args.tolerance_m,
        projection=args.projection,
        edge_weight=args.edge_weight,
        resample_m=args.resample_m,
    )


def main(argv=None):
    parser = _build_parser()
    args = parser.parse_args(argv)
    if not args.fit and not args.serve:
        parser.error("nothing to do: pass --fit DATASET and/or --serve")
    config = _config_from_args(args)

    # Imported lazily: --serve alone must not pay for the experiments layer.
    if args.fit:
        from repro.experiments.fit import fit_and_save

        for dataset in args.fit:
            report = fit_and_save(
                dataset,
                config=config,
                registry_dir=args.registry,
                scale=args.scale,
                seed=args.seed,
                cache_dir=args.data_cache,
                typed=args.typed,
            )
            print(
                f"fitted {report.model_id} -> {report.path} "
                f"({report.storage_bytes} bytes, {report.train_rows} train rows, "
                f"{report.fit_seconds:.2f}s)"
            )

    if args.serve:
        fitter = None
        if args.fit_on_miss:
            from repro.experiments.fit import dataset_fitter

            fitter = dataset_fitter(
                scale=args.scale, seed=args.seed, cache_dir=args.data_cache
            )
        registry = ModelRegistry(args.registry, capacity=args.capacity, fitter=fitter)
        server = make_server(
            registry, host=args.host, port=args.port, max_workers=args.workers
        )
        host, port = server.server_address[:2]
        print(f"serving on http://{host}:{port} (registry: {args.registry})")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()


if __name__ == "__main__":
    main()
