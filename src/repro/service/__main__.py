"""CLI daemon: ``python -m repro.service``.

Fit models into a registry directory, serve them over HTTP, or both --
and optionally keep a served model live-refreshed from a growing dump::

    python -m repro.service --fit DAN --fit KIEL      # populate the registry
    python -m repro.service --serve --port 8080       # serve what's there
    python -m repro.service --fit DAN --serve         # one-shot demo

    # live refresh: tail a growing dump, refresh DAN's model on cadence
    python -m repro.service --fit DAN --serve --follow dumps/dan-live.csv

    curl -s localhost:8080/impute -d \\
      '{"dataset": "DAN", "start": [55.7, 11.9], "end": [55.9, 11.8]}'
    curl -s localhost:8080/models     # revision / last_refresh feed

Every flag is documented in ``--help`` and, with operational context, in
``docs/OPERATIONS.md``.
"""

import argparse

from repro.ais.reader import DEFAULT_CHUNK_ROWS
from repro.core import SEARCH_METHODS, HabitConfig
from repro.service.http import make_server
from repro.service.registry import ModelRegistry

__all__ = ["main"]


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=(
            "Fit HABIT models into a registry, serve them over HTTP, and/or "
            "live-refresh a served model from a growing AIS dump."
        ),
    )
    parser.add_argument(
        "--fit",
        action="append",
        default=[],
        metavar="DATASET",
        help="fit-and-save this dataset (repeatable; DAN, KIEL, SAR)",
    )
    parser.add_argument(
        "--typed",
        action="store_true",
        help=(
            "fit TypedHabitImputer models (per-vessel-class graphs) instead of "
            "plain; with --follow, refresh the typed model"
        ),
    )
    parser.add_argument("--serve", action="store_true", help="start the HTTP daemon")
    parser.add_argument(
        "--registry",
        default=".cache/repro/models",
        help="model registry directory (default: %(default)s)",
    )
    parser.add_argument(
        "--data-cache",
        default=".cache/repro",
        help="prepared-dataset cache directory (default: %(default)s)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="dataset scale for fitting (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed for fitting")
    parser.add_argument("--host", default="127.0.0.1", help="bind address for --serve")
    parser.add_argument("--port", type=int, default=8080, help="bind port for --serve")
    parser.add_argument(
        "--capacity", type=int, default=8, help="LRU cache size in models"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="imputation executor fan-out width"
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help=(
            "batch executor: 'thread' (in-process, lowest latency) or 'process' "
            "(worker processes for CPU-bound batches; recorded in provenance)"
        ),
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help=(
            "cross-request micro-batching window: concurrent requests "
            "arriving within this many milliseconds fuse their cache-missed "
            "searches into one kernel call (a lone request never waits; "
            "0 disables the dispatcher; default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--batch-max-lanes",
        type=int,
        default=64,
        metavar="N",
        help=(
            "flush a micro-batching window early once this many search "
            "lanes are pending (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--fit-on-miss",
        action="store_true",
        help="fit (at --scale) when a requested model is neither cached nor on disk",
    )
    parser.add_argument(
        "--metrics",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "collect per-stage metrics and serve them at GET /metrics "
            "(Prometheus text; ?format=json for JSON); --no-metrics disables "
            "collection process-wide and 404s the route"
        ),
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help=(
            "emit one JSON object per served request (route, status, "
            "latency_ms, batch size, request ids) to stderr or --log-file; "
            "off by default"
        ),
    )
    parser.add_argument(
        "--log-file",
        metavar="PATH",
        default=None,
        help="append the --log-json access log to this file instead of stderr",
    )
    follow = parser.add_argument_group("live refresh (requires --serve)")
    follow.add_argument(
        "--follow",
        metavar="DUMP_CSV",
        default=None,
        help=(
            "tail this growing AIS dump and fold newly closed trips into the "
            "--follow-dataset model on a cadence (revision visible at /models)"
        ),
    )
    follow.add_argument(
        "--follow-dataset",
        metavar="DATASET",
        default=None,
        help=(
            "model the follow loop refreshes (default: the single --fit dataset "
            "when exactly one was given)"
        ),
    )
    follow.add_argument(
        "--refresh-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="minimum seconds between model refreshes (default: %(default)s)",
    )
    follow.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="seconds between dump polls (default: %(default)s)",
    )
    follow.add_argument(
        "--chunk-rows",
        type=int,
        default=DEFAULT_CHUNK_ROWS,
        metavar="ROWS",
        help="max source rows parsed per chunk (default: %(default)s)",
    )
    follow.add_argument(
        "--buffer-budget",
        type=int,
        default=None,
        metavar="ROWS",
        help=(
            "cap each vessel's open-trip buffer at this many rows, "
            "compressing longer open trips by SED rank (bounded ingest "
            "memory per vessel; default: unbounded)"
        ),
    )
    default = HabitConfig()
    model = parser.add_argument_group("model config")
    model.add_argument(
        "--resolution", type=int, default=default.resolution, help="hex grid resolution"
    )
    model.add_argument(
        "--tolerance-m",
        type=float,
        default=default.tolerance_m,
        help="RDP simplification tolerance in metres",
    )
    model.add_argument(
        "--projection",
        choices=("center", "median"),
        default=default.projection,
        help="node placement: cell centres or per-cell medians",
    )
    model.add_argument(
        "--edge-weight",
        choices=("transitions", "inverse_frequency"),
        default=default.edge_weight,
        help="edge cost scheme",
    )
    model.add_argument(
        "--resample-m",
        type=float,
        default=default.resample_m,
        help="output point spacing in metres",
    )
    model.add_argument(
        "--search",
        choices=SEARCH_METHODS,
        default=default.search,
        help=(
            "query search variant (all equal-cost): 'ch' (contraction "
            "hierarchy, precomputed at fit time; fewest expansions), 'alt' "
            "(landmark heuristic), 'bidirectional', 'astar', 'dijkstra'"
        ),
    )
    model.add_argument(
        "--num-landmarks",
        type=int,
        default=default.num_landmarks,
        help="ALT landmark count (used when --search alt)",
    )
    return parser


def _config_from_args(args):
    return HabitConfig(
        resolution=args.resolution,
        tolerance_m=args.tolerance_m,
        projection=args.projection,
        edge_weight=args.edge_weight,
        resample_m=args.resample_m,
        search=args.search,
        num_landmarks=args.num_landmarks,
    )


def main(argv=None):
    parser = _build_parser()
    args = parser.parse_args(argv)
    if not args.fit and not args.serve:
        parser.error("nothing to do: pass --fit DATASET and/or --serve")
    if args.follow and not args.serve:
        parser.error("--follow requires --serve (the refresh loop rides the daemon)")
    follow_dataset = args.follow_dataset
    if args.follow and follow_dataset is None:
        if len(args.fit) == 1:
            follow_dataset = args.fit[0]
        else:
            parser.error(
                "--follow needs --follow-dataset (or exactly one --fit DATASET)"
            )
    if args.log_file and not args.log_json:
        parser.error("--log-file only applies with --log-json")
    if args.buffer_budget is not None:
        if not args.follow:
            parser.error("--buffer-budget only applies with --follow")
        if args.buffer_budget < 2:
            parser.error("--buffer-budget must be >= 2")
    if not args.metrics:
        # Process-wide switch: every instrumented layer's observations
        # become cheap no-ops, not just the /metrics route.
        from repro.obs import METRICS

        METRICS.set_enabled(False)
    config = _config_from_args(args)

    # Imported lazily: --serve alone must not pay for the experiments layer.
    if args.fit:
        from repro.experiments.fit import fit_and_save

        for dataset in args.fit:
            report = fit_and_save(
                dataset,
                config=config,
                registry_dir=args.registry,
                scale=args.scale,
                seed=args.seed,
                cache_dir=args.data_cache,
                typed=args.typed,
            )
            print(
                f"fitted {report.model_id} -> {report.path} "
                f"({report.storage_bytes} bytes, {report.train_rows} train rows, "
                f"{report.fit_seconds:.2f}s)"
            )

    if args.serve:
        fitter = None
        if args.fit_on_miss:
            from repro.experiments.fit import dataset_fitter

            fitter = dataset_fitter(
                scale=args.scale, seed=args.seed, cache_dir=args.data_cache
            )
        registry = ModelRegistry(args.registry, capacity=args.capacity, fitter=fitter)
        follow = None
        if args.follow:
            from repro.service.follow import FollowDaemon

            follow = FollowDaemon(
                registry,
                args.follow,
                follow_dataset,
                config=config,
                typed=args.typed,
                refresh_interval_s=args.refresh_interval,
                poll_interval_s=args.poll_interval,
                chunk_rows=args.chunk_rows,
                buffer_budget=args.buffer_budget,
            ).start()
            print(
                f"following {args.follow} -> {follow_dataset} "
                f"(refresh every {args.refresh_interval:g}s)"
            )
        server = make_server(
            registry,
            host=args.host,
            port=args.port,
            max_workers=args.workers,
            executor=args.executor,
            follow=follow,
            metrics=args.metrics,
            log_json=args.log_json,
            log_file=args.log_file,
            batch_window_ms=args.batch_window_ms,
            batch_max_lanes=args.batch_max_lanes,
        )
        host, port = server.server_address[:2]
        print(
            f"serving on http://{host}:{port} "
            f"(registry: {args.registry}, executor: {args.executor})"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            if follow is not None:
                follow.stop()
            server.server_close()
            server.engine.close()
            if server.access_log_file is not None:
                server.access_log_file.close()


if __name__ == "__main__":
    main()
