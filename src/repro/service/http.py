"""JSON-over-HTTP transport on the stdlib ``http.server``.

Three routes:

- ``GET /healthz`` -- liveness plus registry cache counters (hits /
  loads / fits / evictions / refreshes) and, when a follow daemon is
  attached, its ``follow`` status block (rows read, trips closed,
  refreshes, current revision, last error).
- ``GET /models``  -- the model/revision feed: every model in the
  registry directory (id, dataset, config hash, size, whether it is
  warm in memory) plus its freshness fields -- ``revision``,
  ``last_refresh``, ``rows_ingested`` -- so clients can detect a stale
  model without imputing through it.
- ``POST /impute`` -- a batch of gap requests (see
  :mod:`repro.service.schema`); the response carries per-request
  provenance and a GeoJSON FeatureCollection of the imputed paths.

Schema violations map to 400, unresolvable models to 404, everything
else to 500 with the error message in the body.  The server is a
:class:`ThreadingHTTPServer`, so requests run concurrently; all shared
state lives in the (locked) registry, the read-only models, and the
follow daemon's own locked status snapshot.
"""

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.io import feature_collection
from repro.service.engine import BatchImputationEngine
from repro.service.registry import ModelNotFound
from repro.service.schema import SchemaError, parse_impute_payload

__all__ = ["make_server"]


def make_server(
    registry, host="127.0.0.1", port=8080, max_workers=None, executor="thread", follow=None
):
    """A ready-to-run HTTP server over *registry*.

    *executor* picks the batch engine's fan-out (``"thread"`` or
    ``"process"``, see :class:`repro.service.BatchImputationEngine`);
    *follow* optionally attaches a started
    :class:`repro.service.FollowDaemon`, surfaced under ``/healthz``.
    Pass ``port=0`` to bind an ephemeral port (tests); the chosen port is
    ``server.server_address[1]``.  The caller owns the serve loop (and
    the engine shutdown -- ``server.engine.close()`` releases a process
    pool)::

        server = make_server(registry, port=8080)
        server.serve_forever()
    """
    engine = BatchImputationEngine(registry, max_workers=max_workers, executor=executor)

    class Handler(_ServiceHandler):
        pass

    Handler.engine = engine
    Handler.registry = registry
    Handler.follow = follow
    Handler.started_monotonic = time.monotonic()
    server = ThreadingHTTPServer((host, port), Handler)
    server.engine = engine  # so callers can close() a process pool
    return server


class _ServiceHandler(BaseHTTPRequestHandler):
    engine = None
    registry = None
    follow = None
    started_monotonic = 0.0
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a serving daemon
    # under load (and the test suite) wants that off.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _send_json(self, status, payload):
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):
        if self.path == "/healthz":
            stats = self.registry.stats
            payload = {
                "status": "ok",
                "uptime_s": time.monotonic() - self.started_monotonic,
                "models_loaded": len(self.registry.loaded_ids),
                "executor": self.engine.executor,
                "cache": {
                    "hits": stats.hits,
                    "loads": stats.loads,
                    "fits": stats.fits,
                    "evictions": stats.evictions,
                    "refreshes": stats.refreshes,
                },
            }
            if self.follow is not None:
                payload["follow"] = self.follow.status()
            self._send_json(200, payload)
        elif self.path == "/models":
            self._send_json(200, {"models": self.registry.list_models()})
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self):
        if self.path != "/impute":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"")
        except (ValueError, TypeError):
            self._send_json(400, {"error": "body is not valid JSON"})
            return
        try:
            requests, config = parse_impute_payload(payload)
            started = time.perf_counter()
            results = self.engine.run(requests, config)
            elapsed_ms = (time.perf_counter() - started) * 1e3
        except SchemaError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        except ModelNotFound as exc:
            self._send_json(404, {"error": exc.args[0]})
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self._send_json(
            200,
            {
                "count": len(results),
                "elapsed_ms": elapsed_ms,
                "results": [
                    {
                        "request_id": r.request.request_id,
                        "dataset": r.request.dataset,
                        "num_points": r.num_points,
                        "provenance": r.provenance.to_dict(),
                    }
                    for r in results
                ],
                "geojson": feature_collection(r.to_feature() for r in results),
            },
        )
