"""JSON-over-HTTP transport on the stdlib ``http.server``.

Four routes:

- ``GET /healthz`` -- liveness plus registry cache counters (hits /
  loads / fits / evictions / refreshes), the engine's snap-and-path
  cache block (``path_cache``: hits / misses / entries / capacity --
  worker-side counts included in process mode via the metrics merge)
  and, when a follow daemon is attached, its ``follow`` status block
  (rows read, trips closed, refreshes, current revision, last error).
- ``GET /models``  -- the model/revision feed: every model in the
  registry directory (id, dataset, config hash, size, whether it is
  warm in memory) plus its freshness fields -- ``revision``,
  ``last_refresh``, ``rows_ingested`` -- so clients can detect a stale
  model without imputing through it.
- ``GET /metrics`` -- the process-wide :data:`repro.obs.METRICS`
  registry in Prometheus text exposition format (0.0.4); append
  ``?format=json`` for the same data as JSON.  Covers every layer:
  search variants, fit stages, registry tiers, path-cache tiers, follow
  cycles, HTTP routes -- including process-pool worker activity, which
  the engine merges back from batch metric deltas.  404 when the server
  was built with ``metrics=False``.
- ``POST /impute`` -- a batch of gap requests (see
  :mod:`repro.service.schema`); the response carries per-request
  provenance and a GeoJSON FeatureCollection of the imputed paths.
  A request's optional ``max_points`` caps its response polyline via
  budget compression (:mod:`repro.geo.budget`); the provenance then
  reports ``points_in``/``points_out``/``max_sed_m``.

Schema violations map to 400, unresolvable models to 404, everything
else to 500 with the error message in the body.  The server is a
:class:`ThreadingHTTPServer`, so requests run concurrently -- one
handler thread per connection; all shared state lives in the (locked)
registry, the read-only models, the follow daemon's own locked status
snapshot, and the (locked) metrics registry.  Concurrency is also what
the engine's micro-batching dispatcher feeds on: handler threads
submitting cache-missed searches within the same bounded window share
one kernel call (see :mod:`repro.service.dispatch`).

Every request is counted and timed into
``repro_http_requests_total{route,status}`` /
``repro_http_request_seconds{route}`` (the route label is bounded to
the known routes plus ``other`` so a scanner cannot explode the label
space).  The stdlib's stderr request log stays off; pass
``log_json=True`` (CLI ``--log-json``) for an opt-in structured access
log instead -- one JSON object per line (route, method, status,
latency_ms, batch size and request ids for ``/impute``) to stderr or
``log_file``.
"""

import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.io import feature_collection
from repro.obs import METRICS
from repro.service.engine import BatchImputationEngine
from repro.service.registry import ModelNotFound
from repro.service.schema import SchemaError, parse_impute_payload

__all__ = ["make_server"]

_HTTP_REQUESTS_TOTAL = METRICS.counter(
    "repro_http_requests_total",
    "HTTP requests served, by route and status code.",
    ("route", "status"),
)
_HTTP_REQUEST_SECONDS = METRICS.histogram(
    "repro_http_request_seconds",
    "HTTP request wall-clock latency in seconds, by route.",
    ("route",),
)

#: Routes that get their own metric label; everything else is "other"
#: so arbitrary paths cannot grow the label space.
_KNOWN_ROUTES = ("/healthz", "/models", "/metrics", "/impute")


def make_server(
    registry,
    host="127.0.0.1",
    port=8080,
    max_workers=None,
    executor="thread",
    follow=None,
    metrics=True,
    log_json=False,
    log_file=None,
    batch_window_ms=2.0,
    batch_max_lanes=64,
):
    """A ready-to-run HTTP server over *registry*.

    *executor* picks the batch engine's fan-out (``"thread"`` or
    ``"process"``, see :class:`repro.service.BatchImputationEngine`);
    *batch_window_ms* / *batch_max_lanes* configure the engine's
    cross-request micro-batching dispatcher (thread mode; ``0``
    disables it -- see :class:`repro.service.dispatch.BatchDispatcher`);
    *follow* optionally attaches a started
    :class:`repro.service.FollowDaemon`, surfaced under ``/healthz``.
    *metrics* controls the ``GET /metrics`` route and this transport's
    own request counters (it does not flip the process-wide
    :data:`repro.obs.METRICS` switch -- the CLI's ``--no-metrics``
    does that).  *log_json* enables the structured access log, to
    *log_file* (append) or stderr; the opened handle is exposed as
    ``server.access_log_file`` (``None`` for stderr) and is the
    caller's to close.  Pass ``port=0`` to bind an ephemeral port
    (tests); the chosen port is ``server.server_address[1]``.  The
    caller owns the serve loop (and the engine shutdown --
    ``server.engine.close()`` releases a process pool)::

        server = make_server(registry, port=8080)
        server.serve_forever()
    """
    engine = BatchImputationEngine(
        registry,
        max_workers=max_workers,
        executor=executor,
        batch_window_ms=batch_window_ms,
        batch_max_lanes=batch_max_lanes,
    )

    class Handler(_ServiceHandler):
        pass

    Handler.engine = engine
    Handler.registry = registry
    Handler.follow = follow
    Handler.started_monotonic = time.monotonic()
    Handler.metrics_enabled = bool(metrics)
    access_log_file = None
    if log_json:
        if log_file:
            access_log_file = open(log_file, "a", encoding="utf-8")
            Handler.access_log = access_log_file
        else:
            Handler.access_log = sys.stderr
        Handler.access_log_lock = threading.Lock()
    server = ThreadingHTTPServer((host, port), Handler)
    server.engine = engine  # so callers can close() a process pool
    server.access_log_file = access_log_file
    return server


class _ServiceHandler(BaseHTTPRequestHandler):
    engine = None
    registry = None
    follow = None
    started_monotonic = 0.0
    metrics_enabled = True
    access_log = None  # file-like; None disables the JSON access log
    access_log_lock = None
    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a serving daemon
    # under load (and the test suite) wants that off.  The structured
    # replacement is the opt-in JSON access log in _finish_request.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    # -- response plumbing -------------------------------------------------

    def _route_label(self):
        path = self.path.split("?", 1)[0]
        return path if path in _KNOWN_ROUTES else "other"

    def _send_json(self, status, payload):
        self._send_body(status, json.dumps(payload).encode("utf-8"), "application/json")

    def _send_body(self, status, body, content_type):
        # Count and log *before* the body hits the socket: a client that
        # has read its response is guaranteed to find the request already
        # counted in its very next scrape (and the access-log line
        # already flushed).  The latency span covers all the request
        # handling; only the loopback write itself falls outside it.
        self._finish_request(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _finish_request(self, status):
        route = self._route_label()
        elapsed = time.perf_counter() - self._request_started
        if self.metrics_enabled:
            _HTTP_REQUESTS_TOTAL.inc(1, (route, str(int(status))))
            _HTTP_REQUEST_SECONDS.observe(elapsed, (route,))
        if self.access_log is not None:
            record = {
                "ts": round(time.time(), 3),
                "route": route,
                "path": self.path,
                "method": self.command,
                "status": int(status),
                "latency_ms": round(elapsed * 1e3, 3),
            }
            record.update(self._log_fields)
            line = json.dumps(record)
            with self.access_log_lock:
                self.access_log.write(line + "\n")
                self.access_log.flush()

    # -- routes ------------------------------------------------------------

    def do_GET(self):
        self._request_started = time.perf_counter()
        self._log_fields = {}
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            stats = self.registry.stats
            payload = {
                "status": "ok",
                "uptime_s": time.monotonic() - self.started_monotonic,
                "models_loaded": len(self.registry.loaded_ids),
                "executor": self.engine.executor,
                "cache": {
                    "hits": stats.hits,
                    "loads": stats.loads,
                    "fits": stats.fits,
                    "evictions": stats.evictions,
                    "refreshes": stats.refreshes,
                },
                "path_cache": self.engine.path_cache_stats(),
            }
            if self.follow is not None:
                payload["follow"] = self.follow.status()
            self._send_json(200, payload)
        elif path == "/models":
            self._send_json(200, {"models": self.registry.list_models()})
        elif path == "/metrics":
            if not self.metrics_enabled:
                self._send_json(404, {"error": "metrics are disabled (--no-metrics)"})
            elif "format=json" in query.split("&"):
                self._send_json(200, METRICS.render_json())
            else:
                self._send_body(
                    200,
                    METRICS.render_prometheus().encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self):
        self._request_started = time.perf_counter()
        self._log_fields = {}
        if self.path != "/impute":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"")
        except (ValueError, TypeError):
            self._send_json(400, {"error": "body is not valid JSON"})
            return
        try:
            requests, config = parse_impute_payload(payload)
            self._log_fields = {
                "batch": len(requests),
                "request_ids": [r.request_id for r in requests],
            }
            started = time.perf_counter()
            results = self.engine.run(requests, config)
            elapsed_ms = (time.perf_counter() - started) * 1e3
        except SchemaError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        except ModelNotFound as exc:
            self._send_json(404, {"error": exc.args[0]})
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self._send_json(
            200,
            {
                "count": len(results),
                "elapsed_ms": elapsed_ms,
                "results": [
                    {
                        "request_id": r.request.request_id,
                        "dataset": r.request.dataset,
                        "num_points": r.num_points,
                        "provenance": r.provenance.to_dict(),
                    }
                    for r in results
                ],
                "geojson": feature_collection(r.to_feature() for r in results),
            },
        )
