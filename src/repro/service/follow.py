"""Live-refresh ingest: tail a growing AIS dump, refresh served models.

:class:`FollowDaemon` is the continuous half of fit-once/serve-many.  A
background thread owns the whole ingest pipeline for one model::

    CsvFollower.poll() -> clean_messages -> StreamingSegmenter.push
        -> (closed trips accumulate) -> ModelRegistry.refresh on cadence

Each cycle polls the dump for appended rows (only complete lines are
consumed), cleans and segments them incrementally (open trips carry
across polls, so a trip spanning two appends segments exactly as it
would in one pass), and -- at most every ``refresh_interval_s`` seconds,
and only when new trips actually closed -- folds the closed trips into
the served model via :meth:`repro.service.ModelRegistry.refresh`.  The
refresh bumps the model ``revision``, which clients observe through the
``/models`` feed (``revision``, ``last_refresh``, ``rows_ingested``)
without the daemon restarting or the served instance ever being mutated.

Ownership is strictly single-threaded on the ingest side: the follower,
segmenter and pending-trip buffer belong to the daemon thread alone;
the only shared touch points are the (locked) registry and the status
snapshot (guarded by one mutex, read by ``/healthz``).  A failed cycle
-- the dump rotated, rows arrived behind a vessel's segmentation
barrier, the model cannot refresh -- stops the loop and surfaces the
error in :meth:`FollowDaemon.status` rather than spinning on a poisoned
feed; serving itself is unaffected.
"""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.ais import CsvFollower, schema
from repro.ais.reader import DEFAULT_CHUNK_ROWS
from repro.core import HabitConfig, StreamingSegmenter, clean_messages
from repro.minidb import Table
from repro.obs import METRICS

__all__ = ["FollowDaemon"]

_CYCLE_SECONDS = METRICS.histogram(
    "repro_follow_cycle_seconds",
    "Follow-daemon ingest cycle duration in seconds "
    "(poll + clean + segment + maybe-refresh).",
)
_ROWS_TOTAL = METRICS.counter(
    "repro_follow_rows_total",
    "Source rows read from the followed dump.",
)
_TRIPS_TOTAL = METRICS.counter(
    "repro_follow_trips_closed_total",
    "Trips closed by incremental segmentation and folded into refreshes.",
)
_REFRESHES_TOTAL = METRICS.counter(
    "repro_follow_refreshes_total",
    "Served-model refreshes performed by the follow daemon.",
)
_REFRESH_LAG = METRICS.gauge(
    "repro_follow_refresh_lag_seconds",
    "Seconds since the follow daemon's last successful refresh.",
)
_PENDING_ROWS = METRICS.gauge(
    "repro_follow_pending_rows",
    "Closed-trip rows buffered and awaiting the next refresh.",
)


class FollowDaemon:
    """Tails one AIS dump and keeps one registry model fresh.

    Parameters:

    - *registry*: the :class:`repro.service.ModelRegistry` to refresh
      into (shared with the serving engine).
    - *path*: the growing CSV dump to tail (same header dialects as
      :func:`repro.ais.read_csv`; may not exist yet).
    - *dataset*: the model to refresh.  It must be resolvable -- fit it
      first or give the registry a fitter -- and must carry its fit
      state (models saved with ``include_state=False`` refuse refresh).
    - *config*: the model's :class:`repro.core.HabitConfig` (default
      config if omitted); *typed* selects the dataset's typed model.
    - *refresh_interval_s*: minimum seconds between refreshes; closed
      trips buffer between refreshes, so a slow cadence batches more
      work per graph rebuild.
    - *poll_interval_s*: how often the dump is polled for appended rows.
    - *chunk_rows*: max source rows parsed per chunk (memory bound).
    - *max_gap_s* / *max_jump_m* / *min_points*: segmentation thresholds,
      matching :func:`repro.core.segment_trips` defaults.
    - *buffer_budget*: cap each vessel's open-trip buffer at this many
      rows (CLI ``--buffer-budget``).  Longer open trips are compressed
      in place by SED rank (see
      :class:`repro.core.StreamingSegmenter`), so ingest memory stays
      O(budget) per vessel no matter how long a vessel transmits
      without a trip break; ``None`` (the default) keeps the exact
      unbounded behaviour.

    ``start()`` launches the daemon thread; ``stop()`` joins it.  A trip
    only closes once its vessel shows a later gap/jump (or another trip),
    so the freshest open trip per vessel is always still buffered -- that
    is segmentation correctness, not ingest lag.
    """

    def __init__(
        self,
        registry,
        path,
        dataset,
        config=None,
        typed=False,
        refresh_interval_s=5.0,
        poll_interval_s=0.5,
        chunk_rows=DEFAULT_CHUNK_ROWS,
        max_gap_s=1800.0,
        max_jump_m=5000.0,
        min_points=2,
        buffer_budget=None,
    ):
        self.registry = registry
        self.dataset = str(dataset)
        self.config = config or HabitConfig()
        self.typed = bool(typed)
        self.refresh_interval_s = float(refresh_interval_s)
        self.poll_interval_s = float(poll_interval_s)
        self._follower = CsvFollower(path, chunk_rows=chunk_rows)
        self._segmenter = StreamingSegmenter(
            max_gap_s, max_jump_m, min_points, buffer_budget=buffer_budget
        )
        self._backlog = []  # polled-but-unsegmented chunks (crash-retryable)
        self._pending = []  # closed-trip tables awaiting the next refresh
        self._pending_rows = 0
        # The follower's resume point, persisted next to the model after
        # every successful refresh: restarting the daemon must continue
        # from the refreshed offset, not re-ingest the dump from byte 0
        # into a model that already contains it.  Trips still *open* at
        # shutdown are the documented (bounded) loss; delete the file to
        # deliberately start over.
        model_id = registry.model_id(self.dataset, self.config, self.typed)
        self._state_path = Path(registry.root) / f"{model_id}.follow.json"
        self._stop = threading.Event()
        self._thread = None
        self._last_refresh_monotonic = None  # feeds the refresh-lag gauge
        self._lifecycle = threading.Lock()  # serialises start()/stop()
        self._status_lock = threading.Lock()
        self._status = {
            "path": str(self._follower.path),
            "dataset": self.dataset,
            "typed": self.typed,
            "running": False,
            "rows_read": 0,
            "open_rows": 0,
            "buffer_budget": buffer_budget,
            "trips_closed": 0,
            "refreshes": 0,
            "revision": None,
            "last_refresh": None,
            "last_error": None,
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Start the ingest thread (idempotent); returns self.

        Resumes from the persisted follow state when one exists (see
        ``{model_id}.follow.json`` in the registry directory).  Called
        after a timed-out :meth:`stop`, it un-signals the still-running
        thread instead of abandoning it -- the loop keeps going rather
        than dying silently once its in-flight refresh completes.
        """
        with self._lifecycle:
            thread = self._thread
            if thread is not None and thread.is_alive():
                # Cancel a timed-out stop(), then confirm the thread
                # really kept running -- it may have passed its final
                # stop check already and be mid-exit.
                self._stop.clear()
                thread.join(timeout=0.1)
                if thread.is_alive():
                    with self._status_lock:
                        self._status["running"] = True
                    return self
            self._thread = None
            if self._follower.rows_read == 0 and self._state_path.exists():
                self._resume_from_sidecar()
            self._stop.clear()
            with self._status_lock:
                self._status["running"] = True
                self._status["last_error"] = None
            self._thread = threading.Thread(
                target=self._run, name=f"follow-{self.dataset}", daemon=True
            )
            self._thread.start()
            return self

    def _resume_from_sidecar(self):
        """Restore the follower from its persisted state, refusing a
        resume point that predates the model's current revision (a crash
        between the model republish and the sidecar write left an offset
        whose rows the model already contains)."""
        with open(self._state_path, encoding="utf-8") as handle:
            state = json.load(handle)
        recorded = state.get("revision")
        if recorded is not None:
            _, current = self.registry.peek_revision(
                self.dataset, self.config, typed=self.typed
            )
            if current is not None and current != recorded:
                raise RuntimeError(
                    f"{self._state_path}: follow state was written at model "
                    f"revision {recorded} but the model is at {current}; "
                    "resuming would re-ingest (or skip) rows -- re-baseline: "
                    "refit the model and delete this file"
                )
        self._follower.resume(state)
        with self._status_lock:
            self._status["rows_read"] = self._follower.rows_read

    def stop(self, timeout=10.0):
        """Signal the thread to exit and join it; returns True once dead.

        A refresh mid-flight (graph rebuild, landmark precompute) can
        outlive *timeout*; in that case the handle is kept so a later
        ``start()`` cannot race a second ingest thread onto the same
        follower/segmenter state -- call ``stop()`` again to finish the
        join.
        """
        with self._lifecycle:
            self._stop.set()
            thread = self._thread
            if thread is not None:
                thread.join(timeout=timeout)
                if thread.is_alive():
                    return False  # still draining; state stays owned by it
                self._thread = None
            with self._status_lock:
                self._status["running"] = False
            return True

    def status(self):
        """JSON-ready snapshot: rows read, trips closed, refreshes,
        current revision, last refresh time, last error (if the loop
        died).  Served under ``/healthz`` as the ``follow`` block."""
        with self._status_lock:
            return dict(self._status)

    # -- ingest loop -------------------------------------------------------

    def _run(self):
        last_refresh = 0.0
        try:
            while not self._stop.is_set():
                cycle_started = time.perf_counter()
                got_data = self._ingest_once()
                last_refresh = self._maybe_refresh(last_refresh)
                _CYCLE_SECONDS.observe(time.perf_counter() - cycle_started)
                _PENDING_ROWS.set(self._pending_rows)
                if self._last_refresh_monotonic is not None:
                    _REFRESH_LAG.set(time.monotonic() - self._last_refresh_monotonic)
                if not got_data:
                    # Feed drained: sleep one poll interval.  While a
                    # backlog is draining, loop immediately instead.
                    self._stop.wait(self.poll_interval_s)
        except Exception as exc:  # surface, never spin on a poisoned feed
            with self._status_lock:
                self._status["last_error"] = f"{type(exc).__name__}: {exc}"
        finally:
            with self._status_lock:
                self._status["running"] = False

    def _ingest_once(self):
        """One byte-bounded poll; clean, segment, and buffer closed trips.

        Returns whether anything new arrived.  Polls are bounded
        (``CsvFollower.MAX_POLL_BYTES``) and :meth:`_maybe_refresh` runs
        between polls with a pending-rows threshold, so catching up on a
        large backlog holds one slice plus at most ~chunk_rows of closed
        trips in memory, never the archive.

        Polled chunks queue on the daemon and dequeue only after
        segmentation succeeds: the follower's byte offset advances at
        poll time, so a mid-batch failure must not discard its
        still-unprocessed chunks -- they stay queued for the restart,
        and the failing chunk itself re-raises rather than being skipped.
        """
        got_data = False
        if not self._backlog:
            self._backlog = self._follower.poll()
            got_data = bool(self._backlog)
            if got_data:
                rows_read = self._follower.rows_read
                with self._status_lock:
                    previously_read = self._status["rows_read"]
                    self._status["rows_read"] = rows_read
                _ROWS_TOTAL.inc(rows_read - previously_read)
        while self._backlog:
            trips = self._segmenter.push(clean_messages(self._backlog[0]))
            self._backlog.pop(0)
            if trips.num_rows:
                self._pending.append(trips)
                self._pending_rows += trips.num_rows
        with self._status_lock:
            self._status["open_rows"] = self._segmenter.open_rows
        return got_data

    def _maybe_refresh(self, last_refresh):
        """Refresh when the cadence elapsed or the buffer grew past one
        chunk (the backlog-drain bound); returns the new cadence mark."""
        now = time.monotonic()
        if not self._pending:
            return last_refresh
        if (
            now - last_refresh < self.refresh_interval_s
            and self._pending_rows < self._follower.chunk_rows
        ):
            return last_refresh
        self._refresh_pending()
        return now

    def _refresh_pending(self):
        """Fold every buffered closed trip into the served model.

        The buffer is cleared only after the refresh succeeds: a
        transient failure (say, a full disk at republish time) stops the
        loop with the trips still pending, so a later ``start()``
        retries them instead of silently dropping rows the follower's
        offset has already moved past.
        """
        chunk = self._pending[0] if len(self._pending) == 1 else Table.concat(self._pending)
        trips_closed = len(np.unique(np.asarray(chunk.column(schema.TRIP_ID))))
        _, _, revision = self.registry.refresh(
            self.dataset, chunk, self.config, typed=self.typed
        )
        self._pending = []
        self._pending_rows = 0
        self._save_state(revision)
        self._last_refresh_monotonic = time.monotonic()
        _TRIPS_TOTAL.inc(int(trips_closed))
        _REFRESHES_TOTAL.inc()
        _REFRESH_LAG.set(0.0)
        with self._status_lock:
            self._status["trips_closed"] += int(trips_closed)
            self._status["refreshes"] += 1
            self._status["revision"] = revision
            self._status["last_refresh"] = time.time()

    def _save_state(self, revision):
        """Atomically persist the follower's resume point (tmp + replace).

        The model *revision* this offset corresponds to rides along, so
        a crash between the model republish and this write is detected
        at the next start (revision mismatch) instead of silently
        re-ingesting the already-refreshed chunk.
        """
        payload = dict(self._follower.state(), revision=revision)
        tmp = self._state_path.with_name(self._state_path.name + f".tmp-{os.getpid()}")
        try:
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(tmp, self._state_path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
