"""Model registry: fit-once / serve-many over ``.npz``-serialised models.

A registry owns one directory of fitted models -- plain
:class:`repro.core.HabitImputer` and typed
:class:`repro.core.TypedHabitImputer` alike -- one file per
``(dataset, config, typed)`` triple.  The file name *is* the model id --
``{DATASET}_{config_hash}.npz``, with a ``_TYPED`` marker for typed
models -- so any process pointed at the same directory resolves the same
ids without coordination.

:meth:`ModelRegistry.get` resolves a model through three tiers:

1. in-memory LRU cache (``"hit"``),
2. the registry directory (``"load"``),
3. an optional ``fitter(dataset, config)`` callback that fits on miss and
   publishes the result for every later process (``"fit"``).  A fitter
   that also accepts ``typed=True`` serves typed misses too.

:meth:`ModelRegistry.refresh` is the incremental path: it merges a chunk
of newly arrived (segmented) trips into the resolved model's fit state,
rebuilds the graph, bumps the model ``revision`` -- surfaced in response
provenance -- and republishes.  The served instance is never mutated:
the refreshed model *replaces* it in cache and on disk, so in-flight
queries keep reading the old read-only graph.

Cache bookkeeping is guarded by one registry lock, while slow work
(disk loads, fits, refreshes) runs outside it under a per-model-id lock --
a cold fit never blocks cache hits on other models or ``/healthz``, and
concurrent misses on the same model dedupe to one load/fit.
"""

import inspect
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.core import (
    HabitConfig,
    HabitImputer,
    ModelFormatError,
    TypedHabitImputer,
    config_hash,
)

__all__ = ["ModelNotFound", "ModelRegistry", "RegistryStats"]

#: Model-id marker separating typed multi-graph models from plain ones.
_TYPED_TAG = "_TYPED"


class ModelNotFound(KeyError):
    """No cached, on-disk, or fittable model matches the request."""

    def __init__(self, dataset, digest, typed=False):
        self.dataset = dataset
        self.digest = digest
        self.typed = typed
        kind = "typed model" if typed else "model"
        super().__init__(
            f"no {kind} for dataset {dataset!r} with config hash {digest}; "
            "fit one first (python -m repro.service --fit) or enable fit-on-miss"
        )


@dataclass(frozen=True)
class RegistryStats:
    """Counters for the three resolution tiers plus evictions/refreshes."""

    hits: int
    loads: int
    fits: int
    evictions: int
    refreshes: int = 0


class ModelRegistry:
    """Thread-safe LRU cache over a directory of serialised models."""

    def __init__(self, root, capacity=8, fitter=None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.capacity = max(int(capacity), 1)
        self.fitter = fitter
        self._cache = OrderedDict()  # model_id -> imputer
        self._lock = threading.RLock()
        # One lock per model id serialises its load/fit/refresh without
        # holding the registry lock; entries are tiny and bounded by
        # distinct models seen, so they are never reclaimed.
        self._resolving = {}
        self._hits = self._loads = self._fits = self._evictions = 0
        self._refreshes = 0

    # -- naming -----------------------------------------------------------

    @staticmethod
    def model_id(dataset, config, typed=False):
        """Canonical id: dataset name (upper), typed marker, config hash."""
        tag = _TYPED_TAG if typed else ""
        return f"{str(dataset).upper()}{tag}_{config_hash(config)}"

    def path_for(self, dataset, config, typed=False):
        """Where the model for ``(dataset, config, typed)`` lives on disk."""
        return self.root / f"{self.model_id(dataset, config, typed)}.npz"

    # -- population -------------------------------------------------------

    def publish(self, dataset, imputer):
        """Serialise a fitted imputer into the registry; returns ``(id, path)``.

        Typed imputers are recognised by type and published under the
        typed id.  The model is also inserted into the in-memory cache so
        the publishing process serves it warm immediately.
        """
        typed = isinstance(imputer, TypedHabitImputer)
        model_id = self.model_id(dataset, imputer.config, typed)
        path = imputer.save(self.root / f"{model_id}.npz")
        with self._lock:
            self._insert(model_id, imputer)
        return model_id, path

    # -- resolution -------------------------------------------------------

    def get(self, dataset, config, typed=False):
        """Resolve ``(dataset, config, typed)``; returns ``(imputer, id, source)``.

        ``source`` is ``"hit"``, ``"load"``, or ``"fit"`` -- surfaced in
        response provenance so clients can see cold starts.  An
        unreadable file on disk (interrupted save, stale format) falls
        through to the fitter when one is configured -- a corrupt
        artefact must not poison its model id.  Raises
        :class:`ModelNotFound` when all three tiers miss.
        """
        model_id = self.model_id(dataset, config, typed)
        hit = self._cached(model_id)
        if hit is not None:
            return hit
        with self._model_lock(model_id):
            # Another thread may have resolved it while we waited.
            hit = self._cached(model_id)
            if hit is not None:
                return hit
            path = self.root / f"{model_id}.npz"
            loader = TypedHabitImputer if typed else HabitImputer
            if path.exists():
                try:
                    imputer = loader.load(path)
                except ModelFormatError:
                    if self.fitter is None:
                        raise
                else:
                    with self._lock:
                        self._loads += 1
                        self._insert(model_id, imputer)
                    return imputer, model_id, "load"
            imputer = self._fit_on_miss(dataset, config, typed)
            if imputer is not None:
                imputer.save(path)
                with self._lock:
                    self._fits += 1
                    self._insert(model_id, imputer)
                return imputer, model_id, "fit"
        raise ModelNotFound(dataset, config_hash(config), typed)

    def refresh(self, dataset, chunk, config=None, typed=False):
        """Merge newly arrived segmented trips into a served model.

        Resolves the model like :meth:`get`, folds *chunk* (a segmented
        trip table, e.g. one :class:`repro.core.StreamingSegmenter`
        emission) into its fit state, bumps the model ``revision``, and
        republishes to cache and disk.  Returns
        ``(imputer, model_id, revision)``.

        Typed models have no incremental path yet and raise
        ``ValueError``; so do models whose file was saved without fit
        state.
        """
        if typed:
            raise ValueError("typed models cannot be refreshed incrementally yet")
        config = config or HabitConfig()
        model_id = self.model_id(dataset, config)
        base, _, _ = self.get(dataset, config)
        with self._model_lock(model_id):
            with self._lock:
                base = self._cache.get(model_id, base)
            if base._state is None:
                raise ValueError(
                    f"model {model_id} was saved without its fit state and "
                    "cannot be refreshed incrementally; refit from the full "
                    "history"
                )
            # Replace, never mutate: in-flight queries keep the old
            # instance alive; states are immutable so sharing one is safe.
            fresh = HabitImputer(base.config)
            fresh._state = base._state
            fresh.revision = base.revision
            fresh.update(chunk)
            fresh.save(self.root / f"{model_id}.npz")
            with self._lock:
                self._refreshes += 1
                self._insert(model_id, fresh)
        return fresh, model_id, fresh.revision

    def _model_lock(self, model_id):
        with self._lock:
            return self._resolving.setdefault(model_id, threading.Lock())

    def _fit_on_miss(self, dataset, config, typed):
        """Run the fitter if it exists and can serve this request."""
        if self.fitter is None:
            return None
        if not typed:
            return self.fitter(dataset, config)
        try:
            inspect.signature(self.fitter).bind(dataset, config, typed=True)
        except TypeError:
            return None  # fitter predates typed serving
        return self.fitter(dataset, config, typed=True)

    def _cached(self, model_id):
        with self._lock:
            if model_id in self._cache:
                self._cache.move_to_end(model_id)
                self._hits += 1
                return self._cache[model_id], model_id, "hit"
        return None

    def _insert(self, model_id, imputer):
        self._cache[model_id] = imputer
        self._cache.move_to_end(model_id)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self._evictions += 1

    # -- introspection ----------------------------------------------------

    @property
    def stats(self):
        """Current :class:`RegistryStats` snapshot."""
        with self._lock:
            return RegistryStats(
                self._hits, self._loads, self._fits, self._evictions, self._refreshes
            )

    @property
    def loaded_ids(self):
        """Model ids currently cached in memory, LRU-oldest first."""
        with self._lock:
            return list(self._cache)

    def evict_all(self):
        """Drop every cached model (files on disk are untouched)."""
        with self._lock:
            self._cache.clear()

    def list_models(self):
        """All models in the registry directory, as JSON-ready dicts."""
        with self._lock:
            loaded = set(self._cache)
        entries = []
        for path in sorted(self.root.glob("*.npz")):
            model_id = path.stem
            dataset, _, digest = model_id.rpartition("_")
            typed = dataset.endswith(_TYPED_TAG)
            if typed:
                dataset = dataset[: -len(_TYPED_TAG)]
            entries.append(
                {
                    "model_id": model_id,
                    "dataset": dataset,
                    "config_hash": digest,
                    "typed": typed,
                    "path": str(path),
                    "size_bytes": path.stat().st_size,
                    "loaded": model_id in loaded,
                }
            )
        return entries
