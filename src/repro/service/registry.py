"""Model registry: fit-once / serve-many over ``.npz``-serialised models.

A registry owns one directory of fitted :class:`repro.core.HabitImputer`
models, one file per ``(dataset, config)`` pair.  The file name *is* the
model id -- ``{DATASET}_{config_hash}.npz`` -- so any process pointed at
the same directory resolves the same ids without coordination.

:meth:`ModelRegistry.get` resolves a model through three tiers:

1. in-memory LRU cache (``"hit"``),
2. the registry directory (``"load"``),
3. an optional ``fitter(dataset, config)`` callback that fits on miss and
   publishes the result for every later process (``"fit"``).

Cache bookkeeping is guarded by one registry lock, while slow work
(disk loads, fits) runs outside it under a per-model-id lock -- a cold
fit never blocks cache hits on other models or ``/healthz``, and
concurrent misses on the same model dedupe to one load/fit.  Imputers
themselves are read-only after fit, and in-flight queries keep evicted
models alive by reference.
"""

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.core import HabitImputer, ModelFormatError, config_hash

__all__ = ["ModelNotFound", "ModelRegistry", "RegistryStats"]


class ModelNotFound(KeyError):
    """No cached, on-disk, or fittable model matches the request."""

    def __init__(self, dataset, digest):
        self.dataset = dataset
        self.digest = digest
        super().__init__(
            f"no model for dataset {dataset!r} with config hash {digest}; "
            "fit one first (python -m repro.service --fit) or enable fit-on-miss"
        )


@dataclass(frozen=True)
class RegistryStats:
    """Counters for the three resolution tiers plus evictions."""

    hits: int
    loads: int
    fits: int
    evictions: int


class ModelRegistry:
    """Thread-safe LRU cache over a directory of serialised models."""

    def __init__(self, root, capacity=8, fitter=None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.capacity = max(int(capacity), 1)
        self.fitter = fitter
        self._cache = OrderedDict()  # model_id -> HabitImputer
        self._lock = threading.RLock()
        # One lock per model id serialises its load/fit without holding
        # the registry lock; entries are tiny and bounded by distinct
        # models seen, so they are never reclaimed.
        self._resolving = {}
        self._hits = self._loads = self._fits = self._evictions = 0

    # -- naming -----------------------------------------------------------

    @staticmethod
    def model_id(dataset, config):
        """Canonical id: dataset name (upper) + stable config hash."""
        return f"{str(dataset).upper()}_{config_hash(config)}"

    def path_for(self, dataset, config):
        """Where the model for ``(dataset, config)`` lives on disk."""
        return self.root / f"{self.model_id(dataset, config)}.npz"

    # -- population -------------------------------------------------------

    def publish(self, dataset, imputer):
        """Serialise a fitted imputer into the registry; returns ``(id, path)``.

        The model is also inserted into the in-memory cache so the
        publishing process serves it warm immediately.
        """
        model_id = self.model_id(dataset, imputer.config)
        path = imputer.save(self.root / f"{model_id}.npz")
        with self._lock:
            self._insert(model_id, imputer)
        return model_id, path

    # -- resolution -------------------------------------------------------

    def get(self, dataset, config):
        """Resolve ``(dataset, config)``; returns ``(imputer, id, source)``.

        ``source`` is ``"hit"``, ``"load"``, or ``"fit"`` -- surfaced in
        response provenance so clients can see cold starts.  An
        unreadable file on disk (interrupted save, pre-versioning model)
        falls through to the fitter when one is configured -- a corrupt
        artefact must not poison its model id.  Raises
        :class:`ModelNotFound` when all three tiers miss.
        """
        model_id = self.model_id(dataset, config)
        hit = self._cached(model_id)
        if hit is not None:
            return hit
        with self._lock:
            resolving = self._resolving.setdefault(model_id, threading.Lock())
        with resolving:
            # Another thread may have resolved it while we waited.
            hit = self._cached(model_id)
            if hit is not None:
                return hit
            path = self.root / f"{model_id}.npz"
            if path.exists():
                try:
                    imputer = HabitImputer.load(path)
                except ModelFormatError:
                    if self.fitter is None:
                        raise
                else:
                    with self._lock:
                        self._loads += 1
                        self._insert(model_id, imputer)
                    return imputer, model_id, "load"
            if self.fitter is not None:
                imputer = self.fitter(dataset, config)
                imputer.save(path)
                with self._lock:
                    self._fits += 1
                    self._insert(model_id, imputer)
                return imputer, model_id, "fit"
        raise ModelNotFound(dataset, config_hash(config))

    def _cached(self, model_id):
        with self._lock:
            if model_id in self._cache:
                self._cache.move_to_end(model_id)
                self._hits += 1
                return self._cache[model_id], model_id, "hit"
        return None

    def _insert(self, model_id, imputer):
        self._cache[model_id] = imputer
        self._cache.move_to_end(model_id)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self._evictions += 1

    # -- introspection ----------------------------------------------------

    @property
    def stats(self):
        """Current :class:`RegistryStats` snapshot."""
        with self._lock:
            return RegistryStats(self._hits, self._loads, self._fits, self._evictions)

    @property
    def loaded_ids(self):
        """Model ids currently cached in memory, LRU-oldest first."""
        with self._lock:
            return list(self._cache)

    def evict_all(self):
        """Drop every cached model (files on disk are untouched)."""
        with self._lock:
            self._cache.clear()

    def list_models(self):
        """All models in the registry directory, as JSON-ready dicts."""
        with self._lock:
            loaded = set(self._cache)
        entries = []
        for path in sorted(self.root.glob("*.npz")):
            model_id = path.stem
            dataset, _, digest = model_id.rpartition("_")
            entries.append(
                {
                    "model_id": model_id,
                    "dataset": dataset,
                    "config_hash": digest,
                    "path": str(path),
                    "size_bytes": path.stat().st_size,
                    "loaded": model_id in loaded,
                }
            )
        return entries
