"""Model registry: fit-once / serve-many over ``.npz``-serialised models.

A registry owns one directory of fitted models -- plain
:class:`repro.core.HabitImputer` and typed
:class:`repro.core.TypedHabitImputer` alike -- one file per
``(dataset, config, typed)`` triple.  The file name *is* the model id --
``{DATASET}_{config_hash}.npz``, with a ``_TYPED`` marker for typed
models -- so any process pointed at the same directory resolves the same
ids without coordination.

:meth:`ModelRegistry.get` resolves a model through three tiers:

1. in-memory LRU cache (``"hit"``),
2. the registry directory (``"load"``),
3. an optional ``fitter(dataset, config)`` callback that fits on miss and
   publishes the result for every later process (``"fit"``).  A fitter
   that also accepts ``typed=True`` serves typed misses too.

:meth:`ModelRegistry.refresh` is the incremental path: it merges a chunk
of newly arrived (segmented) trips into the resolved model's fit state
(plain models) or per-class fit states (typed models), rebuilds the
graph(s), bumps the model ``revision`` -- surfaced in response provenance
and the ``/models`` feed -- and republishes.  The served instance is
never mutated: the refreshed model *replaces* it in cache and on disk,
so in-flight queries keep reading the old read-only graph.  Per-model
refresh bookkeeping (``last_refresh``, ``rows_ingested``) rides into
:meth:`ModelRegistry.list_models` so clients can monitor freshness.

Cache bookkeeping is guarded by one registry lock, while slow work
(disk loads, fits, refreshes) runs outside it under a per-model-id lock --
a cold fit never blocks cache hits on other models or ``/healthz``, and
concurrent misses on the same model dedupe to one load/fit.
"""

import inspect
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core import (
    HabitConfig,
    HabitImputer,
    ModelFormatError,
    TypedHabitImputer,
    config_hash,
)
from repro.obs import METRICS

__all__ = ["ModelNotFound", "ModelRegistry", "RegistryStats"]

_RESOLUTIONS_TOTAL = METRICS.counter(
    "repro_registry_resolutions_total",
    "Model resolutions by tier (hit = warm LRU, load = disk, fit = fit-on-miss).",
    ("tier",),
)
_REGISTRY_SECONDS = METRICS.histogram(
    "repro_registry_seconds",
    "Registry slow-path duration in seconds, by operation (load, fit, refresh).",
    ("op",),
)
_EVICTIONS_TOTAL = METRICS.counter(
    "repro_registry_evictions_total",
    "Models evicted from the in-memory LRU cache.",
)
_MODELS_LOADED = METRICS.gauge(
    "repro_registry_models_loaded",
    "Models currently warm in this process's LRU cache.",
)

#: Model-id marker separating typed multi-graph models from plain ones.
_TYPED_TAG = "_TYPED"


class ModelNotFound(KeyError):
    """No cached, on-disk, or fittable model matches the request."""

    def __init__(self, dataset, digest, typed=False):
        self.dataset = dataset
        self.digest = digest
        self.typed = typed
        kind = "typed model" if typed else "model"
        super().__init__(
            f"no {kind} for dataset {dataset!r} with config hash {digest}; "
            "fit one first (python -m repro.service --fit) or enable fit-on-miss"
        )


@dataclass(frozen=True)
class RegistryStats:
    """Counters for the three resolution tiers plus evictions/refreshes."""

    hits: int
    loads: int
    fits: int
    evictions: int
    refreshes: int = 0


class ModelRegistry:
    """Thread-safe LRU cache over a directory of serialised models."""

    def __init__(self, root, capacity=8, fitter=None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.capacity = max(int(capacity), 1)
        self.fitter = fitter
        self._cache = OrderedDict()  # model_id -> imputer
        self._lock = threading.RLock()
        # One lock per model id serialises its load/fit/refresh without
        # holding the registry lock; entries are tiny and bounded by
        # distinct models seen, so they are never reclaimed.
        self._resolving = {}
        self._hits = self._loads = self._fits = self._evictions = 0
        self._refreshes = 0
        # Per-model refresh bookkeeping for the /models feed: model_id ->
        # {"last_refresh": epoch seconds, "rows_ingested": cumulative rows,
        #  "refreshes": count}.  In-memory (daemon-local), like stats.
        self._refresh_meta = {}
        # path -> (mtime_ns, revision) memo for the polled /models feed;
        # publishes go through an atomic replace, so mtime is a reliable
        # invalidation key and repeat polls cost one stat per cold model.
        self._revision_memo = {}

    # -- naming -----------------------------------------------------------

    @staticmethod
    def model_id(dataset, config, typed=False):
        """Canonical id: dataset name (upper), typed marker, config hash."""
        tag = _TYPED_TAG if typed else ""
        return f"{str(dataset).upper()}{tag}_{config_hash(config)}"

    def path_for(self, dataset, config, typed=False):
        """Where the model for ``(dataset, config, typed)`` lives on disk."""
        return self.root / f"{self.model_id(dataset, config, typed)}.npz"

    # -- population -------------------------------------------------------

    def publish(self, dataset, imputer):
        """Serialise a fitted imputer into the registry; returns ``(id, path)``.

        Typed imputers are recognised by type and published under the
        typed id.  The model is also inserted into the in-memory cache so
        the publishing process serves it warm immediately.
        """
        typed = isinstance(imputer, TypedHabitImputer)
        model_id = self.model_id(dataset, imputer.config, typed)
        path = imputer.save(self.root / f"{model_id}.npz")
        with self._lock:
            self._insert(model_id, imputer)
        return model_id, path

    # -- resolution -------------------------------------------------------

    def get(self, dataset, config, typed=False):
        """Resolve ``(dataset, config, typed)``; returns ``(imputer, id, source)``.

        ``source`` is ``"hit"``, ``"load"``, or ``"fit"`` -- surfaced in
        response provenance so clients can see cold starts.  An
        unreadable file on disk (interrupted save, stale format) falls
        through to the fitter when one is configured -- a corrupt
        artefact must not poison its model id.  Raises
        :class:`ModelNotFound` when all three tiers miss.
        """
        model_id = self.model_id(dataset, config, typed)
        hit = self._cached(model_id)
        if hit is not None:
            return hit
        with self._model_lock(model_id):
            # Another thread may have resolved it while we waited.
            hit = self._cached(model_id)
            if hit is not None:
                return hit
            path = self.root / f"{model_id}.npz"
            loader = TypedHabitImputer if typed else HabitImputer
            if path.exists():
                started = time.perf_counter()
                try:
                    imputer = loader.load(path)
                except ModelFormatError:
                    if self.fitter is None:
                        raise
                else:
                    _REGISTRY_SECONDS.observe(time.perf_counter() - started, ("load",))
                    _RESOLUTIONS_TOTAL.inc(1, ("load",))
                    with self._lock:
                        self._loads += 1
                        self._insert(model_id, imputer)
                    return imputer, model_id, "load"
            started = time.perf_counter()
            imputer = self._fit_on_miss(dataset, config, typed)
            if imputer is not None:
                imputer.save(path)
                _REGISTRY_SECONDS.observe(time.perf_counter() - started, ("fit",))
                _RESOLUTIONS_TOTAL.inc(1, ("fit",))
                with self._lock:
                    self._fits += 1
                    self._insert(model_id, imputer)
                return imputer, model_id, "fit"
        raise ModelNotFound(dataset, config_hash(config), typed)

    def refresh(self, dataset, chunk, config=None, typed=False):
        """Merge newly arrived segmented trips into a served model.

        Resolves the model like :meth:`get`, folds *chunk* (a segmented
        trip table, e.g. one :class:`repro.core.StreamingSegmenter`
        emission) into its fit state -- per-class states for typed models
        -- bumps the model ``revision``, and republishes to cache and
        disk.  Returns ``(imputer, model_id, revision)``.

        The served instance is never mutated: the base model is *forked*
        (states are immutable and shared), the fork absorbs the chunk,
        and the fork replaces the original in cache and on disk --
        in-flight queries keep reading the old graph.  Models whose file
        was saved without fit state raise ``ValueError``.
        """
        config = config or HabitConfig()
        model_id = self.model_id(dataset, config, typed)
        base, _, _ = self.get(dataset, config, typed=typed)
        with self._model_lock(model_id), _REGISTRY_SECONDS.time(("refresh",)):
            with self._lock:
                base = self._cache.get(model_id, base)
            # Replace, never mutate: fork() shares the (immutable) fit
            # states and raises ValueError on state-less artefacts.
            fresh = base.fork()
            fresh.update(chunk)
            fresh.save(self.root / f"{model_id}.npz")
            now = time.time()
            with self._lock:
                self._refreshes += 1
                meta = self._refresh_meta.setdefault(
                    model_id, {"refreshes": 0, "rows_ingested": 0, "last_refresh": None}
                )
                meta["refreshes"] += 1
                meta["rows_ingested"] += int(chunk.num_rows)
                meta["last_refresh"] = now
                self._insert(model_id, fresh)
        return fresh, model_id, fresh.revision

    def _model_lock(self, model_id):
        with self._lock:
            return self._resolving.setdefault(model_id, threading.Lock())

    def _fit_on_miss(self, dataset, config, typed):
        """Run the fitter if it exists and can serve this request."""
        if self.fitter is None:
            return None
        if not typed:
            return self.fitter(dataset, config)
        try:
            inspect.signature(self.fitter).bind(dataset, config, typed=True)
        except TypeError:
            return None  # fitter predates typed serving
        return self.fitter(dataset, config, typed=True)

    def _cached(self, model_id):
        with self._lock:
            if model_id in self._cache:
                self._cache.move_to_end(model_id)
                self._hits += 1
                _RESOLUTIONS_TOTAL.inc(1, ("hit",))
                return self._cache[model_id], model_id, "hit"
        return None

    def _insert(self, model_id, imputer):
        self._cache[model_id] = imputer
        self._cache.move_to_end(model_id)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)
            self._evictions += 1
            _EVICTIONS_TOTAL.inc()
        _MODELS_LOADED.set(len(self._cache))

    # -- introspection ----------------------------------------------------

    @property
    def stats(self):
        """Current :class:`RegistryStats` snapshot."""
        with self._lock:
            return RegistryStats(
                self._hits, self._loads, self._fits, self._evictions, self._refreshes
            )

    @property
    def loaded_ids(self):
        """Model ids currently cached in memory, LRU-oldest first."""
        with self._lock:
            return list(self._cache)

    def evict_all(self):
        """Drop every cached model (files on disk are untouched)."""
        with self._lock:
            self._cache.clear()
            _MODELS_LOADED.set(0)

    def peek_revision(self, dataset, config, typed=False):
        """Cheap resolvability probe: ``(model_id, revision)`` or ``(id, None)``.

        Answers from the in-memory cache when warm, otherwise from the
        file's revision field alone -- no graph construction, no cache
        insertion.  ``None`` means the model is not cheaply resolvable
        (missing or unreadable file): callers fall back to :meth:`get`,
        which applies the full fitter/corruption semantics.  The process
        executor uses this so the parent never loads models only its
        workers will query.
        """
        model_id = self.model_id(dataset, config, typed)
        with self._lock:
            cached = self._cache.get(model_id)
            if cached is not None:
                return model_id, getattr(cached, "revision", 1)
        path = self.root / f"{model_id}.npz"
        if not path.exists():
            return model_id, None
        return model_id, self._stored_revision(path, typed)

    def ensure_revision(self, model_id, revision):
        """Drop a cached model older than *revision* (it reloads from disk).

        Cross-process staleness guard: a refresh in another process
        republishes the file but cannot touch this process's in-memory
        cache.  Callers that learn the current revision out of band
        (e.g. pool workers handed the parent's resolutions) call this
        before serving, so the next :meth:`get` reloads the fresh
        artefact instead of answering from a stale cache hit.
        """
        with self._lock:
            cached = self._cache.get(model_id)
            if cached is not None and getattr(cached, "revision", 1) < revision:
                del self._cache[model_id]
                _MODELS_LOADED.set(len(self._cache))

    def list_models(self):
        """All models in the registry directory, as JSON-ready dicts.

        Beyond identity (``model_id``, ``dataset``, ``config_hash``,
        ``typed``, ``path``, ``size_bytes``, ``loaded``) every entry is a
        freshness feed: ``revision`` (the model's incremental-refresh
        counter, read from memory when warm, from the file otherwise --
        ``None`` for an unreadable artefact), ``last_refresh`` (epoch
        seconds of this registry's last :meth:`refresh` of the model, or
        ``None``), ``rows_ingested`` and ``refreshes`` (cumulative, this
        registry instance).  Clients poll this to detect staleness.
        """
        with self._lock:
            cached = dict(self._cache)
            meta = {k: dict(v) for k, v in self._refresh_meta.items()}
        entries = []
        for path in sorted(self.root.glob("*.npz")):
            model_id = path.stem
            dataset, _, digest = model_id.rpartition("_")
            typed = dataset.endswith(_TYPED_TAG)
            if typed:
                dataset = dataset[: -len(_TYPED_TAG)]
            if model_id in cached:
                revision = cached[model_id].revision
            else:
                revision = self._stored_revision(path, typed)
            model_meta = meta.get(model_id, {})
            entries.append(
                {
                    "model_id": model_id,
                    "dataset": dataset,
                    "config_hash": digest,
                    "typed": typed,
                    "path": str(path),
                    "size_bytes": path.stat().st_size,
                    "loaded": model_id in cached,
                    "revision": revision,
                    "last_refresh": model_meta.get("last_refresh"),
                    "rows_ingested": model_meta.get("rows_ingested", 0),
                    "refreshes": model_meta.get("refreshes", 0),
                }
            )
        return entries

    def _stored_revision(self, path, typed):
        """Peek a model file's revision without a full load (None if unloadable).

        ``np.load`` reads the zip directory lazily, so this touches one
        tiny array -- and repeat calls are memoized on the file's mtime,
        so a polled ``/models`` feed costs one ``stat`` per cold model,
        not a zip open.  Files predating the revision field report 1.

        ``None`` means "do not trust this artefact": not just unreadable
        zips, but any file the *expected* loader (plain vs *typed*,
        derived from the model id) would reject -- wrong kind,
        out-of-range version, missing graph arrays.  That keeps
        :meth:`peek_revision`'s fast path honest -- a corrupt or
        mis-kinded file falls through to :meth:`get`, which applies the
        fitter semantics, instead of being dispatched to fitter-less
        pool workers.
        """
        try:
            mtime_ns = path.stat().st_mtime_ns
        except OSError:
            return None
        key = str(path)
        with self._lock:
            memo = self._revision_memo.get(key)
            if memo is not None and memo[0] == mtime_ns:
                return memo[1]
        revision = self._validated_revision(path, typed)
        # Failures memoize too: a corrupt artefact must not be re-opened
        # and re-validated on every /models poll -- the atomic-replace
        # publish path guarantees a repair changes the mtime.
        with self._lock:
            self._revision_memo[key] = (mtime_ns, revision)
        return revision

    @staticmethod
    def _validated_revision(path, typed):
        """Revision if the file would plausibly load as its kind, else None.

        Kind/version validation is delegated to the loader's own
        :func:`repro.core.habit._check_format` so the peek cannot drift
        from what ``load()`` actually accepts as the format evolves; the
        graph-keys probe mirrors the loader's missing-arrays check.
        """
        from repro.core.habit import _GRAPH_KEYS, MODEL_FORMAT, _check_format
        from repro.core.typed import TYPED_MODEL_FORMAT

        kind = TYPED_MODEL_FORMAT if typed else MODEL_FORMAT
        prefix = "fallback_" if typed else ""
        try:
            with np.load(path) as data:
                _check_format(data, kind, path)
                if any(prefix + key not in data.files for key in _GRAPH_KEYS):
                    return None
                if "revision" in data.files:
                    return int(data["revision"][0])
                return 1
        except Exception:
            return None
