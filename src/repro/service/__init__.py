"""The imputation serving layer: registry -> batch engine -> transport.

Fitted HABIT models are stateless after fit and ``.npz``-serialisable,
which makes fit-once/serve-many the natural deployment shape.  This
package provides the three pieces:

- :class:`ModelRegistry` (:mod:`repro.service.registry`) -- discovers and
  LRU-caches serialised models keyed by ``(dataset, config_hash)``;
  :meth:`ModelRegistry.refresh` folds newly arrived trips into a served
  model (plain or typed) without refitting history.
- :class:`BatchImputationEngine` (:mod:`repro.service.engine`) -- groups
  gap requests by model and fans them out over a thread pool or a
  process pool (``executor=``), timing and annotating every result with
  provenance.
- :class:`FollowDaemon` (:mod:`repro.service.follow`) -- tails a growing
  AIS dump and refreshes a served model on a cadence (the ``--follow``
  CLI mode), surfacing revisions through the ``/models`` feed.
- :func:`make_server` (:mod:`repro.service.http`) plus the
  ``python -m repro.service`` CLI (:mod:`repro.service.__main__`) -- a
  stdlib JSON/HTTP endpoint (``/impute``, ``/models``, ``/healthz``).

``repro.experiments.fit.fit_and_save`` populates a registry directory
from the experiment harness.  ``docs/OPERATIONS.md`` is the operator's
guide across all of it.
"""

from repro.service.engine import BatchImputationEngine
from repro.service.follow import FollowDaemon
from repro.service.http import make_server
from repro.service.registry import ModelNotFound, ModelRegistry, RegistryStats
from repro.service.schema import (
    GapRequest,
    ImputeResult,
    Provenance,
    SchemaError,
    build_config,
    parse_impute_payload,
)

__all__ = [
    "BatchImputationEngine",
    "FollowDaemon",
    "GapRequest",
    "ImputeResult",
    "ModelNotFound",
    "ModelRegistry",
    "Provenance",
    "RegistryStats",
    "SchemaError",
    "build_config",
    "make_server",
    "parse_impute_payload",
]
