"""The imputation serving layer: registry -> batch engine -> transport.

Fitted HABIT models are stateless after fit and ``.npz``-serialisable,
which makes fit-once/serve-many the natural deployment shape.  This
package provides the three pieces:

- :class:`ModelRegistry` (:mod:`repro.service.registry`) -- discovers and
  LRU-caches serialised models keyed by ``(dataset, config_hash)``.
- :class:`BatchImputationEngine` (:mod:`repro.service.engine`) -- groups
  gap requests by model and fans them out over a thread pool, timing and
  annotating every result with provenance.
- :func:`make_server` (:mod:`repro.service.http`) plus the
  ``python -m repro.service`` CLI (:mod:`repro.service.__main__`) -- a
  stdlib JSON/HTTP endpoint (``/impute``, ``/models``, ``/healthz``).

``repro.experiments.fit.fit_and_save`` populates a registry directory
from the experiment harness.
"""

from repro.service.engine import BatchImputationEngine
from repro.service.http import make_server
from repro.service.registry import ModelNotFound, ModelRegistry, RegistryStats
from repro.service.schema import (
    GapRequest,
    ImputeResult,
    Provenance,
    SchemaError,
    build_config,
    parse_impute_payload,
)

__all__ = [
    "BatchImputationEngine",
    "GapRequest",
    "ImputeResult",
    "ModelNotFound",
    "ModelRegistry",
    "Provenance",
    "RegistryStats",
    "SchemaError",
    "build_config",
    "make_server",
    "parse_impute_payload",
]
