"""Cross-request micro-batching dispatcher for the serving engine.

The batch kernel (:mod:`repro.core.kernel`) amortises CH search cost
only when it is handed many lanes at once, but HTTP traffic arrives as
many concurrent *singletons* on separate handler threads.  This module
fuses them: every request thread submits its snapped-and-cache-missed
search lanes into a shared :class:`BatchDispatcher`, which collects
everything that arrives within a bounded window into one
:meth:`~repro.core.habit.HabitImputer.route_batch` call per resolved
class graph and fans the results back through per-request futures.

**Leaderless window protocol** (no background thread to own, start, or
drain):

- Request threads bracket their whole engine run with :meth:`enter` /
  :meth:`leave`, so the dispatcher knows how many runs are in flight.
- :meth:`submit` parks the calling thread in the current window.  The
  window flushes as soon as **every in-flight run is parked in it** --
  nobody who could still contribute lanes (snapping, probing caches,
  rendering a previous answer) remains outside -- or when the pending
  lane count reaches ``max_lanes``, or when the oldest submission's
  window deadline (``window_s``) expires, or at :meth:`close`.  The
  all-parked rule is what makes the idle bypass fall out naturally: a
  lone request is the only in-flight run, so its own submission
  satisfies the condition and it executes immediately, with zero added
  wait.  It is also what makes closed-loop concurrency fuse: threads
  still rendering the previous flush's answers hold the window open
  (bounded by the deadline), so the next window collects every
  re-arriving client instead of flushing near-empty the moment one of
  them returns.
- Whichever parked thread observes a flush condition becomes that
  flush's *leader*: it claims the whole pending queue, releases the
  lock, runs the searches, then distributes results and wakes the other
  submitters.  A search error poisons the whole flush (every fused
  submitter re-raises it), matching the blast radius of a failed
  in-batch search.

**Cross-request coalescing:** submissions flag which lanes are shared
(full snap-and-path cache keys -- model id, class tag, revision,
snapped endpoints).  Identical shared keys from *different* submissions
fuse into one search lane; the first submitter keeps its ``"miss"``
path-cache tier and every later one is answered from the same lane
under the new ``"cross_batch"`` tier -- PR 8's in-batch ``"coalesced"``
tier extended across concurrent requests.  Unshared lanes (path cache
disabled) are never deduplicated, preserving the engine's
every-request-pays-its-own-lane contract in that mode.

Instrumentation: ``repro_dispatch_queue_wait_seconds`` (submit-to-flush
wait), ``repro_dispatch_window_occupancy`` (requests fused per flush),
``repro_dispatch_batch_lanes`` (search lanes per flush, after
cross-request dedup) and ``repro_dispatch_coalesced_total`` (lanes
answered by another request's search).
"""

import threading
import time

from repro.obs import COUNT_BUCKETS, METRICS

__all__ = ["BatchDispatcher"]

DISPATCH_QUEUE_WAIT_SECONDS = METRICS.histogram(
    "repro_dispatch_queue_wait_seconds",
    "Seconds a submission waited in the micro-batching window before "
    "its flush started executing.",
)
DISPATCH_WINDOW_OCCUPANCY = METRICS.histogram(
    "repro_dispatch_window_occupancy",
    "Concurrent request submissions fused per dispatcher flush.",
    buckets=COUNT_BUCKETS,
)
DISPATCH_BATCH_LANES = METRICS.histogram(
    "repro_dispatch_batch_lanes",
    "Search lanes per dispatcher flush, after cross-request dedup.",
    buckets=COUNT_BUCKETS,
)
DISPATCH_COALESCED_TOTAL = METRICS.counter(
    "repro_dispatch_coalesced_total",
    "Cache-missed lanes answered by an identical lane submitted by "
    "another in-flight request (path-cache tier cross_batch).",
)


class _RunToken:
    """Opaque per-``enter`` handle; ``leave`` takes it back exactly once."""

    __slots__ = ()


class _Submission:
    """One request thread's parked lanes plus its result future."""

    __slots__ = ("entries", "queued_at", "claimed", "done", "error", "results")

    def __init__(self, entries):
        self.entries = entries
        self.queued_at = time.perf_counter()
        self.claimed = False  # taken by a leader, results on the way
        self.done = False
        self.error = None
        self.results = {}  # lane key -> (SearchResult | None, cross, share_s)


class BatchDispatcher:
    """Fuses concurrent request threads' search lanes into shared flushes.

    *window_s* bounds how long a submission may wait for co-travellers
    (the flush usually fires much earlier, as soon as every in-flight
    run has submitted); *max_lanes* caps the pending lane count so a
    burst flushes early instead of building an unboundedly large kernel
    batch.  Thread-safe; owned by one
    :class:`repro.service.BatchImputationEngine`.
    """

    def __init__(self, window_s=0.002, max_lanes=64):
        self.window_s = float(window_s)
        self.max_lanes = int(max_lanes)
        self._cond = threading.Condition()
        self._pending = []  # parked _Submission objects, arrival order
        self._pending_lanes = 0
        self._active = 0  # entered runs (parked submitters included)
        self._closed = False

    # -- in-flight run tracking -------------------------------------------

    def enter(self):
        """Register an in-flight run; returns the token ``leave`` needs."""
        with self._cond:
            self._active += 1
        return _RunToken()

    def leave(self, token):
        """Unregister a run.  The hold lasts the whole run -- through
        cache probes and renders, not just until its own submission --
        so a departing run may leave the window all-parked: waiting
        submitters are woken to re-check the flush condition."""
        with self._cond:
            self._active -= 1
            if self._pending and len(self._pending) == self._active:
                self._cond.notify_all()

    # -- the window --------------------------------------------------------

    def submit(self, token, entries):
        """Park *entries* in the current window; returns their results.

        *entries* is a list of ``(key, imputer, (src, dst), shared,
        riders)`` lanes -- ``key`` names the lane within this
        submission (the full path-cache key when *shared*), ``riders``
        is how many requests of the submitting batch ride it (used for
        kernel-time attribution).  Blocks until a flush answers every
        lane, then returns ``{key: (result, cross, share_s)}`` --
        ``cross`` is True when another request's identical shared lane
        ran the search, ``share_s`` the lane's per-rider share of its
        kernel call.  Raises whatever the flush's searches raised.
        An empty *entries* is a no-op (the run's hold stays with its
        token until :meth:`leave`).
        """
        sub = _Submission(list(entries))
        if not sub.entries:
            return {}
        batch = None
        with self._cond:
            self._pending.append(sub)
            self._pending_lanes += len(sub.entries)
            deadline = sub.queued_at + self.window_s
            while not sub.done and sub.error is None:
                if sub.claimed:
                    # A leader owns this submission; results are coming.
                    self._cond.wait()
                    continue
                now = time.perf_counter()
                flush_due = (
                    len(self._pending) == self._active
                    or self._pending_lanes >= self.max_lanes
                    or self._closed
                    or now >= deadline
                )
                if flush_due:
                    batch = self._claim_locked()
                    break
                self._cond.wait(deadline - now)
        if batch is not None:
            self._execute(batch)
        if sub.error is not None:
            raise sub.error
        return sub.results

    def close(self):
        """Stop windowing: wake every parked submitter (one of them leads
        the final flush) and make future submissions execute immediately.
        In-flight requests complete normally."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- flush execution (leader thread, lock released) --------------------

    def _claim_locked(self):
        batch, self._pending = self._pending, []
        self._pending_lanes = 0
        for sub in batch:
            sub.claimed = True
        return batch

    def _execute(self, batch):
        started = time.perf_counter()
        if METRICS.enabled:
            for sub in batch:
                DISPATCH_QUEUE_WAIT_SECONDS.observe(started - sub.queued_at)
            DISPATCH_WINDOW_OCCUPANCY.observe(len(batch))
        try:
            # Merge: shared keys from different submissions fuse into one
            # lane (claims beyond the first are cross-request coalesces);
            # unshared lanes always get their own.
            lanes = []  # [imputer, pair, [(sub, key, riders), ...]]
            shared_lanes = {}
            crossed = 0
            for sub in batch:
                for key, imputer, pair, shared, riders in sub.entries:
                    if shared:
                        lane = shared_lanes.get(key)
                        if lane is not None:
                            lane[2].append((sub, key, riders))
                            crossed += 1
                            continue
                        lane = [imputer, pair, [(sub, key, riders)]]
                        shared_lanes[key] = lane
                    else:
                        lane = [imputer, pair, [(sub, key, riders)]]
                    lanes.append(lane)
            if METRICS.enabled:
                DISPATCH_BATCH_LANES.observe(len(lanes))
                if crossed:
                    DISPATCH_COALESCED_TOTAL.inc(crossed)
            # One route_batch per resolved class graph: a single kernel
            # sweep answers every lane riding that graph.
            groups = {}
            for lane in lanes:
                groups.setdefault(id(lane[0]), (lane[0], []))[1].append(lane)
            for imputer, group in groups.values():
                group_started = time.perf_counter()
                results = imputer.route_batch([lane[1] for lane in group])
                share = (time.perf_counter() - group_started) / max(
                    1,
                    sum(riders for lane in group for _, _, riders in lane[2]),
                )
                for lane, result in zip(group, results):
                    for pos, (sub, key, _) in enumerate(lane[2]):
                        sub.results[key] = (result, pos > 0, share)
        except BaseException as exc:  # noqa: BLE001 - poison the whole flush
            for sub in batch:
                sub.error = exc
        finally:
            with self._cond:
                for sub in batch:
                    sub.done = True
                self._cond.notify_all()
