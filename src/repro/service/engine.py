"""Batch imputation engine: many gap requests, one model resolution each.

The engine is the service's query executor.  A batch is grouped by
``(dataset, typed)`` so each model -- plain or typed -- is resolved
through the registry exactly once (one cache probe / disk load / fit per
model, however many gaps ride on it), then the per-gap imputations fan
out over a thread pool.  Fitted imputers are read-only, so concurrent
``impute`` calls on one model are safe; single-request batches skip the
pool entirely.

On top of the model cache sits a **snap-and-path LRU cache**: hub-to-hub
queries from large fleets mostly repeat, and a route depends only on the
graph and the *snapped* endpoints -- never on the raw query positions.
Each request snaps its endpoints (memoized per graph), then looks up the
search result under ``(model id, class tag, revision, snapped src,
snapped dst)``; a hit renders the cached route without touching the
search heap at all.  ``revision`` in the key makes incremental refreshes
self-invalidating, and negative results (no route) are cached too.

Every result carries :class:`repro.service.schema.Provenance`: which
model answered, how it was obtained (cache hit / disk load / fit), the
path-cache tier (``hit``/``miss``/``bypass``), the routing method
actually used (including the straight-line fallback flag), nodes
expanded by the search, the metric path length, and per-request
wall-clock latency.
"""

import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

from repro.core import HabitConfig
from repro.geo.proj import path_length_m
from repro.service.schema import ImputeResult, Provenance

__all__ = ["BatchImputationEngine"]

#: Sentinel distinguishing "not cached" from a cached no-route (None).
_MISSING = object()


class _PathCache:
    """Thread-safe bounded LRU of search results keyed by snapped routes."""

    def __init__(self, capacity):
        self.capacity = int(capacity)
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return _MISSING

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self):
        return len(self._entries)


class BatchImputationEngine:
    """Executes batches of gap requests against a model registry."""

    def __init__(self, registry, max_workers=None, path_cache_size=4096):
        self.registry = registry
        self.max_workers = int(max_workers or min(8, (os.cpu_count() or 2)))
        #: LRU over (model id, class tag, revision, snapped src, snapped
        #: dst) -> SearchResult | None; 0 disables route caching.
        self.path_cache = _PathCache(path_cache_size) if path_cache_size else None

    def run(self, requests, config=None):
        """Impute every request; returns results in request order.

        *config* applies to the whole batch (the transport parses it once
        per payload).  Raises :class:`repro.service.registry.ModelNotFound`
        if any request names a dataset with no resolvable model.
        """
        requests = list(requests)
        config = config or HabitConfig()
        models = {}
        for request in requests:
            key = (request.dataset.upper(), request.typed)
            if key not in models:
                models[key] = self.registry.get(
                    request.dataset, config, typed=request.typed
                )
        if len(requests) <= 1:
            return [
                self._impute_one(models[(r.dataset.upper(), r.typed)], r)
                for r in requests
            ]
        workers = min(self.max_workers, len(requests))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(
                    lambda r: self._impute_one(models[(r.dataset.upper(), r.typed)], r),
                    requests,
                )
            )

    def _route_cached(self, imputer, model_id, request):
        """Snap, probe the path cache, search on miss.

        Returns ``(path, tier)`` where *tier* is the path-cache tier for
        provenance.  Falls back to the plain ``impute`` call (tier
        ``"bypass"``) when caching is disabled or the model exposes no
        snap/route/render stages.
        """
        class_tag = ""
        plain = imputer
        if request.typed:
            resolver = getattr(imputer, "resolve", None)
            if resolver is None:
                plain = None
            else:
                plain, class_tag = resolver(request.vessel_type)
        if (
            self.path_cache is None
            or plain is None
            or not hasattr(plain, "snap_endpoints")
        ):
            if request.typed:
                return imputer.impute(request.start, request.end, request.vessel_type), "bypass"
            return imputer.impute(request.start, request.end), "bypass"
        snapped = plain.snap_endpoints(request.start, request.end)
        if snapped is None:  # out-of-coverage: straight line, nothing to cache
            return plain.render_path(request.start, request.end, None), "bypass"
        key = (model_id, class_tag, plain.revision, snapped[0], snapped[1])
        result = self.path_cache.get(key)
        if result is _MISSING:
            result = plain.route(snapped[0], snapped[1])
            self.path_cache.put(key, result)
            tier = "miss"
        else:
            tier = "hit"
        return plain.render_path(request.start, request.end, result), tier

    def _impute_one(self, resolved, request):
        imputer, model_id, source = resolved
        started = time.perf_counter()
        path, path_tier = self._route_cached(imputer, model_id, request)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        provenance = Provenance(
            model_id=model_id,
            cache=source,
            method=path.method,
            fallback=path.method == "fallback",
            num_cells=len(path.cells),
            path_length_m=float(path_length_m(path.lats, path.lngs)),
            elapsed_ms=elapsed_ms,
            revision=getattr(imputer, "revision", 1),
            path_cache=path_tier,
            expanded=path.expanded,
        )
        return ImputeResult(
            request=request, lats=path.lats, lngs=path.lngs, provenance=provenance
        )
