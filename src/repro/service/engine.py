"""Batch imputation engine: many gap requests, one kernel sweep per model.

The engine is the service's query executor.  A batch is grouped by
``(dataset, typed)`` so each model -- plain or typed -- is resolved
through the registry exactly once (one cache probe / disk load / fit per
model, however many gaps ride on it).  Execution is **batch-native**:
every request snaps its endpoints and probes the path cache, the
remaining cache misses are deduplicated (see request coalescing below)
and grouped by resolved class graph, and each group runs through one
:meth:`repro.core.habit.HabitImputer.route_batch` call -- a single
vectorised CH kernel sweep (:mod:`repro.core.kernel`) answers the whole
group instead of one Python heap loop per request.  Per-request
``expanded``/cost/latency still land in provenance individually.

Two executors are available (``executor=`` at construction, recorded in
every result's provenance):

- ``"thread"`` (default) -- in-process execution.  Fitted imputers are
  read-only, so the whole batch runs on the request thread: snap and
  render are cheap Python, and the search itself is one NumPy kernel
  call per model.  The right choice for latency-sensitive serving: no
  serialisation, shared path cache, models resolved once per process.
- ``"process"`` -- a persistent
  :class:`~concurrent.futures.ProcessPoolExecutor`.  CPU-bound batches
  (long searches, many gaps) escape the GIL by fanning contiguous slices
  of the batch across worker processes; each worker slice is itself
  batch-native (one kernel call per model per slice).  Workers resolve
  models from the registry *directory* (the registry's
  files-are-the-contract property) into a per-process cache, so models
  cross the process boundary via the filesystem once, never per task.
  The parent probes every model before dispatch -- a warm cache entry or
  a cheap file-revision peek; only a genuine miss pays a full resolution
  (fit-on-miss / corrupt semantics included) -- so unresolvable models
  fail before any work is sent without the parent loading graphs only
  workers will query.  Worker-side provenance reflects the worker's own
  cache tiers (first batch: ``"load"``), and the imputed paths are
  identical to the thread executor's.

On top of the model cache sits a **snap-and-path LRU cache**: hub-to-hub
queries from large fleets mostly repeat, and a route depends only on the
graph and the *snapped* endpoints -- never on the raw query positions.
(A cache miss pays one graph search -- by default the
contraction-hierarchy variant, whose upward-only bidirectional query
settles an order of magnitude fewer nodes than the ALT heuristic; the
per-route ``expanded`` count rides into provenance either way.)
Each request snaps its endpoints (memoized per graph), then looks up the
search result under ``(model id, class tag, revision, snapped src,
snapped dst)``; a hit renders the cached route without touching the
search kernel at all.  ``revision`` in the key makes incremental
refreshes self-invalidating, and negative results (no route) are cached
too.  Process-pool workers each hold their own path cache, which
persists across batches for the life of the pool.

**Request coalescing:** identical ``(model id, class tag, snapped src,
snapped dst)`` routes within one batch are searched once.  The first
requester records path-cache tier ``"miss"``; every other rider on the
same route records ``"coalesced"`` and is fanned the single result --
large fleet batches converging on hub pairs pay one kernel lane, not N.

**Cross-request micro-batching:** in thread mode the engine routes
every batch's cache-missed lanes through a shared
:class:`repro.service.dispatch.BatchDispatcher`.  Concurrent HTTP
handler threads submitting within a bounded window (``batch_window_ms``,
plus a ``batch_max_lanes`` cap) fuse into one kernel call per resolved
class graph, so sixteen simultaneous singletons cost one sweep, not
sixteen.  The window flushes immediately once every in-flight request
is parked in it -- a lone request never waits (the idle bypass) -- and
identical shared routes from *different* requests dedupe to one lane:
the late arrivals record path-cache tier ``"cross_batch"``, the
cross-request extension of ``"coalesced"``.  ``batch_window_ms=0``
disables the dispatcher entirely.

On top of the route cache sits a **rendered-path memo**: RDP
simplification and resampling dominate the per-request cost of a warm
hit, yet their output depends only on the route and the *exact* raw
endpoints.  Both cache tiers' renders are memoized under ``(route key,
start, end)`` (same capacity as the path cache), together with the
rendered polyline's metric length, so an exactly-repeated query costs
two LRU probes and no geometry at all.  Memoized results share their
coordinate arrays across responses; callers must treat them as
read-only (the transport only serialises them).

Every result carries :class:`repro.service.schema.Provenance`: which
model answered, how it was obtained (cache hit / disk load / fit), the
path-cache tier
(``hit``/``miss``/``coalesced``/``cross_batch``/``bypass``), the
executor that ran the request (``thread``/``process``), the routing
method actually used (including the straight-line fallback flag), nodes
expanded by the search, the metric path length, and per-request
wall-clock latency.
"""

import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace

from repro.core import HabitConfig
from repro.geo.budget import compress_to_budget
from repro.geo.proj import latlng_to_xy_m, path_length_m
from repro.obs import METRICS, diff_snapshots
from repro.service.dispatch import BatchDispatcher
from repro.service.schema import ImputeResult, Provenance

__all__ = ["BatchImputationEngine"]

_PATH_CACHE_TOTAL = METRICS.counter(
    "repro_path_cache_total",
    "Snap-and-path route-cache resolutions by tier "
    "(hit, miss, coalesced, cross_batch, bypass).",
    ("tier",),
)
_IMPUTE_SECONDS = METRICS.histogram(
    "repro_impute_seconds",
    "Per-gap imputation latency in seconds (snap + route + render), "
    "by executor.",
    ("executor",),
)
_COMPRESS_SECONDS = METRICS.histogram(
    "repro_compress_seconds",
    "Budget (max_points) compression latency per compressed response "
    "in seconds.",
)
_COMPRESS_DROPPED = METRICS.counter(
    "repro_compress_points_dropped_total",
    "Path points dropped by per-request max_points budget compression.",
)

#: Sentinel distinguishing "not cached" from a cached no-route (None).
_MISSING = object()

#: Executor names accepted by :class:`BatchImputationEngine`.
EXECUTORS = ("thread", "process")


class _PathCache:
    """Thread-safe bounded LRU of search results keyed by snapped routes."""

    def __init__(self, capacity):
        self.capacity = int(capacity)
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return _MISSING

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self):
        return len(self._entries)


class BatchImputationEngine:
    """Executes batches of gap requests against a model registry.

    Parameters: *registry* (a :class:`repro.service.ModelRegistry`),
    *max_workers* (fan-out width, default ``min(8, cpu_count)``),
    *path_cache_size* (snap-and-path LRU entries, 0 disables; also sizes
    the rendered-path memo), *executor* (``"thread"`` or ``"process"``,
    see the module docstring for the trade-off), *batch_window_ms*
    (cross-request micro-batching window for thread mode, 0 disables
    the dispatcher) and *batch_max_lanes* (pending-lane cap that
    flushes a window early).  A process-mode engine owns a persistent
    worker pool; call :meth:`close` (or use the engine as a context
    manager) to release it and the dispatcher.
    """

    def __init__(
        self,
        registry,
        max_workers=None,
        path_cache_size=4096,
        executor="thread",
        batch_window_ms=2.0,
        batch_max_lanes=64,
    ):
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        self.registry = registry
        self.max_workers = int(max_workers or min(8, (os.cpu_count() or 2)))
        self.executor = executor
        #: LRU over (model id, class tag, revision, snapped src, snapped
        #: dst) -> SearchResult | None; 0 disables route caching.
        self.path_cache = _PathCache(path_cache_size) if path_cache_size else None
        #: LRU over (route cache key, raw start, raw end) ->
        #: (ImputedPath, path_length_m): the rendered-path memo.
        self.render_cache = _PathCache(path_cache_size) if path_cache_size else None
        self._path_cache_size = path_cache_size
        self.batch_window_ms = float(batch_window_ms)
        self.batch_max_lanes = int(batch_max_lanes)
        self.dispatcher = None
        if executor == "thread" and self.batch_window_ms > 0:
            self.dispatcher = BatchDispatcher(
                window_s=self.batch_window_ms / 1e3, max_lanes=self.batch_max_lanes
            )
        self._pool = None  # lazy, persistent ProcessPoolExecutor
        self._pool_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        """Release the dispatcher and the process pool, if one started.

        In-flight requests complete (the dispatcher's final window is
        flushed by its own waiters; later submissions run immediately,
        unbatched)."""
        if self.dispatcher is not None:
            self.dispatcher.close()
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def _process_pool(self):
        # Locked: concurrent first requests on the threaded server must
        # not each spawn (and half-orphan) a worker pool.
        with self._pool_lock:
            if self._pool is None:
                # Spawn, never fork: the pool is created lazily from a
                # request thread of an already multi-threaded daemon (HTTP
                # handlers, follow ingest), and forking a threaded process
                # can hand workers a copy of someone's held lock.  Workers
                # rebuild everything from the registry path anyway, so the
                # only cost is a one-time interpreter start per worker.
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=multiprocessing.get_context("spawn"),
                )
            return self._pool

    # -- execution ---------------------------------------------------------

    def run(self, requests, config=None):
        """Impute every request; returns results in request order.

        *config* applies to the whole batch (the transport parses it once
        per payload).  Raises :class:`repro.service.registry.ModelNotFound`
        if any request names a dataset with no resolvable model -- in
        process mode too, before any work is dispatched.
        """
        requests = list(requests)
        config = config or HabitConfig()
        if self.executor == "process" and requests:
            return self._run_process(requests, config)
        # Bracket the whole run so the dispatcher knows this thread may
        # still contribute lanes to the current micro-batching window.
        token = self.dispatcher.enter() if self.dispatcher is not None else None
        try:
            models = {}
            for request in requests:
                key = (request.dataset.upper(), request.typed)
                if key not in models:
                    models[key] = self.registry.get(
                        request.dataset, config, typed=request.typed
                    )
            return self._run_batched(models, requests, "thread", token)
        finally:
            if token is not None:
                self.dispatcher.leave(token)

    def _run_process(self, requests, config):
        """Fan contiguous slices of the batch across the worker pool.

        The parent establishes that every model is resolvable *before*
        dispatch, but cheaply: a warm cache entry or the file's revision
        field answers without loading a graph the parent will never
        query (only a genuine miss pays a full :meth:`registry.get`,
        which applies the fit-on-miss/corrupt-file semantics and
        publishes for the workers).  The resolved revisions ride along
        so a warm worker drops a cached model that a refresh has since
        superseded -- workers never serve older revisions than the
        parent just observed.  Slice order concatenates back to request
        order.
        """
        revisions = {}
        for request in requests:
            key = (request.dataset.upper(), request.typed)
            if key in revisions:
                continue
            model_id, revision = self.registry.peek_revision(
                request.dataset, config, typed=request.typed
            )
            if revision is None:
                imputer, model_id, _ = self.registry.get(
                    request.dataset, config, typed=request.typed
                )
                revision = getattr(imputer, "revision", 1)
            revisions[key] = (model_id, revision)
        pool = self._process_pool()
        workers = min(self.max_workers, len(requests))
        per_slice = -(-len(requests) // workers)  # ceil division
        slices = [
            requests[i : i + per_slice] for i in range(0, len(requests), per_slice)
        ]
        root = str(self.registry.root)
        futures = [
            pool.submit(
                _process_batch,
                root,
                self._path_cache_size,
                batch,
                config,
                dict(revisions.values()),
            )
            for batch in slices
        ]
        results = []
        for future in futures:
            part, metrics_delta = future.result()
            # The worker piggybacked its metric growth on the batch
            # result; folding it here is what makes worker-side search
            # and path-cache activity visible in the parent's scrape.
            if METRICS.enabled:
                METRICS.absorb(metrics_delta)
            results.extend(part)
        return results

    def path_cache_stats(self):
        """JSON-ready path-cache block for ``/healthz``.

        Hit/miss counts come from the metrics registry when collection
        is enabled -- in process mode that includes worker-side probes
        absorbed from batch deltas -- and fall back to the parent
        cache's own counters when metrics are off.  ``entries`` and
        ``capacity`` always describe the parent's cache.
        """
        cache = self.path_cache
        if METRICS.enabled:
            hits = _PATH_CACHE_TOTAL.value(("hit",))
            misses = _PATH_CACHE_TOTAL.value(("miss",))
        else:
            hits = cache.hits if cache is not None else 0
            misses = cache.misses if cache is not None else 0
        return {
            "hits": hits,
            "misses": misses,
            "entries": len(cache) if cache is not None else 0,
            "capacity": cache.capacity if cache is not None else 0,
        }

    def _run_serial(self, requests, config, label):
        """Resolve-once + batched impute; the worker-side half of process
        mode (one worker slice is one batch by design)."""
        models = {}
        for request in requests:
            key = (request.dataset.upper(), request.typed)
            if key not in models:
                models[key] = self.registry.get(
                    request.dataset, config, typed=request.typed
                )
        return self._run_batched(models, requests, label)

    def _run_batched(self, models, requests, label, token=None):
        """Execute one batch: snap + cache-probe per request, one kernel
        sweep per resolved class graph for the misses, render per request.

        Coalescing happens between the probe and the sweep: requests
        sharing a full cache key ride one search lane; the first records
        tier ``"miss"``, the rest ``"coalesced"``.  In thread mode the
        miss lanes go through the shared dispatcher (*token* is the
        run's window hold from :meth:`BatchDispatcher.enter`), where
        they can further fuse with other concurrent requests' lanes; a
        lane answered by another request's identical search records
        ``"cross_batch"``.  With the path cache disabled nothing is
        deduplicated (every request provably pays its own search lane,
        tier ``"bypass"``), and models without the snap/route/render
        stages fall back to their scalar ``impute``.  Per-request
        latency charges each rider its snap/probe/render time plus an
        equal share of its group's kernel call.  All renders go through
        the rendered-path memo (exact raw endpoints in the key).
        """
        paths = [None] * len(requests)
        lengths = [None] * len(requests)
        tiers = [None] * len(requests)
        elapsed = [0.0] * len(requests)
        #: cache key -> [plain imputer, (src, dst), first result, rider idxs]
        lanes = {}
        groups = {}  # id(plain imputer) -> (plain, [lane keys])
        for i, request in enumerate(requests):
            started = time.perf_counter()
            imputer, model_id, _ = models[(request.dataset.upper(), request.typed)]
            class_tag = ""
            plain = imputer
            if request.typed:
                resolver = getattr(imputer, "resolve", None)
                if resolver is None:
                    plain = None
                else:
                    plain, class_tag = resolver(request.vessel_type)
            if plain is None or not hasattr(plain, "route_batch"):
                if request.typed:
                    paths[i] = imputer.impute(
                        request.start, request.end, request.vessel_type
                    )
                else:
                    paths[i] = imputer.impute(request.start, request.end)
                tiers[i] = "bypass"
            else:
                snapped = plain.snap_endpoints(request.start, request.end)
                if snapped is None:
                    # Out-of-coverage: straight line, nothing to cache.
                    paths[i] = plain.render_path(request.start, request.end, None)
                    tiers[i] = "bypass"
                else:
                    key = (model_id, class_tag, plain.revision, *snapped)
                    if self.path_cache is None:
                        # Cache off: per-request lanes, no dedupe.
                        lanes[(key, i)] = [plain, snapped, None, [i]]
                        tiers[i] = "bypass"
                        groups.setdefault(id(plain), (plain, []))[1].append((key, i))
                    elif key in lanes:
                        lanes[key][3].append(i)
                        tiers[i] = "coalesced"
                    else:
                        result = self.path_cache.get(key)
                        if result is _MISSING:
                            lanes[key] = [plain, snapped, None, [i]]
                            tiers[i] = "miss"
                            groups.setdefault(id(plain), (plain, []))[1].append(key)
                        else:
                            paths[i], lengths[i] = self._render(
                                plain, key, request, result
                            )
                            tiers[i] = "hit"
            elapsed[i] = time.perf_counter() - started
        if lanes and token is not None and label == "thread":
            # Thread mode: hand the miss lanes to the shared dispatcher,
            # which fuses them with other concurrent requests' windows
            # and runs one kernel call per resolved class graph.
            shared = self.path_cache is not None
            answers = self.dispatcher.submit(
                token,
                [
                    (key, lane[0], lane[1], shared, len(lane[3]))
                    for key, lane in lanes.items()
                ],
            )
            for key, lane in lanes.items():
                result, cross, share = answers[key]
                lane[2] = result
                if shared:
                    self.path_cache.put(key, result)
                if cross:
                    # Another in-flight request's identical lane ran the
                    # search; this batch's first rider was provisionally
                    # a "miss" (in-batch riders stay "coalesced").
                    tiers[lane[3][0]] = "cross_batch"
                for i in lane[3]:
                    elapsed[i] += share
        else:
            for plain, keys in groups.values():
                started = time.perf_counter()
                results = plain.route_batch([lanes[key][1] for key in keys])
                share = (time.perf_counter() - started) / max(
                    1, sum(len(lanes[key][3]) for key in keys)
                )
                for key, result in zip(keys, results):
                    lane = lanes[key]
                    lane[2] = result
                    if self.path_cache is not None:
                        self.path_cache.put(key, result)
                    for i in lane[3]:
                        elapsed[i] += share
        for key, lane in lanes.items():
            plain, _, result, riders = lane
            for i in riders:
                started = time.perf_counter()
                request = requests[i]
                paths[i], lengths[i] = self._render(plain, key, request, result)
                elapsed[i] += time.perf_counter() - started
        out = []
        for i, request in enumerate(requests):
            imputer, model_id, source = models[(request.dataset.upper(), request.typed)]
            path = paths[i]
            length = lengths[i]
            points_in = points_out = 0
            max_sed = 0.0
            budget = request.max_points
            if budget is not None and len(path.lats) > budget:
                # Strictly post-memo: the rendered-path memo (and the
                # route cache before it) stay budget-agnostic, so mixed
                # budgets share one cached geometry and an over-large
                # budget is an exact no-op.
                started = time.perf_counter()
                x, y = latlng_to_xy_m(path.lats, path.lngs)
                squeezed = compress_to_budget(x, y, budget)
                path = replace(
                    path,
                    lats=path.lats[squeezed.indices],
                    lngs=path.lngs[squeezed.indices],
                )
                length = float(path_length_m(path.lats, path.lngs))
                spent = time.perf_counter() - started
                elapsed[i] += spent
                _COMPRESS_SECONDS.observe(spent)
                _COMPRESS_DROPPED.inc(squeezed.points_dropped)
                points_in = squeezed.points_in
                points_out = squeezed.points_out
                max_sed = squeezed.max_sed_m
            if length is None:
                length = float(path_length_m(path.lats, path.lngs))
            _PATH_CACHE_TOTAL.inc(1, (tiers[i],))
            _IMPUTE_SECONDS.observe(elapsed[i], (label,))
            provenance = Provenance(
                model_id=model_id,
                cache=source,
                method=path.method,
                fallback=path.method == "fallback",
                num_cells=len(path.cells),
                path_length_m=length,
                elapsed_ms=elapsed[i] * 1e3,
                revision=getattr(imputer, "revision", 1),
                path_cache=tiers[i],
                expanded=path.expanded,
                executor=label,
                points_in=points_in,
                points_out=points_out,
                max_sed_m=max_sed,
            )
            out.append(
                ImputeResult(
                    request=request,
                    lats=path.lats,
                    lngs=path.lngs,
                    provenance=provenance,
                )
            )
        return out

    def _render(self, plain, key, request, result):
        """Render *result* through the rendered-path memo.

        Returns ``(ImputedPath, metric length)``.  The memo key pairs
        the route's full cache key with the *exact* raw endpoints --
        simplification and resampling both see the pinned endpoints, so
        only an exactly-repeated query may reuse the geometry (a nudged
        endpoint re-renders, bit-identically to an unmemoized engine).
        Straight-line fallbacks skip the memo: they are cheaper than
        the probe.
        """
        cache = self.render_cache
        if cache is None or result is None:
            path = plain.render_path(request.start, request.end, result)
            return path, float(path_length_m(path.lats, path.lngs))
        memo_key = (key, request.start, request.end)
        entry = cache.get(memo_key)
        if entry is not _MISSING:
            return entry
        path = plain.render_path(request.start, request.end, result)
        entry = (path, float(path_length_m(path.lats, path.lngs)))
        cache.put(memo_key, entry)
        return entry


# -- process-pool worker side ---------------------------------------------

#: Per-worker-process engine cache: registry root -> (path_cache_size,
#: BatchImputationEngine).  Models and path caches stay warm across
#: batches for the life of the pool.
_WORKER_ENGINES = {}

#: The last metrics snapshot this worker shipped to a parent.  Each
#: batch returns ``diff_snapshots(now, last_shipped)`` -- only growth
#: since the previous batch -- so the parent can absorb every delta
#: without ever double-counting (one-slot dict: workers are
#: single-threaded by design).
_WORKER_METRICS_SHIPPED = {"snapshot": None}


def _process_batch(root, path_cache_size, requests, config, revisions):
    """Run one batch slice inside a worker process.

    Module-level (picklable by reference); builds a thread-mode engine
    over its own registry on first use and reuses it afterwards.
    *revisions* (model id -> revision the parent resolved) evicts any
    worker-cached model a refresh has superseded before serving.

    Returns ``(results, metrics_delta)``: the worker's metric growth
    since its last shipped snapshot piggybacks on every batch so the
    parent can fold warm-worker cache/search activity into its own
    registry (see :mod:`repro.obs`).
    """
    from repro.service.registry import ModelRegistry

    cached = _WORKER_ENGINES.get(root)
    if cached is None or cached[0] != path_cache_size:
        # Workers are single-threaded by design: no dispatcher (there
        # are never concurrent requests to fuse inside one worker).
        engine = BatchImputationEngine(
            ModelRegistry(root),
            max_workers=1,
            path_cache_size=path_cache_size,
            batch_window_ms=0,
        )
        _WORKER_ENGINES[root] = (path_cache_size, engine)
    else:
        engine = cached[1]
    for model_id, revision in revisions.items():
        engine.registry.ensure_revision(model_id, revision)
    results = engine._run_serial(requests, config, "process")
    snapshot = METRICS.snapshot()
    delta = diff_snapshots(snapshot, _WORKER_METRICS_SHIPPED["snapshot"])
    _WORKER_METRICS_SHIPPED["snapshot"] = snapshot
    return results, delta
