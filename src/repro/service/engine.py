"""Batch imputation engine: many gap requests, one model resolution each.

The engine is the service's query executor.  A batch is grouped by
``(dataset, typed)`` so each model -- plain or typed -- is resolved
through the registry exactly once (one cache probe / disk load / fit per
model, however many gaps ride on it), then the per-gap imputations fan
out over a thread pool.  Fitted
imputers are read-only, so concurrent ``impute`` calls on one model are
safe; single-request batches skip the pool entirely.

Every result carries :class:`repro.service.schema.Provenance`: which
model answered, how it was obtained (cache hit / disk load / fit), the
routing method actually used (including the straight-line fallback
flag), the metric path length, and per-request wall-clock latency.
"""

import os
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core import HabitConfig
from repro.geo.proj import path_length_m
from repro.service.schema import ImputeResult, Provenance

__all__ = ["BatchImputationEngine"]


class BatchImputationEngine:
    """Executes batches of gap requests against a model registry."""

    def __init__(self, registry, max_workers=None):
        self.registry = registry
        self.max_workers = int(max_workers or min(8, (os.cpu_count() or 2)))

    def run(self, requests, config=None):
        """Impute every request; returns results in request order.

        *config* applies to the whole batch (the transport parses it once
        per payload).  Raises :class:`repro.service.registry.ModelNotFound`
        if any request names a dataset with no resolvable model.
        """
        requests = list(requests)
        config = config or HabitConfig()
        models = {}
        for request in requests:
            key = (request.dataset.upper(), request.typed)
            if key not in models:
                models[key] = self.registry.get(
                    request.dataset, config, typed=request.typed
                )
        if len(requests) <= 1:
            return [
                self._impute_one(models[(r.dataset.upper(), r.typed)], r)
                for r in requests
            ]
        workers = min(self.max_workers, len(requests))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(
                    lambda r: self._impute_one(models[(r.dataset.upper(), r.typed)], r),
                    requests,
                )
            )

    def _impute_one(self, resolved, request):
        imputer, model_id, source = resolved
        started = time.perf_counter()
        if request.typed:
            path = imputer.impute(request.start, request.end, request.vessel_type)
        else:
            path = imputer.impute(request.start, request.end)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        provenance = Provenance(
            model_id=model_id,
            cache=source,
            method=path.method,
            fallback=path.method == "fallback",
            num_cells=len(path.cells),
            path_length_m=float(path_length_m(path.lats, path.lngs)),
            elapsed_ms=elapsed_ms,
            revision=getattr(imputer, "revision", 1),
        )
        return ImputeResult(
            request=request, lats=path.lats, lngs=path.lngs, provenance=provenance
        )
