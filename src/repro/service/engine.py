"""Batch imputation engine: many gap requests, one model resolution each.

The engine is the service's query executor.  A batch is grouped by
``(dataset, typed)`` so each model -- plain or typed -- is resolved
through the registry exactly once (one cache probe / disk load / fit per
model, however many gaps ride on it), then the per-gap imputations fan
out over an executor.

Two executors are available (``executor=`` at construction, recorded in
every result's provenance):

- ``"thread"`` (default) -- a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Fitted imputers are read-only, so concurrent ``impute`` calls on one
  model are safe; single-request batches skip the pool entirely.  The
  right choice for latency-sensitive serving: no serialisation, shared
  path cache, models resolved once per process.
- ``"process"`` -- a persistent
  :class:`~concurrent.futures.ProcessPoolExecutor`.  CPU-bound batches
  (long searches, many gaps) escape the GIL by fanning contiguous slices
  of the batch across worker processes.  Workers resolve models from the
  registry *directory* (the registry's files-are-the-contract property)
  into a per-process cache, so models cross the process boundary via the
  filesystem once, never per task.  The parent probes every model
  before dispatch -- a warm cache entry or a cheap file-revision peek;
  only a genuine miss pays a full resolution (fit-on-miss / corrupt
  semantics included) -- so unresolvable models fail before any work is
  sent without the parent loading graphs only workers will query.
  Worker-side provenance reflects the worker's own cache tiers (first
  batch: ``"load"``), and the imputed paths are identical to the thread
  executor's.

On top of the model cache sits a **snap-and-path LRU cache**: hub-to-hub
queries from large fleets mostly repeat, and a route depends only on the
graph and the *snapped* endpoints -- never on the raw query positions.
(A cache miss pays one graph search -- by default the
contraction-hierarchy variant, whose upward-only bidirectional query
settles an order of magnitude fewer nodes than the ALT heuristic; the
per-route ``expanded`` count rides into provenance either way.)
Each request snaps its endpoints (memoized per graph), then looks up the
search result under ``(model id, class tag, revision, snapped src,
snapped dst)``; a hit renders the cached route without touching the
search heap at all.  ``revision`` in the key makes incremental refreshes
self-invalidating, and negative results (no route) are cached too.
Process-pool workers each hold their own path cache, which persists
across batches for the life of the pool.

Every result carries :class:`repro.service.schema.Provenance`: which
model answered, how it was obtained (cache hit / disk load / fit), the
path-cache tier (``hit``/``miss``/``bypass``), the executor that ran the
request (``thread``/``process``), the routing method actually used
(including the straight-line fallback flag), nodes expanded by the
search, the metric path length, and per-request wall-clock latency.
"""

import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.core import HabitConfig
from repro.geo.proj import path_length_m
from repro.obs import METRICS, diff_snapshots
from repro.service.schema import ImputeResult, Provenance

__all__ = ["BatchImputationEngine"]

_PATH_CACHE_TOTAL = METRICS.counter(
    "repro_path_cache_total",
    "Snap-and-path route-cache resolutions by tier (hit, miss, bypass).",
    ("tier",),
)
_IMPUTE_SECONDS = METRICS.histogram(
    "repro_impute_seconds",
    "Per-gap imputation latency in seconds (snap + route + render), "
    "by executor.",
    ("executor",),
)

#: Sentinel distinguishing "not cached" from a cached no-route (None).
_MISSING = object()

#: Executor names accepted by :class:`BatchImputationEngine`.
EXECUTORS = ("thread", "process")


class _PathCache:
    """Thread-safe bounded LRU of search results keyed by snapped routes."""

    def __init__(self, capacity):
        self.capacity = int(capacity)
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return _MISSING

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self):
        return len(self._entries)


class BatchImputationEngine:
    """Executes batches of gap requests against a model registry.

    Parameters: *registry* (a :class:`repro.service.ModelRegistry`),
    *max_workers* (fan-out width, default ``min(8, cpu_count)``),
    *path_cache_size* (snap-and-path LRU entries, 0 disables), and
    *executor* (``"thread"`` or ``"process"``, see the module docstring
    for the trade-off).  A process-mode engine owns a persistent worker
    pool; call :meth:`close` (or use the engine as a context manager)
    to release it.
    """

    def __init__(self, registry, max_workers=None, path_cache_size=4096, executor="thread"):
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        self.registry = registry
        self.max_workers = int(max_workers or min(8, (os.cpu_count() or 2)))
        self.executor = executor
        #: LRU over (model id, class tag, revision, snapped src, snapped
        #: dst) -> SearchResult | None; 0 disables route caching.
        self.path_cache = _PathCache(path_cache_size) if path_cache_size else None
        self._path_cache_size = path_cache_size
        self._pool = None  # lazy, persistent ProcessPoolExecutor
        self._pool_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        """Shut down the process pool, if one was started."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def _process_pool(self):
        # Locked: concurrent first requests on the threaded server must
        # not each spawn (and half-orphan) a worker pool.
        with self._pool_lock:
            if self._pool is None:
                # Spawn, never fork: the pool is created lazily from a
                # request thread of an already multi-threaded daemon (HTTP
                # handlers, follow ingest), and forking a threaded process
                # can hand workers a copy of someone's held lock.  Workers
                # rebuild everything from the registry path anyway, so the
                # only cost is a one-time interpreter start per worker.
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=multiprocessing.get_context("spawn"),
                )
            return self._pool

    # -- execution ---------------------------------------------------------

    def run(self, requests, config=None):
        """Impute every request; returns results in request order.

        *config* applies to the whole batch (the transport parses it once
        per payload).  Raises :class:`repro.service.registry.ModelNotFound`
        if any request names a dataset with no resolvable model -- in
        process mode too, before any work is dispatched.
        """
        requests = list(requests)
        config = config or HabitConfig()
        if self.executor == "process" and requests:
            return self._run_process(requests, config)
        models = {}
        for request in requests:
            key = (request.dataset.upper(), request.typed)
            if key not in models:
                models[key] = self.registry.get(
                    request.dataset, config, typed=request.typed
                )
        if len(requests) <= 1:
            return [
                self._impute_one(models[(r.dataset.upper(), r.typed)], r, "thread")
                for r in requests
            ]
        workers = min(self.max_workers, len(requests))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(
                    lambda r: self._impute_one(
                        models[(r.dataset.upper(), r.typed)], r, "thread"
                    ),
                    requests,
                )
            )

    def _run_process(self, requests, config):
        """Fan contiguous slices of the batch across the worker pool.

        The parent establishes that every model is resolvable *before*
        dispatch, but cheaply: a warm cache entry or the file's revision
        field answers without loading a graph the parent will never
        query (only a genuine miss pays a full :meth:`registry.get`,
        which applies the fit-on-miss/corrupt-file semantics and
        publishes for the workers).  The resolved revisions ride along
        so a warm worker drops a cached model that a refresh has since
        superseded -- workers never serve older revisions than the
        parent just observed.  Slice order concatenates back to request
        order.
        """
        revisions = {}
        for request in requests:
            key = (request.dataset.upper(), request.typed)
            if key in revisions:
                continue
            model_id, revision = self.registry.peek_revision(
                request.dataset, config, typed=request.typed
            )
            if revision is None:
                imputer, model_id, _ = self.registry.get(
                    request.dataset, config, typed=request.typed
                )
                revision = getattr(imputer, "revision", 1)
            revisions[key] = (model_id, revision)
        pool = self._process_pool()
        workers = min(self.max_workers, len(requests))
        per_slice = -(-len(requests) // workers)  # ceil division
        slices = [
            requests[i : i + per_slice] for i in range(0, len(requests), per_slice)
        ]
        root = str(self.registry.root)
        futures = [
            pool.submit(
                _process_batch,
                root,
                self._path_cache_size,
                batch,
                config,
                dict(revisions.values()),
            )
            for batch in slices
        ]
        results = []
        for future in futures:
            part, metrics_delta = future.result()
            # The worker piggybacked its metric growth on the batch
            # result; folding it here is what makes worker-side search
            # and path-cache activity visible in the parent's scrape.
            if METRICS.enabled:
                METRICS.absorb(metrics_delta)
            results.extend(part)
        return results

    def path_cache_stats(self):
        """JSON-ready path-cache block for ``/healthz``.

        Hit/miss counts come from the metrics registry when collection
        is enabled -- in process mode that includes worker-side probes
        absorbed from batch deltas -- and fall back to the parent
        cache's own counters when metrics are off.  ``entries`` and
        ``capacity`` always describe the parent's cache.
        """
        cache = self.path_cache
        if METRICS.enabled:
            hits = _PATH_CACHE_TOTAL.value(("hit",))
            misses = _PATH_CACHE_TOTAL.value(("miss",))
        else:
            hits = cache.hits if cache is not None else 0
            misses = cache.misses if cache is not None else 0
        return {
            "hits": hits,
            "misses": misses,
            "entries": len(cache) if cache is not None else 0,
            "capacity": cache.capacity if cache is not None else 0,
        }

    def _run_serial(self, requests, config, label):
        """Resolve-once + sequential impute; the worker-side half of
        process mode (one worker is single-threaded by design)."""
        models = {}
        for request in requests:
            key = (request.dataset.upper(), request.typed)
            if key not in models:
                models[key] = self.registry.get(
                    request.dataset, config, typed=request.typed
                )
        return [
            self._impute_one(models[(r.dataset.upper(), r.typed)], r, label)
            for r in requests
        ]

    def _route_cached(self, imputer, model_id, request):
        """Snap, probe the path cache, search on miss.

        Returns ``(path, tier)`` where *tier* is the path-cache tier for
        provenance.  Falls back to the plain ``impute`` call (tier
        ``"bypass"``) when caching is disabled or the model exposes no
        snap/route/render stages.
        """
        class_tag = ""
        plain = imputer
        if request.typed:
            resolver = getattr(imputer, "resolve", None)
            if resolver is None:
                plain = None
            else:
                plain, class_tag = resolver(request.vessel_type)
        if (
            self.path_cache is None
            or plain is None
            or not hasattr(plain, "snap_endpoints")
        ):
            if request.typed:
                return imputer.impute(request.start, request.end, request.vessel_type), "bypass"
            return imputer.impute(request.start, request.end), "bypass"
        snapped = plain.snap_endpoints(request.start, request.end)
        if snapped is None:  # out-of-coverage: straight line, nothing to cache
            return plain.render_path(request.start, request.end, None), "bypass"
        key = (model_id, class_tag, plain.revision, snapped[0], snapped[1])
        result = self.path_cache.get(key)
        if result is _MISSING:
            result = plain.route(snapped[0], snapped[1])
            self.path_cache.put(key, result)
            tier = "miss"
        else:
            tier = "hit"
        return plain.render_path(request.start, request.end, result), tier

    def _impute_one(self, resolved, request, executor_label):
        imputer, model_id, source = resolved
        started = time.perf_counter()
        path, path_tier = self._route_cached(imputer, model_id, request)
        elapsed = time.perf_counter() - started
        elapsed_ms = elapsed * 1e3
        _PATH_CACHE_TOTAL.inc(1, (path_tier,))
        _IMPUTE_SECONDS.observe(elapsed, (executor_label,))
        provenance = Provenance(
            model_id=model_id,
            cache=source,
            method=path.method,
            fallback=path.method == "fallback",
            num_cells=len(path.cells),
            path_length_m=float(path_length_m(path.lats, path.lngs)),
            elapsed_ms=elapsed_ms,
            revision=getattr(imputer, "revision", 1),
            path_cache=path_tier,
            expanded=path.expanded,
            executor=executor_label,
        )
        return ImputeResult(
            request=request, lats=path.lats, lngs=path.lngs, provenance=provenance
        )


# -- process-pool worker side ---------------------------------------------

#: Per-worker-process engine cache: registry root -> (path_cache_size,
#: BatchImputationEngine).  Models and path caches stay warm across
#: batches for the life of the pool.
_WORKER_ENGINES = {}

#: The last metrics snapshot this worker shipped to a parent.  Each
#: batch returns ``diff_snapshots(now, last_shipped)`` -- only growth
#: since the previous batch -- so the parent can absorb every delta
#: without ever double-counting (one-slot dict: workers are
#: single-threaded by design).
_WORKER_METRICS_SHIPPED = {"snapshot": None}


def _process_batch(root, path_cache_size, requests, config, revisions):
    """Run one batch slice inside a worker process.

    Module-level (picklable by reference); builds a thread-mode engine
    over its own registry on first use and reuses it afterwards.
    *revisions* (model id -> revision the parent resolved) evicts any
    worker-cached model a refresh has superseded before serving.

    Returns ``(results, metrics_delta)``: the worker's metric growth
    since its last shipped snapshot piggybacks on every batch so the
    parent can fold warm-worker cache/search activity into its own
    registry (see :mod:`repro.obs`).
    """
    from repro.service.registry import ModelRegistry

    cached = _WORKER_ENGINES.get(root)
    if cached is None or cached[0] != path_cache_size:
        engine = BatchImputationEngine(
            ModelRegistry(root), max_workers=1, path_cache_size=path_cache_size
        )
        _WORKER_ENGINES[root] = (path_cache_size, engine)
    else:
        engine = cached[1]
    for model_id, revision in revisions.items():
        engine.registry.ensure_revision(model_id, revision)
    results = engine._run_serial(requests, config, "process")
    snapshot = METRICS.snapshot()
    delta = diff_snapshots(snapshot, _WORKER_METRICS_SHIPPED["snapshot"])
    _WORKER_METRICS_SHIPPED["snapshot"] = snapshot
    return results, delta
