"""Trajectory similarity metrics.

:func:`dtw_distance_m` is the paper's accuracy measure: dynamic time
warping over pointwise metric distances.  The DP runs over anti-diagonals
so each wavefront is a single vectorised update -- O(n + m) small NumPy
operations instead of O(n * m) Python steps.
"""

import numpy as np

from repro.geo.proj import latlng_to_xy_m

__all__ = ["dtw_distance_m", "mean_consecutive_spacing_m"]


def _cost_matrix_m(lats_a, lngs_a, lats_b, lngs_b):
    if len(lats_a) == 0 or len(lats_b) == 0:
        raise ValueError("dtw_distance_m requires non-empty paths")
    lat0 = float(
        (np.asarray(lats_a, dtype=np.float64).mean() + np.asarray(lats_b).mean()) / 2.0
    )
    xa, ya = latlng_to_xy_m(lats_a, lngs_a, lat0=lat0)
    xb, yb = latlng_to_xy_m(lats_b, lngs_b, lat0=lat0)
    return np.hypot(xa[:, None] - xb[None, :], ya[:, None] - yb[None, :])


def _diag_bounds(d, n, m):
    return max(0, d - (m - 1)), min(n - 1, d)


def dtw_distance_m(lats_a, lngs_a, lats_b, lngs_b):
    """Dynamic-time-warping distance between two paths, in metres.

    Standard unconstrained DTW with step pattern {down, right, diagonal};
    returns the total alignment cost.
    """
    cost = _cost_matrix_m(lats_a, lngs_a, lats_b, lngs_b)
    n, m = cost.shape
    prev = None
    prev2 = None
    for d in range(n + m - 1):
        lo, hi = _diag_bounds(d, n, m)
        i = np.arange(lo, hi + 1)
        j = d - i
        cur = cost[i, j]
        if d > 0:
            lo1, hi1 = _diag_bounds(d - 1, n, m)
            best = np.full(len(i), np.inf)
            # D[i-1, j]
            valid = (i - 1 >= lo1) & (i - 1 <= hi1)
            idx = np.clip(i - 1 - lo1, 0, len(prev) - 1)
            np.minimum(best, np.where(valid, prev[idx], np.inf), out=best)
            # D[i, j-1]
            valid = (i >= lo1) & (i <= hi1) & (j >= 1)
            idx = np.clip(i - lo1, 0, len(prev) - 1)
            np.minimum(best, np.where(valid, prev[idx], np.inf), out=best)
            # D[i-1, j-1]
            if d >= 2:
                lo2, hi2 = _diag_bounds(d - 2, n, m)
                valid = (i - 1 >= lo2) & (i - 1 <= hi2) & (j >= 1)
                idx = np.clip(i - 1 - lo2, 0, len(prev2) - 1)
                np.minimum(best, np.where(valid, prev2[idx], np.inf), out=best)
            cur = cur + best
        prev2 = prev
        prev = cur
    return float(prev[-1])


def mean_consecutive_spacing_m(lats, lngs):
    """Mean spacing between consecutive path points, in metres."""
    lats = np.asarray(lats, dtype=np.float64)
    if len(lats) < 2:
        return 0.0
    x, y = latlng_to_xy_m(lats, lngs)
    return float(np.hypot(np.diff(x), np.diff(y)).mean())
