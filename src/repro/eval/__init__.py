"""Evaluation: trajectory similarity metrics and the imputer harness.

- :mod:`repro.eval.metrics` -- DTW distance in metres (the paper's main
  accuracy measure) plus endpoint and length diagnostics.
- :mod:`repro.eval.harness` -- :func:`evaluate_imputer`, which runs an
  imputer over a list of gaps and aggregates DTW, latency, and optionally
  model storage.
"""

from repro.eval.harness import EvaluationResult, evaluate_imputer
from repro.eval.metrics import dtw_distance_m, mean_consecutive_spacing_m

__all__ = [
    "EvaluationResult",
    "dtw_distance_m",
    "evaluate_imputer",
    "mean_consecutive_spacing_m",
]
