"""The imputer evaluation harness (Figures 5 and 7, Table 4 support).

Runs an imputer over a list of gaps, scoring each reconstruction against
the held-out ground truth with DTW and recording wall-clock latency.
"""

import time
from dataclasses import dataclass, field

import numpy as np

from repro.eval.metrics import dtw_distance_m

__all__ = ["EvaluationResult", "evaluate_imputer"]


@dataclass(frozen=True)
class EvaluationResult:
    """Aggregated per-gap scores for one imputer on one gap set."""

    name: str
    num_gaps: int
    mean_dtw_m: float
    median_dtw_m: float
    mean_latency_s: float
    mean_points: float
    fallback_rate: float
    storage_bytes: int | None = None
    dtw_m: np.ndarray = field(default=None, repr=False)


def evaluate_imputer(imputer, gaps, name, measure_storage=True):
    """Impute every gap and score against its ground truth.

    *gaps* are :class:`repro.experiments.common.Gap`-shaped objects
    (``start``/``end`` endpoint tuples plus ``truth_lats``/``truth_lngs``).
    Set *measure_storage* to include ``imputer.storage_size_bytes()``.
    """
    dtw_values = np.empty(len(gaps))
    points = np.empty(len(gaps))
    fallbacks = 0
    impute_seconds = 0.0
    for i, gap in enumerate(gaps):
        started = time.perf_counter()
        result = imputer.impute(gap.start, gap.end)
        impute_seconds += time.perf_counter() - started
        dtw_values[i] = dtw_distance_m(
            result.lats, result.lngs, gap.truth_lats, gap.truth_lngs
        )
        points[i] = result.num_points
        if getattr(result, "method", "") == "fallback":
            fallbacks += 1
    storage = imputer.storage_size_bytes() if measure_storage else None
    n = max(len(gaps), 1)
    return EvaluationResult(
        name=name,
        num_gaps=len(gaps),
        mean_dtw_m=float(dtw_values.mean()) if len(gaps) else float("nan"),
        median_dtw_m=float(np.median(dtw_values)) if len(gaps) else float("nan"),
        mean_latency_s=impute_seconds / n,
        mean_points=float(points.mean()) if len(gaps) else 0.0,
        fallback_rate=fallbacks / n,
        storage_bytes=storage,
        dtw_m=dtw_values,
    )
