"""``repro.obs``: a dependency-free, mergeable metrics core.

Three metric kinds -- labeled :class:`Counter`, :class:`Gauge`, and
:class:`Histogram` (fixed log-spaced buckets) -- live in a
:class:`MetricsRegistry`.  The module-level :data:`METRICS` registry is
the process-wide default every instrumented layer (search engine, fit
pipeline, model registry, batch engine, follow daemon, HTTP transport)
declares its metrics against at import time, so a scrape always renders
the full catalogue even before the first observation.

The design contract is the same one :mod:`repro.minidb.partial` gives
the fit pipeline: **snapshots are mergeable states**.
:meth:`MetricsRegistry.snapshot` captures every series as plain
picklable dicts, :func:`merge_snapshots` folds two snapshots into one
-- bit-exactly for counters and histogram bucket counts (integer
addition is associative and commutative, so merge order never changes a
count) -- and :meth:`MetricsRegistry.absorb` folds a snapshot (or a
:func:`diff_snapshots` delta) back into a live registry.  That is what
lets process-pool workers piggyback their metric deltas on batch
results: each worker diffs its registry against the last shipped
snapshot, the parent absorbs the delta, and worker-side search and
path-cache activity becomes visible in the parent's ``/metrics`` scrape
instead of vanishing into the pool.

Gauges are process-local by design: a gauge is a statement about *this*
process ("models loaded here"), so :func:`diff_snapshots` drops them
and workers never ship theirs.  :func:`merge_snapshots` sums gauges
(useful when aggregating sibling daemons); absorb follows the same
rule.

Rendering: :meth:`MetricsRegistry.render_prometheus` emits the
Prometheus text exposition format (version 0.0.4) served by
``GET /metrics``; :meth:`MetricsRegistry.render_json` is the same data
as JSON for tests and tools.  Disable collection wholesale with
:meth:`MetricsRegistry.set_enabled` (the CLI's ``--no-metrics``): every
observation becomes a cheap early return.
"""

import threading
import time
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "COUNT_BUCKETS",
    "METRICS",
    "MetricsRegistry",
    "diff_snapshots",
    "merge_snapshots",
]


def _log_spaced(lo_decade, hi_decade, per_decade=4):
    """Fixed log-spaced bucket edges, ``per_decade`` per power of ten."""
    return tuple(
        round(10.0 ** (e / per_decade), 12)
        for e in range(lo_decade * per_decade, hi_decade * per_decade + 1)
    )


#: Default latency bucket edges in seconds: 10 us .. 10 s, four per
#: decade.  Wide enough for a warm cache hit (~tens of us) and a cold
#: fit (~seconds) to land in distinct, resolvable buckets.
LATENCY_BUCKETS = _log_spaced(-5, 1)

#: Bucket edges for event counts (e.g. nodes expanded per search):
#: powers of two, 1 .. 65536.
COUNT_BUCKETS = tuple(float(1 << i) for i in range(17))


class _Metric:
    """Shared plumbing: a named, labeled series map inside a registry."""

    kind = None

    def __init__(self, registry, name, help_text, label_names):
        self._registry = registry
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._series = {}  # labels tuple -> value (kind-specific)

    def _check_labels(self, labels):
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label values "
                f"{self.label_names}, got {labels!r}"
            )
        return tuple(str(v) for v in labels)


class Counter(_Metric):
    """A monotone sum.  Integer increments stay integers, so merged
    snapshots reproduce the counts bit-exactly."""

    kind = "counter"

    def inc(self, amount=1, labels=()):
        registry = self._registry
        if not registry.enabled:
            return
        key = self._check_labels(labels)
        with registry._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, labels=()):
        key = self._check_labels(labels)
        with self._registry._lock:
            return self._series.get(key, 0)


class Gauge(_Metric):
    """A point-in-time value (process-local; never shipped in deltas)."""

    kind = "gauge"

    def set(self, value, labels=()):
        registry = self._registry
        if not registry.enabled:
            return
        key = self._check_labels(labels)
        with registry._lock:
            self._series[key] = value

    def value(self, labels=()):
        key = self._check_labels(labels)
        with self._registry._lock:
            return self._series.get(key, 0)


class _Timer:
    """Context manager observing its wall-clock span into a histogram."""

    __slots__ = ("_histogram", "_labels", "_started")

    def __init__(self, histogram, labels):
        self._histogram = histogram
        self._labels = labels

    def __enter__(self):
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        self._histogram.observe(time.perf_counter() - self._started, self._labels)


class Histogram(_Metric):
    """Cumulative-bucket histogram over fixed edges.

    Each series is ``[per-bucket counts (last = +Inf), total count,
    sum]``; bucket counts are integers, so merges are bit-exact like
    counters.  ``observe`` costs one bisect plus three increments.
    """

    kind = "histogram"

    def __init__(self, registry, name, help_text, label_names, buckets):
        super().__init__(registry, name, help_text, label_names)
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError(f"{name}: bucket edges must be strictly increasing")

    def observe(self, value, labels=()):
        registry = self._registry
        if not registry.enabled:
            return
        key = self._check_labels(labels)
        slot = bisect_left(self.buckets, value)
        with registry._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * (len(self.buckets) + 1), 0, 0.0]
                self._series[key] = series
            series[0][slot] += 1
            series[1] += 1
            series[2] += value

    def time(self, labels=()):
        """``with histogram.time(labels): ...`` observes the span."""
        return _Timer(self, labels)

    def summary(self, labels=()):
        """``{count, sum, p50, p95, p99}`` for one series (estimates)."""
        return {
            "count": self.count(labels),
            "sum": self.sum(labels),
            "p50": self.quantile(0.50, labels),
            "p95": self.quantile(0.95, labels),
            "p99": self.quantile(0.99, labels),
        }

    def count(self, labels=()):
        key = self._check_labels(labels)
        with self._registry._lock:
            series = self._series.get(key)
            return 0 if series is None else series[1]

    def sum(self, labels=()):
        key = self._check_labels(labels)
        with self._registry._lock:
            series = self._series.get(key)
            return 0.0 if series is None else series[2]

    def quantile(self, q, labels=()):
        """Estimated q-quantile by linear interpolation within buckets.

        Returns ``None`` for an empty series; observations beyond the
        last finite edge report that edge (the estimate saturates).
        """
        key = self._check_labels(labels)
        with self._registry._lock:
            series = self._series.get(key)
            if series is None or series[1] == 0:
                return None
            counts = list(series[0])
            total = series[1]
        rank = q * total
        cumulative = 0
        for slot, count in enumerate(counts):
            if count == 0:
                continue
            if cumulative + count >= rank:
                if slot >= len(self.buckets):
                    return self.buckets[-1]
                lo = self.buckets[slot - 1] if slot > 0 else 0.0
                hi = self.buckets[slot]
                fraction = (rank - cumulative) / count
                return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
            cumulative += count
        return self.buckets[-1]


class MetricsRegistry:
    """A set of named metrics with mergeable snapshots.

    Declaring a metric is idempotent: re-declaring the same name with
    the same kind/labels returns the existing object (so every module
    can declare at import time without ordering constraints); a
    conflicting re-declaration raises.
    """

    def __init__(self, enabled=True):
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics = {}

    def set_enabled(self, enabled):
        """Turn collection on/off (observations become no-ops when off)."""
        self.enabled = bool(enabled)
        return self

    # -- declaration -------------------------------------------------------

    def _declare(self, cls, name, help_text, label_names, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != tuple(
                    label_names
                ):
                    raise ValueError(
                        f"metric {name!r} already declared as "
                        f"{existing.kind}{existing.label_names}"
                    )
                return existing
            metric = cls(self, name, help_text, label_names, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name, help_text="", labels=()):
        return self._declare(Counter, name, help_text, labels)

    def gauge(self, name, help_text="", labels=()):
        return self._declare(Gauge, name, help_text, labels)

    def histogram(self, name, help_text="", labels=(), buckets=LATENCY_BUCKETS):
        return self._declare(Histogram, name, help_text, labels, buckets=buckets)

    def get(self, name):
        """The declared metric object, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self):
        """Every series as plain picklable dicts (a mergeable state)."""
        with self._lock:
            out = {}
            for name, metric in self._metrics.items():
                if metric.kind == "histogram":
                    series = {
                        key: {"buckets": list(value[0]), "count": value[1], "sum": value[2]}
                        for key, value in metric._series.items()
                    }
                else:
                    series = dict(metric._series)
                entry = {
                    "kind": metric.kind,
                    "help": metric.help,
                    "label_names": list(metric.label_names),
                    "series": series,
                }
                if metric.kind == "histogram":
                    entry["buckets"] = list(metric.buckets)
                out[name] = entry
            return out

    def absorb(self, snapshot):
        """Fold a snapshot (or a delta) into this registry's counts.

        Unknown metrics are declared from the snapshot's metadata, so a
        parent can absorb series its own process never touched.  Gauges
        are skipped: they describe the donor process, not this one.
        """
        if not snapshot:
            return self
        for name, entry in snapshot.items():
            kind = entry["kind"]
            if kind == "gauge":
                continue
            if kind == "counter":
                metric = self.counter(name, entry["help"], entry["label_names"])
                with self._lock:
                    for key, value in entry["series"].items():
                        key = tuple(key)
                        metric._series[key] = metric._series.get(key, 0) + value
            elif kind == "histogram":
                metric = self.histogram(
                    name, entry["help"], entry["label_names"], entry["buckets"]
                )
                if list(metric.buckets) != [float(b) for b in entry["buckets"]]:
                    raise ValueError(f"metric {name!r}: bucket edges differ")
                with self._lock:
                    for key, value in entry["series"].items():
                        key = tuple(key)
                        series = metric._series.get(key)
                        if series is None:
                            series = [[0] * (len(metric.buckets) + 1), 0, 0.0]
                            metric._series[key] = series
                        for slot, count in enumerate(value["buckets"]):
                            series[0][slot] += count
                        series[1] += value["count"]
                        series[2] += value["sum"]
            else:
                raise ValueError(f"metric {name!r}: unknown kind {kind!r}")
        return self

    # -- rendering ---------------------------------------------------------

    def render_prometheus(self):
        """Text exposition format 0.0.4 (the ``GET /metrics`` body)."""
        lines = []
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} {metric.kind}")
                if metric.kind == "histogram":
                    for key in sorted(metric._series):
                        counts, total, total_sum = metric._series[key]
                        cumulative = 0
                        for slot, edge in enumerate(metric.buckets):
                            cumulative += counts[slot]
                            labels = _label_str(
                                metric.label_names, key, ("le", _format_number(edge))
                                )
                            lines.append(f"{name}_bucket{labels} {cumulative}")
                        cumulative += counts[-1]
                        labels = _label_str(metric.label_names, key, ("le", "+Inf"))
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                        base = _label_str(metric.label_names, key)
                        lines.append(f"{name}_sum{base} {_format_number(total_sum)}")
                        lines.append(f"{name}_count{base} {total}")
                else:
                    for key in sorted(metric._series):
                        labels = _label_str(metric.label_names, key)
                        value = _format_number(metric._series[key])
                        lines.append(f"{name}{labels} {value}")
        return "\n".join(lines) + "\n"

    def render_json(self):
        """The snapshot with JSON-safe keys (label dicts, not tuples)."""
        out = {}
        for name, entry in self.snapshot().items():
            series = [
                {
                    "labels": dict(zip(entry["label_names"], key)),
                    "value": value,
                }
                for key, value in sorted(entry["series"].items())
            ]
            json_entry = {
                "kind": entry["kind"],
                "help": entry["help"],
                "series": series,
            }
            if "buckets" in entry:
                json_entry["buckets"] = entry["buckets"]
            out[name] = json_entry
        return out


def _format_number(value):
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".12g")


def _escape_label(value):
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _label_str(label_names, label_values, extra=None):
    pairs = list(zip(label_names, label_values))
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label(str(v))}"' for name, v in pairs)
    return "{" + body + "}"


def _merged_series(kind, a_series, b_series, num_buckets=0):
    out = {}
    for key in set(a_series) | set(b_series):
        va, vb = a_series.get(key), b_series.get(key)
        if va is None or vb is None:
            present = va if vb is None else vb
            out[key] = (
                {
                    "buckets": list(present["buckets"]),
                    "count": present["count"],
                    "sum": present["sum"],
                }
                if kind == "histogram"
                else present
            )
        elif kind == "histogram":
            out[key] = {
                "buckets": [x + y for x, y in zip(va["buckets"], vb["buckets"])],
                "count": va["count"] + vb["count"],
                "sum": va["sum"] + vb["sum"],
            }
        else:
            out[key] = va + vb
    return out


def merge_snapshots(a, b):
    """Fold two snapshots into one; commutative, and bit-exact for
    counters and histogram bucket counts (integer sums)."""
    out = {}
    for name in set(a) | set(b):
        ea, eb = a.get(name), b.get(name)
        if ea is None or eb is None:
            present = ea if eb is None else eb
            out[name] = {
                **present,
                "series": _merged_series(present["kind"], present["series"], {}),
            }
            continue
        if ea["kind"] != eb["kind"]:
            raise ValueError(
                f"metric {name!r}: cannot merge kind {ea['kind']} with {eb['kind']}"
            )
        if ea.get("buckets") != eb.get("buckets"):
            raise ValueError(f"metric {name!r}: bucket edges differ")
        out[name] = {
            **ea,
            "series": _merged_series(ea["kind"], ea["series"], eb["series"]),
        }
    return out


def diff_snapshots(current, previous):
    """The counter/histogram growth between two snapshots of one registry.

    The worker-side half of metric piggybacking: ship
    ``diff(now, last_shipped)`` and let the parent absorb it.  Gauges
    are dropped (process-local); series and metrics absent from
    *previous* pass through whole.
    """
    out = {}
    for name, entry in current.items():
        kind = entry["kind"]
        if kind == "gauge":
            continue
        prev = (previous or {}).get(name)
        prev_series = prev["series"] if prev else {}
        series = {}
        for key, value in entry["series"].items():
            before = prev_series.get(key)
            if before is None:
                series[key] = (
                    {
                        "buckets": list(value["buckets"]),
                        "count": value["count"],
                        "sum": value["sum"],
                    }
                    if kind == "histogram"
                    else value
                )
            elif kind == "histogram":
                delta = {
                    "buckets": [
                        x - y for x, y in zip(value["buckets"], before["buckets"])
                    ],
                    "count": value["count"] - before["count"],
                    "sum": value["sum"] - before["sum"],
                }
                if delta["count"]:
                    series[key] = delta
            else:
                delta = value - before
                if delta:
                    series[key] = delta
        if series:
            out[name] = {**entry, "series": series}
    return out


#: The process-wide default registry every instrumented layer uses.
METRICS = MetricsRegistry()
