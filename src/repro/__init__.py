"""Reproduction of *Data-Driven Trajectory Imputation for Vessel Mobility
Analysis* (EDBT 2026).

The package is layered bottom-up:

- :mod:`repro.hexgrid` / :mod:`repro.minidb` -- **substrates**: a vectorised
  hexagonal spatial index and a small columnar table engine (group-by,
  window lag, HyperLogLog sketches).
- :mod:`repro.ais` / :mod:`repro.sim` / :mod:`repro.experiments` -- **data**:
  the AIS column schema, synthetic DAN/KIEL/SAR dataset generators, and the
  experiment preparation harness (cleaning, splitting, gap extraction).
- :mod:`repro.core` -- **pipeline**: message cleaning, trip segmentation,
  trajectory annotation/compression, per-cell statistics, and the HABIT
  imputer (A* over a learned cell-transition graph).
- :mod:`repro.baselines` -- straight-line and GTI (point-graph) imputers.
- :mod:`repro.eval` / :mod:`repro.geo` / :mod:`repro.io` -- DTW metrics and
  the evaluation harness, path simplification and turn statistics, GeoJSON
  export.

See ``docs/ARCHITECTURE.md`` for the full architecture notes and
``README.md`` for a quickstart.
"""

__version__ = "0.1.0"

__all__ = [
    "ais",
    "baselines",
    "core",
    "eval",
    "experiments",
    "geo",
    "hexgrid",
    "io",
    "minidb",
    "sim",
]
