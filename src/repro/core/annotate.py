"""Message cleaning and trajectory annotation/compression.

:func:`clean_messages` is the pipeline's first stage: drop malformed AIS
messages and canonicalise ordering.  :func:`annotate_events` and
:func:`compress_trajectory` implement critical-point compression in the
spirit of Fikioris et al. (2022): flag per-row mobility events (stops,
turns, gaps, speed changes) and keep only event rows plus trip endpoints.
Fitting HABIT on the compressed stream is the Table/ablation trade-off:
far fewer rows, thinner cell support.
"""

import numpy as np

from repro.ais import schema

__all__ = ["annotate_events", "clean_messages", "compress_trajectory"]

#: Event columns produced by :func:`annotate_events`.
EVENT_COLUMNS = ("ev_stop", "ev_slow", "ev_turn", "ev_speed_change", "ev_gap_before")


def clean_messages(table, max_sog_kn=60.0):
    """Drop malformed messages and sort by (vessel, time).

    Removes non-finite or out-of-range coordinates, negative or implausible
    speeds, and duplicate ``(vessel_id, t)`` reports (keeping the first).
    Returns a new table; an empty input passes through unchanged.
    """
    if table.num_rows == 0:
        return table
    lat = np.asarray(table.column(schema.LAT), dtype=np.float64)
    lon = np.asarray(table.column(schema.LON), dtype=np.float64)
    sog = np.asarray(table.column(schema.SOG), dtype=np.float64)
    t = np.asarray(table.column(schema.T), dtype=np.float64)
    mask = (
        np.isfinite(lat)
        & np.isfinite(lon)
        & np.isfinite(t)
        & (np.abs(lat) <= 90.0)
        & (np.abs(lon) <= 180.0)
        & np.isfinite(sog)
        & (sog >= 0.0)
        & (sog <= max_sog_kn)
    )
    cleaned = table.filter(mask).sort_by(schema.VESSEL_ID, schema.T)
    if cleaned.num_rows == 0:
        return cleaned
    vessel = cleaned.column(schema.VESSEL_ID)
    tt = cleaned.column(schema.T)
    fresh = np.ones(cleaned.num_rows, dtype=bool)
    fresh[1:] = (vessel[1:] != vessel[:-1]) | (tt[1:] != tt[:-1])
    return cleaned.filter(fresh)


def annotate_events(
    trips,
    stop_sog_kn=0.5,
    slow_sog_kn=2.0,
    turn_deg=15.0,
    speed_change_kn=2.0,
    gap_s=600.0,
):
    """Add boolean event columns to a segmented trip table.

    Events are computed per trip in time order: ``ev_stop`` / ``ev_slow``
    from instantaneous speed, ``ev_turn`` from course change versus the
    previous report, ``ev_speed_change`` from speed delta, and
    ``ev_gap_before`` when the preceding report is more than *gap_s* away.
    """
    if trips.num_rows == 0:
        return trips.with_columns(
            **{name: np.zeros(0, dtype=bool) for name in EVENT_COLUMNS}
        )
    sog = np.asarray(trips.column(schema.SOG), dtype=np.float64)
    cog = np.asarray(trips.column(schema.COG), dtype=np.float64)
    t = np.asarray(trips.column(schema.T), dtype=np.float64)
    prev_t = trips.lag(schema.T, schema.TRIP_ID, schema.T, 1, np.nan)
    prev_sog = trips.lag(schema.SOG, schema.TRIP_ID, schema.T, 1, np.nan)
    prev_cog = trips.lag(schema.COG, schema.TRIP_ID, schema.T, 1, np.nan)
    d_cog = np.abs(np.mod(cog - prev_cog + 180.0, 360.0) - 180.0)
    with np.errstate(invalid="ignore"):
        ev_turn = np.where(np.isnan(prev_cog), False, d_cog > turn_deg)
        ev_speed = np.where(
            np.isnan(prev_sog), False, np.abs(sog - prev_sog) > speed_change_kn
        )
        ev_gap = np.where(np.isnan(prev_t), False, (t - prev_t) > gap_s)
    return trips.with_columns(
        ev_stop=sog < stop_sog_kn,
        ev_slow=(sog >= stop_sog_kn) & (sog < slow_sog_kn),
        ev_turn=ev_turn.astype(bool),
        ev_speed_change=ev_speed.astype(bool),
        ev_gap_before=ev_gap.astype(bool),
    )


def compress_trajectory(annotated):
    """Keep only critical points: event rows plus each trip's endpoints.

    Every trip stays represented (its first and last report are always
    retained), so downstream per-trip logic keeps working on the
    compressed stream.
    """
    if annotated.num_rows == 0:
        return annotated
    trip = annotated.column(schema.TRIP_ID)
    prev_trip = annotated.lag(schema.TRIP_ID, schema.TRIP_ID, schema.T, 1, -1)
    next_trip = annotated.lag(schema.TRIP_ID, schema.TRIP_ID, schema.T, -1, -1)
    keep = (prev_trip != trip) | (next_trip != trip)
    for name in EVENT_COLUMNS:
        keep = keep | np.asarray(annotated.column(name), dtype=bool)
    return annotated.filter(keep)
