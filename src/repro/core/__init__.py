"""The HABIT pipeline: clean -> segment -> index -> learn -> impute.

This is the paper's method end to end:

1. :func:`clean_messages` drops malformed AIS messages and canonicalises
   order (:mod:`repro.core.annotate`).
2. :func:`segment_trips` splits vessel streams into trips at temporal or
   spatial discontinuities (:mod:`repro.core.segmentation`).
3. :func:`compute_statistics` aggregates positions into hex-cell and
   cell-transition statistics with :mod:`repro.minidb`
   (:mod:`repro.core.statistics`); the same stage runs shard-by-shard via
   :func:`partial_statistics` + :func:`merge_statistics` (parallel and
   streaming fits: :mod:`repro.core.parallel`, :class:`StreamingSegmenter`).
4. :class:`HabitImputer` builds a weighted cell graph from those statistics
   and answers gap queries with A* plus RDP smoothing
   (:mod:`repro.core.habit`, :mod:`repro.core.graph`).

Side branches: :func:`annotate_events` / :func:`compress_trajectory`
implement the critical-point compression ablation, and
:class:`TypedHabitImputer` routes queries over per-vessel-type graphs
(:mod:`repro.core.typed`).
"""

from repro.core.annotate import annotate_events, clean_messages, compress_trajectory
from repro.core.graph import (
    GOAL_DIRECTED_METHODS,
    SEARCH_METHODS,
    CellGraph,
    SearchResult,
)
from repro.core.habit import HabitConfig, HabitImputer, ModelFormatError, config_hash
from repro.core.parallel import compute_statistics_sharded, parallel_fit, shard_trips
from repro.core.path import ImputedPath, straight_line_path
from repro.core.segmentation import (
    StreamingSegmenter,
    segment_trips,
    segment_trips_stream,
)
from repro.core.statistics import (
    StatisticsState,
    compute_statistics,
    merge_statistics,
    partial_statistics,
)
from repro.core.typed import TypedHabitImputer

__all__ = [
    "CellGraph",
    "GOAL_DIRECTED_METHODS",
    "HabitConfig",
    "HabitImputer",
    "ImputedPath",
    "ModelFormatError",
    "SEARCH_METHODS",
    "SearchResult",
    "StatisticsState",
    "StreamingSegmenter",
    "TypedHabitImputer",
    "annotate_events",
    "clean_messages",
    "compress_trajectory",
    "compute_statistics",
    "compute_statistics_sharded",
    "config_hash",
    "merge_statistics",
    "parallel_fit",
    "partial_statistics",
    "segment_trips",
    "segment_trips_stream",
    "shard_trips",
    "straight_line_path",
]
