"""Vectorised batch query kernel over contraction-hierarchy CSR arrays.

The scalar CH query (:meth:`repro.core.graph.CellGraph._ch_query`)
settles ~30 nodes per r10 query, so nearly all of its latency is
CPython interpreter overhead in the heap/relaxation loop (~8 us per
settled node).  This module removes the interpreter from the per-node
path by answering *many* ``(src, dst)`` queries in one NumPy sweep:

- **One combined bidirectional sweep.**  Upward CH edges go strictly to
  higher-ranked nodes, so each directed search space is a DAG and a
  label-correcting sweep converges without any priority queue.  Forward
  and backward searches run as *one* sweep over a doubled node space:
  lane ``q`` holds its forward labels at ``[0, n)`` and its backward
  labels at ``[n, 2n)`` of the same row, seeded with both endpoints at
  once.  Each round relaxes every outgoing edge of the active frontier
  for all queries with one ``np.minimum.at`` scatter; rounds stop at
  the fixpoint, after max(longest up chain, longest down chain) rounds
  instead of their sum.
- **Vectorised stall-on-demand.**  Before expanding, frontier entries
  whose label a higher-ranked in-neighbour already beats are masked out
  of the round (their labels are provably not on a shortest up-down
  path), pruning the cones exactly like the scalar query's stall test.
- **One argmin meet.**  Forward and backward label tables meet in a
  single ``(dist_f + dist_b).argmin(axis=1)`` reduction per chunk.
- **Precomputed shortcut expansions.**  ``build_kernel_tables`` unrolls
  every augmented edge's full original-edge expansion once per
  hierarchy (a CSR keyed by the sorted augmented-edge table), so
  unpacking all result paths is one ``np.searchsorted`` plus one gather
  -- O(total output nodes), with no per-path Python and no repeated
  passes over nested shortcuts.

Label values are the same left-associated float sums the scalar query
computes (``label(parent) + edge_cost``, minimised over parents), and
the stalled up-DAG fixpoint matches the scalar query's label set, so
batch costs are *bit-equal* to the scalar CH query's -- the batch
property suite asserts exactly that.

The kernel is pure NumPy -- no graph imports (the graph layer calls in
with raw arrays and builds ``SearchResult`` objects from the returned
node paths), no new dependencies.  Batches are processed in chunks so
the dense workspace stays bounded (see :data:`BATCH_CHUNK_CELLS`).

Instrumentation (:mod:`repro.obs`): ``repro_kernel_batch_size`` (pairs
per ``find_paths_batch`` call), ``repro_kernel_sweep_iterations``
(relaxation rounds per chunk), and ``repro_kernel_seconds`` (kernel
wall time per batch).
"""

from collections import namedtuple

import numpy as np

from repro.obs import COUNT_BUCKETS, METRICS

__all__ = [
    "BATCH_CHUNK_CELLS",
    "KernelTables",
    "batch_ch_paths",
    "build_kernel_tables",
    "initial_cut_counts",
    "solve_batch",
]

#: Upper bound on ``chunk_queries * (2 * num_nodes)`` for the dense
#: distance / parent workspace -- 2**21 cells keeps peak kernel memory
#: around a few tens of MB while still fitting hundreds of queries per
#: chunk on r10-sized graphs.  Larger batches run in chunks of this.
BATCH_CHUNK_CELLS = 1 << 21

KERNEL_BATCH_SIZE = METRICS.histogram(
    "repro_kernel_batch_size",
    "Query pairs per batch-kernel invocation.",
    buckets=COUNT_BUCKETS,
)
KERNEL_SWEEP_ITERATIONS = METRICS.histogram(
    "repro_kernel_sweep_iterations",
    "Frontier relaxation rounds per batch-kernel chunk.",
    buckets=COUNT_BUCKETS,
)
KERNEL_SECONDS = METRICS.histogram(
    "repro_kernel_seconds",
    "Batch-kernel wall time per invocation in seconds.",
)

_INF = np.inf

#: Preprocessed per-hierarchy arrays consumed by :func:`batch_ch_paths`.
#: ``relax_*``/``stall_*`` are the combined doubled-node-space CSRs
#: (forward half relaxes upward edges and stalls on downward ones,
#: backward half vice versa, offset by ``n``); ``mid_keys`` is the
#: sorted augmented-edge key table (``u * n + v``) and
#: ``exp_indptr``/``exp_nodes`` its per-edge original-node expansions.
KernelTables = namedtuple(
    "KernelTables",
    [
        "num_nodes",
        "relax_indptr",
        "relax_indices",
        "relax_costs",
        "stall_indptr",
        "stall_indices",
        "stall_costs",
        "mid_keys",
        "exp_indptr",
        "exp_nodes",
    ],
)


def _expand_ranges(starts, counts):
    """Concatenated ``arange(start, start + count)`` blocks (CSR gather).

    The standard vectorised trick: one global ``arange`` shifted per
    block, so gathering every frontier node's edge slice costs O(total
    edges) with no Python loop.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    out = np.arange(total, dtype=np.int64)
    out += np.repeat(starts - (ends - counts), counts)
    return out


def _expand_all(mid_keys, mid_vals, n):
    """Unroll every augmented edge into its original-edge node chain.

    Iteratively splits each shortcut edge ``a -> b`` with middle ``m``
    into ``a -> m, m -> b`` (both of which are themselves augmented
    edges) until only original edges remain, processing *all* table
    rows at once.  Returns ``(exp_indptr, exp_nodes)``: row ``i`` of
    the CSR lists the path tail nodes (excluding the head) of edge
    ``mid_keys[i]`` in order.
    """
    num = mid_keys.size
    eid = np.arange(num, dtype=np.int64)
    a = mid_keys // n
    b = mid_keys - a * n
    while num and a.size:
        pos = np.minimum(np.searchsorted(mid_keys, a * n + b), num - 1)
        key = a * n + b
        mid = np.where(mid_keys[pos] == key, mid_vals[pos], -1)
        shortcut = mid >= 0
        if not shortcut.any():
            break
        rep = np.where(shortcut, 2, 1)
        starts = np.cumsum(rep) - rep
        na = np.repeat(a, rep)
        nb = np.repeat(b, rep)
        eid = np.repeat(eid, rep)
        nb[starts[shortcut]] = mid[shortcut]  # first half: a -> mid
        na[starts[shortcut] + 1] = mid[shortcut]  # second half: mid -> b
        a, b = na, nb
    counts = np.bincount(eid, minlength=num)
    exp_indptr = np.zeros(num + 1, dtype=np.int64)
    np.cumsum(counts, out=exp_indptr[1:])
    return exp_indptr, b.astype(np.int32)


def build_kernel_tables(n, up, down, mid_keys, mid_vals):
    """Preprocess a hierarchy's CSRs for :func:`batch_ch_paths`.

    *up*/*down* are the ``(indptr, indices, costs)`` upward and
    downward shortcut CSRs (down row ``v`` lists in-neighbours ``u``
    with higher rank and cost ``c(u, v)``); *mid_keys*/*mid_vals* the
    sorted augmented-edge table mapping ``u * n + v`` to the shortcut's
    middle node (``-1`` for original edges).

    Builds the combined doubled-node-space CSRs -- rows ``[0, n)`` are
    the forward search (relax upward, stall on downward), rows
    ``[n, 2n)`` the backward search (relax downward, stall on upward,
    indices offset by ``n``) -- plus the precomputed shortcut-expansion
    CSR.  Called once per hierarchy; the graph layer caches the result.
    """
    up_indptr, up_indices, up_costs = up
    down_indptr, down_indices, down_costs = down
    up_indptr = np.asarray(up_indptr, dtype=np.int64)
    down_indptr = np.asarray(down_indptr, dtype=np.int64)
    relax_indptr = np.concatenate([up_indptr, up_indptr[-1] + down_indptr[1:]])
    relax_indices = np.concatenate(
        [up_indices.astype(np.int64), down_indices.astype(np.int64) + n]
    )
    relax_costs = np.concatenate([up_costs, down_costs])
    stall_indptr = np.concatenate([down_indptr, down_indptr[-1] + up_indptr[1:]])
    stall_indices = np.concatenate(
        [down_indices.astype(np.int64), up_indices.astype(np.int64) + n]
    )
    stall_costs = np.concatenate([down_costs, up_costs])
    exp_indptr, exp_nodes = _expand_all(mid_keys, mid_vals, n)
    return KernelTables(
        n,
        relax_indptr,
        relax_indices,
        relax_costs,
        stall_indptr,
        stall_indices,
        stall_costs,
        mid_keys,
        exp_indptr,
        exp_nodes,
    )


def _sweep(tables, num_q, srcs, dsts):
    """Combined forward+backward label-correcting sweep for a chunk.

    Lane ``q`` owns ``2n`` cells: forward labels (from ``srcs[q]``,
    following upward edges) in ``[0, 2n * q + n)`` and backward labels
    (from ``dsts[q]``, following downward edges) in the upper half.
    Returns ``(dist, parent, labelled, rounds)`` where *dist*/*parent*
    are flat ``(num_q * 2n)`` workspaces (parent values are combined
    node ids), *labelled* counts each lane's finite labels (the batch
    analogue of the scalar ``expanded``), and *rounds* counts
    relaxation iterations until the fixpoint.
    """
    n2 = 2 * tables.num_nodes
    relax_indptr = tables.relax_indptr
    relax_indices = tables.relax_indices
    relax_costs = tables.relax_costs
    stall_indptr = tables.stall_indptr
    stall_indices = tables.stall_indices
    stall_costs = tables.stall_costs
    dist = np.full(num_q * n2, _INF)
    parent = np.full(num_q * n2, -1, dtype=np.int32)
    seen = np.zeros(num_q * n2, dtype=bool)
    labelled = np.full(num_q, 2, dtype=np.int64)
    qids = np.arange(num_q, dtype=np.int64)
    fq = np.concatenate([qids, qids])
    fv = np.concatenate([srcs, dsts + tables.num_nodes])
    fkey = fq * n2 + fv
    dist[fkey] = 0.0
    seen[fkey] = True
    rounds = 0
    while fv.size:
        rounds += 1
        base = dist[fkey]
        # Stall-on-demand: drop (query, node) pairs whose label a
        # higher-ranked neighbour already beats.  Their labels stay
        # (safe upper bounds for the meet); they simply stop
        # propagating, exactly like the scalar stall test.
        sdeg = stall_indptr[fv + 1] - stall_indptr[fv]
        if sdeg.any():
            eids = _expand_ranges(stall_indptr[fv], sdeg)
            bound = (
                dist[np.repeat(fq, sdeg) * n2 + stall_indices[eids]]
                + stall_costs[eids]
            )
            hits = np.bincount(
                np.repeat(np.arange(fv.size), sdeg),
                weights=bound < np.repeat(base, sdeg),
                minlength=fv.size,
            )
            keep = hits == 0
            if not keep.all():
                fq, fv, base = fq[keep], fv[keep], base[keep]
                if not fv.size:
                    break
        deg = relax_indptr[fv + 1] - relax_indptr[fv]
        eids = _expand_ranges(relax_indptr[fv], deg)
        if not eids.size:
            break
        key = np.repeat(fq, deg) * n2 + relax_indices[eids]
        nd = np.repeat(base, deg) + relax_costs[eids]
        before = dist[key]
        np.minimum.at(dist, key, nd)
        after = dist[key]
        improved = after < before
        # A candidate "wins" its key when it equals the post-scatter
        # minimum; duplicate winners are cost ties, either parent is a
        # valid shortest-path predecessor.
        winners = improved & (nd == after)
        parent[key[winners]] = np.repeat(fv, deg)[winners]
        # Sort + adjacent-compare dedup of the improved keys (same
        # result as ``np.unique`` at a fraction of the cost).
        fkey = key[improved]
        if fkey.size:
            fkey.sort(kind="stable")
            mask = np.empty(fkey.size, dtype=bool)
            mask[0] = True
            np.not_equal(fkey[1:], fkey[:-1], out=mask[1:])
            fkey = fkey[mask]
        fq = fkey // n2
        fv = fkey - fq * n2
        fresh = ~seen[fkey]
        if fresh.any():
            seen[fkey[fresh]] = True
            labelled += np.bincount(fq[fresh], minlength=num_q)
    return dist, parent, labelled, rounds


def _trace_steps(parent, n2, qids, start):
    """Walk many queries' parent chains in lock-step.

    Returns a list of per-round node arrays (all ``qids.size`` long):
    ``steps[k][j]`` is query ``j``'s ``k``-th ancestor, ``-1`` once its
    chain is exhausted.  Each round is one vectorised gather, so the
    cost is O(longest chain), not O(total nodes) Python steps.
    """
    steps = []
    qn = qids * n2
    cur = start
    while True:
        steps.append(cur)
        nxt = np.where(
            cur >= 0, parent[qn + np.maximum(cur, 0)].astype(np.int64), -1
        )
        if not (nxt >= 0).any():
            break
        cur = nxt
    return steps


def _unpack_edges(tables, qid, a, b):
    """Expand augmented path edges via the precomputed expansion table.

    ``qid``/``a``/``b`` are parallel arrays of augmented edges in path
    order (query-major).  One ``searchsorted`` finds each edge's row in
    the expansion CSR; one gather emits every original tail node.
    Edges absent from the table pass through unchanged (they can only
    be original edges, mirroring the scalar unpack's ``.get(..., -1)``).
    """
    mid_keys = tables.mid_keys
    if not mid_keys.size or not a.size:
        return qid, b
    n = tables.num_nodes
    key = a * n + b
    pos = np.minimum(np.searchsorted(mid_keys, key), mid_keys.size - 1)
    present = mid_keys[pos] == key
    counts = np.where(present, tables.exp_indptr[pos + 1] - tables.exp_indptr[pos], 1)
    eids = _expand_ranges(np.where(present, tables.exp_indptr[pos], 0), counts)
    tails = tables.exp_nodes[eids].astype(np.int64)
    # Rows that fell through (absent keys) gathered garbage; overwrite
    # with the edge's own tail.
    if not present.all():
        starts = np.cumsum(counts) - counts
        tails[starts[~present]] = b[~present]
    return np.repeat(qid, counts), tails


def batch_ch_paths(tables, srcs, dsts):
    """Answer ``len(srcs)`` CH queries with one vectorised sweep each chunk.

    *tables* comes from :func:`build_kernel_tables`; *srcs*/*dsts* are
    valid, pairwise-distinct node indices (the graph layer
    short-circuits degenerate pairs first).

    Returns ``(paths, costs, expanded, rounds)``: per-query node-index
    lists (``None`` when unreachable), bit-equal-to-scalar-CH float
    costs, per-query labelled-node counts (the batch analogue of the
    scalar ``expanded``), and total relaxation rounds across chunks.
    """
    n = tables.num_nodes
    n2 = 2 * n
    srcs = np.asarray(srcs, dtype=np.int64)
    dsts = np.asarray(dsts, dtype=np.int64)
    num = len(srcs)
    paths = [None] * num
    costs = np.full(num, _INF)
    expanded = np.zeros(num, dtype=np.int64)
    total_rounds = 0
    chunk = max(1, BATCH_CHUNK_CELLS // max(n2, 1))
    for lo in range(0, num, chunk):
        hi = min(lo + chunk, num)
        q = hi - lo
        dist, parent, labelled, rounds = _sweep(
            tables, q, srcs[lo:hi], dsts[lo:hi]
        )
        total_rounds += rounds
        table = dist.reshape(q, n2)
        total = table[:, :n] + table[:, n:]
        meets = np.argmin(total, axis=1)
        chunk_costs = total[np.arange(q), meets]
        rq = np.flatnonzero(np.isfinite(chunk_costs))
        if not rq.size:
            continue
        meets_r = meets[rq].astype(np.int64)
        # Trace all reachable queries' parent chains in lock-step (one
        # gather per chain hop); forward chains walk from the meet back
        # to the source, backward chains live in the upper half of the
        # combined node space.
        fsteps = _trace_steps(parent, n2, rq, meets_r)
        bsteps = _trace_steps(parent, n2, rq, meets_r + n)[1:]
        fcols = [s.tolist() for s in fsteps]
        bcols = [s.tolist() for s in bsteps]
        flat_q, flat_a, flat_b = [], [], []
        firsts = []
        for j in range(rq.size):
            chain = [c[j] for c in reversed(fcols) if c[j] >= 0]
            chain += [c[j] - n for c in bcols if c[j] >= 0]
            firsts.append(chain[0])
            flat_q.extend([j] * (len(chain) - 1))
            flat_a.extend(chain[:-1])
            flat_b.extend(chain[1:])
        qid, tail = _unpack_edges(
            tables,
            np.asarray(flat_q, dtype=np.int64),
            np.asarray(flat_a, dtype=np.int64),
            np.asarray(flat_b, dtype=np.int64),
        )
        counts = np.bincount(qid, minlength=rq.size)
        bounds = np.cumsum(counts)
        tail = tail.tolist()
        for j, i in enumerate(rq.tolist()):
            seg = tail[bounds[j] - counts[j] : bounds[j]]
            paths[lo + i] = [firsts[j], *seg]
            costs[lo + i] = chunk_costs[i]
            expanded[lo + i] = labelled[i]
    return paths, costs, expanded, total_rounds


def solve_batch(tables, srcs, dsts):
    """Single-model batch entry point: one instrumented kernel solve.

    The reusable seam between callers and the sweep -- the graph layer's
    :meth:`~repro.core.graph.CellGraph.find_paths_batch`, the serving
    dispatcher's per-model flushes, and benchmarks all funnel one
    model's fused lanes through here.  Wraps :func:`batch_ch_paths` and
    owns the per-sweep instrumentation
    (``repro_kernel_sweep_iterations``), so every entry path is counted
    identically.  Returns ``(paths, costs, expanded)``; see
    :func:`batch_ch_paths` for the contract.
    """
    paths, costs, expanded, rounds = batch_ch_paths(tables, srcs, dsts)
    KERNEL_SWEEP_ITERATIONS.observe(rounds)
    return paths, costs, expanded


def _directed_csr(n, src, dst, cost):
    """CSR over *src*-major edge arrays (rows sorted, stable order)."""
    order = np.argsort(src, kind="stable")
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    return indptr, dst[order], cost[order]


def initial_cut_counts(n, indptr, indices, costs, rtol, return_cuts=False):
    """Witnessed shortcut counts for every node of the *original* graph.

    The CH contraction loop seeds its priority heap with one exact
    witness evaluation per node -- a third of all witness searches,
    every one running against the same pristine overlay.  This computes
    the identical counts vectorised: one bounded multi-lane
    label-correcting sweep, one lane per (node, min-side neighbour)
    pair, with per-lane skip-node masking and distance limits.

    Exactness: the scalar witness search settles in distance order, so
    by the time it terminates every target within the limit holds its
    final label -- the same min-plus fixpoint over left-associated
    float sums the sweep converges to (the settle cap never binds on
    the pristine overlay's small neighbourhoods, and labels beyond
    ``limit * (1 + rtol)`` fail every witness comparison in both
    implementations).  The per-node counts are therefore equal to the
    scalar pass's.

    *indptr*/*indices*/*costs* are the graph's raw adjacency CSR;
    parallel edges are deduplicated to the cheapest and self-loops
    dropped, exactly like the contraction overlay.  Returns an int64
    count per node (0 where either side of the neighbourhood is empty).
    With ``return_cuts=True`` returns ``(counts, (w, u, v, through))``
    -- the witnessed shortcut triples themselves, so the contraction
    loop can reuse them verbatim for nodes whose neighbourhood is still
    pristine when they reach the top of the heap.
    """
    counts = np.zeros(n, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    no_cuts = (empty, empty, empty, np.empty(0, dtype=np.float64))
    if n == 0 or len(indices) == 0:
        return (counts, no_cuts) if return_cuts else counts
    tol = 1.0 + rtol
    # Dedup to the cheapest parallel edge, self-loop-free.
    u = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    v = np.asarray(indices, dtype=np.int64)
    c = np.asarray(costs, dtype=np.float64)
    keep = u != v
    u, v, c = u[keep], v[keep], c[keep]
    if not u.size:
        return (counts, no_cuts) if return_cuts else counts
    key = u * n + v
    order = np.lexsort((c, key))
    key, u, v, c = key[order], u[order], v[order], c[order]
    first = np.ones(key.size, dtype=bool)
    first[1:] = key[1:] != key[:-1]
    u, v, c = u[first], v[first], c[first]
    out_indptr, out_idx, out_cost = _directed_csr(n, u, v, c)
    in_indptr, in_idx, in_cost = _directed_csr(n, v, u, c)
    out_deg = np.diff(out_indptr)
    in_deg = np.diff(in_indptr)
    both = (out_deg > 0) & (in_deg > 0)
    fwd = both & (in_deg <= out_deg)
    bwd = both & ~fwd
    chunk = max(1, BATCH_CHUNK_CELLS // n)
    dist = np.full(chunk * n, _INF)  # shared workspace, reset per chunk
    cut_parts = []  # (w, u, v, through) arrays per side when return_cuts

    def side(ws, src, tgt, relax, tgt_is_out):
        """Count cuts for nodes *ws* whose witness searches start on the
        *src* side (one lane per source neighbour), probe *tgt*-side
        pairs, and relax over the *relax* CSR."""
        src_indptr, src_idx, src_cost = src
        tgt_indptr, tgt_idx, tgt_cost = tgt
        relax_indptr, relax_idx, relax_cost = relax
        ldeg = src_indptr[ws + 1] - src_indptr[ws]
        lane_w = np.repeat(ws, ldeg)
        eids = _expand_ranges(src_indptr[ws], ldeg)
        lane_src = src_idx[eids].astype(np.int64)
        lane_scost = src_cost[eids]
        # Per-node max target cost bounds each lane's search radius,
        # matching the scalar ``limit = c(src) + max(target costs)``.
        tdeg = tgt_indptr[ws + 1] - tgt_indptr[ws]
        teids = _expand_ranges(tgt_indptr[ws], tdeg)
        maxt = np.full(ws.size, -_INF)
        np.maximum.at(maxt, np.repeat(np.arange(ws.size), tdeg), tgt_cost[teids])
        lane_limit = (lane_scost + np.repeat(maxt, ldeg)) * tol
        # Every (lane, target) pair, minus the source itself.
        lane_wpos = np.repeat(np.arange(ws.size), ldeg)
        ptdeg = tdeg[lane_wpos]
        pair_lane = np.repeat(np.arange(lane_w.size, dtype=np.int64), ptdeg)
        pteids = _expand_ranges(tgt_indptr[lane_w], ptdeg)
        pair_v = tgt_idx[pteids].astype(np.int64)
        pair_through = lane_scost[pair_lane] + tgt_cost[pteids]
        keep = pair_v != lane_src[pair_lane]
        pair_lane = pair_lane[keep]
        pair_v = pair_v[keep]
        pair_through = pair_through[keep]
        num_lanes = lane_w.size
        pair_label = np.full(pair_lane.size, _INF)
        bounds = np.searchsorted(
            pair_lane, np.arange(0, num_lanes + chunk, chunk)
        )
        for ci, lo in enumerate(range(0, num_lanes, chunk)):
            hi = min(lo + chunk, num_lanes)
            skip = lane_w[lo:hi]
            limit = lane_limit[lo:hi]
            fl = np.arange(hi - lo, dtype=np.int64)
            fv = lane_src[lo:hi].copy()
            fkey = fl * n + fv
            dist[fkey] = 0.0
            touched = [fkey]
            while fv.size:
                base = dist[fkey]
                deg = relax_indptr[fv + 1] - relax_indptr[fv]
                eids2 = _expand_ranges(relax_indptr[fv], deg)
                if not eids2.size:
                    break
                cl = np.repeat(fl, deg)
                cv = relax_idx[eids2].astype(np.int64)
                nd = np.repeat(base, deg) + relax_cost[eids2]
                ok = (cv != skip[cl]) & (nd <= limit[cl])
                cl, cv, nd = cl[ok], cv[ok], nd[ok]
                key = cl * n + cv
                before = dist[key]
                np.minimum.at(dist, key, nd)
                after = dist[key]
                fkey = key[after < before]
                if fkey.size:
                    fkey.sort(kind="stable")
                    mask = np.empty(fkey.size, dtype=bool)
                    mask[0] = True
                    np.not_equal(fkey[1:], fkey[:-1], out=mask[1:])
                    fkey = fkey[mask]
                    touched.append(fkey)
                fl = fkey // n
                fv = fkey - fl * n
            s, e = bounds[ci], bounds[ci + 1]
            pl = pair_lane[s:e] - lo
            pair_label[s:e] = dist[pl * n + pair_v[s:e]]
            dist[np.concatenate(touched)] = _INF
        cut = pair_label > pair_through * tol
        np.add.at(counts, lane_w[pair_lane[cut]], 1)
        if return_cuts:
            ends_a = lane_src[pair_lane[cut]]  # the search-source side
            ends_b = pair_v[cut]  # the probed target side
            cu, cv = (ends_a, ends_b) if tgt_is_out else (ends_b, ends_a)
            cut_parts.append(
                (lane_w[pair_lane[cut]], cu, cv, pair_through[cut])
            )

    out = (out_indptr, out_idx, out_cost)
    rev = (in_indptr, in_idx, in_cost)
    if fwd.any():
        side(np.flatnonzero(fwd).astype(np.int64), rev, out, out, True)
    if bwd.any():
        side(np.flatnonzero(bwd).astype(np.int64), out, rev, rev, False)
    if not return_cuts:
        return counts
    if cut_parts:
        cuts = tuple(
            np.concatenate([p[i] for p in cut_parts]) for i in range(4)
        )
    else:
        cuts = no_cuts
    return counts, cuts
