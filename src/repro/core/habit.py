"""HABIT: the paper's data-driven, grid-based trajectory imputer.

Fitting aggregates historical trips into cell/transition statistics and
freezes them into a :class:`repro.core.graph.CellGraph`; queries only
read the graph, so fitted models can be shared, cached, or sharded
freely (a property the serving layer relies on).

Fitting is incremental: :meth:`HabitImputer.fit_partial` folds one shard
or streamed chunk of trips into a mergeable
:class:`repro.core.statistics.StatisticsState`, :meth:`HabitImputer.merge`
absorbs another imputer's (or raw) state, and
:meth:`HabitImputer.finalize` freezes the accumulated state into the
graph.  :meth:`HabitImputer.fit_from_trips` is the one-shot wrapper, and
:meth:`HabitImputer.update` refreshes an already-finalised model in place
from new trips -- only the (cheap) graph rebuild is repeated, never the
pass over historical rows.  ``revision`` counts those refreshes and rides
into serving provenance.

A query snaps both gap endpoints to graph nodes (memoized per graph),
routes over the CSR search engine (``HabitConfig.search`` picks the
variant: Dijkstra, A*, bidirectional A*, ALT/landmark A*, or the default
contraction-hierarchy search -- all provably equal-cost), projects the
cell path to positions (cell centres
or per-cell medians), simplifies with RDP at ``tolerance_m``, and pins
the exact endpoints.  The three stages are public --
:meth:`HabitImputer.snap_endpoints`, :meth:`HabitImputer.route`,
:meth:`HabitImputer.render_path` -- so the serving layer can cache
search results keyed by snapped endpoints.  When no route exists the
imputer degrades to a straight line, flagged in ``ImputedPath.method``.
"""

import hashlib
import json
import os
import threading
import zipfile
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core.graph import CellGraph
from repro.core.path import ImputedPath, resample_polyline_xy, straight_line_path
from repro.core.statistics import StatisticsState, partial_statistics
from repro.geo.proj import latlng_to_xy_m
from repro.geo.simplify import rdp_keep_indices
from repro.hexgrid import grid_distance, latlng_to_cell
from repro.obs import METRICS

_FIT_SECONDS = METRICS.histogram(
    "repro_fit_seconds",
    "Fit-pipeline stage duration in seconds (partial fold, state merge, "
    "graph finalize including search preprocessing).",
    ("stage",),
)

__all__ = ["HabitConfig", "HabitImputer", "ModelFormatError", "config_hash"]

#: On-disk model format tag and version.  Bumped whenever the ``.npz``
#: layout changes; version-1 files predate the tag and are rejected with
#: a clear error instead of being mis-read.  Version 3 added the model
#: revision and the optional mergeable fit state that powers
#: :meth:`HabitImputer.update` after a load.  Version 4 added the search
#: config fields and the optional precomputed ALT landmark tables.
#: Version 5 added the optional contraction-hierarchy arrays (node
#: order + upward/downward shortcut CSRs with middle-node
#: back-pointers).  Version-3/-4 files still load; whatever
#: preprocessing their payload lacks (landmarks, hierarchy) is rebuilt
#: on demand at the first query that needs it.
MODEL_FORMAT = "habit-npz"
MODEL_FORMAT_VERSION = 5
MIN_MODEL_FORMAT_VERSION = 3

#: Prefix under which a model's mergeable fit state is stored in the npz.
_STATE_PREFIX = "state_"

#: The flat arrays that fully describe a :class:`CellGraph`, in the
#: positional order of its constructor.
_GRAPH_KEYS = (
    "cells",
    "lats",
    "lngs",
    "edge_src",
    "edge_dst",
    "edge_cost",
    "edge_count",
)


class ModelFormatError(ValueError):
    """A model file is not a readable, current-version ``.npz`` artefact."""


def config_hash(config):
    """Stable 12-hex digest of a :class:`HabitConfig`.

    Hashes the JSON-serialised field dict, so the digest is identical
    across processes and Python versions (unlike ``hash()``, which is
    salted per run).  Registries and caches key fitted models on
    ``(dataset, config_hash)``.
    """
    payload = json.dumps(asdict(config), sort_keys=True)
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:12]


# -- shared .npz payload helpers (also used by the typed variant) ---------


def _format_array(kind):
    return np.array([kind, str(MODEL_FORMAT_VERSION)])


def _check_format(data, kind, path):
    """Validate the format tag of an opened ``np.load`` mapping.

    Returns the (integer) format version so loaders can branch on it;
    versions ``MIN_MODEL_FORMAT_VERSION..MODEL_FORMAT_VERSION`` are
    readable, anything else fails loudly.
    """
    if "format" not in data.files:
        raise ModelFormatError(
            f"{path}: no format tag; not a {kind!r} model "
            "(or written by a pre-versioning release)"
        )
    tag = data["format"]
    name, version = str(tag[0]), str(tag[1])
    if name != kind:
        raise ModelFormatError(f"{path}: format {name!r}, expected {kind!r}")
    try:
        parsed = int(version)
    except ValueError:
        parsed = -1
    if not MIN_MODEL_FORMAT_VERSION <= parsed <= MODEL_FORMAT_VERSION:
        raise ModelFormatError(
            f"{path}: format version {version}, this build reads versions "
            f"{MIN_MODEL_FORMAT_VERSION}..{MODEL_FORMAT_VERSION}"
        )
    return parsed


#: Optional per-graph ALT landmark arrays (format v4+); absent in v3
#: files and in models whose graphs never computed landmarks.
_LANDMARK_KEYS = ("landmarks", "landmark_from", "landmark_to")

#: Optional per-graph contraction-hierarchy arrays (format v5+), in the
#: positional order of :meth:`repro.core.graph.CellGraph.set_ch`; absent
#: in pre-v5 files and in models whose graphs never built the hierarchy
#: (it is then rebuilt on demand at the first ``"ch"`` query).
_CH_KEYS = (
    "ch_rank",
    "ch_up_indptr",
    "ch_up_indices",
    "ch_up_costs",
    "ch_up_middle",
    "ch_down_indptr",
    "ch_down_indices",
    "ch_down_costs",
    "ch_down_middle",
)


def _graph_payload(graph, prefix=""):
    payload = {prefix + key: getattr(graph, key) for key in _GRAPH_KEYS}
    if graph.has_landmarks:
        payload.update(
            {prefix + key: getattr(graph, key) for key in _LANDMARK_KEYS}
        )
    if graph.has_ch:
        payload.update({prefix + key: getattr(graph, key) for key in _CH_KEYS})
    return payload


def _graph_from_npz(data, path, prefix=""):
    missing = [key for key in _GRAPH_KEYS if prefix + key not in data.files]
    if missing:
        raise ModelFormatError(f"{path}: missing graph arrays {missing}")
    graph = CellGraph(*(data[prefix + key] for key in _GRAPH_KEYS))
    if all(prefix + key in data.files for key in _LANDMARK_KEYS):
        graph.set_landmarks(*(data[prefix + key] for key in _LANDMARK_KEYS))
    if all(prefix + key in data.files for key in _CH_KEYS):
        graph.set_ch(*(data[prefix + key] for key in _CH_KEYS))
    return graph


def _config_payload(config):
    return np.array(
        [
            str(config.resolution),
            str(config.tolerance_m),
            config.projection,
            config.edge_weight,
            str(int(config.approx_distinct)),
            str(config.snap_max_ring),
            str(config.snap_limit_cells),
            str(config.resample_m),
            config.search,
            str(config.num_landmarks),
        ]
    )


def _config_from_npz(raw):
    kwargs = dict(
        resolution=int(raw[0]),
        tolerance_m=float(raw[1]),
        projection=str(raw[2]),
        edge_weight=str(raw[3]),
        approx_distinct=bool(int(raw[4])),
        snap_max_ring=int(raw[5]),
        snap_limit_cells=int(raw[6]),
        resample_m=float(raw[7]),
    )
    if len(raw) > 8:  # format v4+; v3 configs fall back to field defaults
        kwargs["search"] = str(raw[8])
        kwargs["num_landmarks"] = int(raw[9])
    return HabitConfig(**kwargs)


def _open_npz(path):
    """``np.load`` with unreadable archives mapped to ModelFormatError.

    Non-zip bytes surface as ``ValueError`` (numpy's pickle fallback),
    truncated/corrupt zips as ``zipfile.BadZipFile``; both mean the same
    thing to callers.  Missing files keep raising ``OSError``.
    """
    try:
        return np.load(path)
    except (ValueError, zipfile.BadZipFile) as exc:
        raise ModelFormatError(f"{path}: not an .npz model archive ({exc})") from exc


def _normalize_npz_path(path):
    """Mirror ``np.savez``'s suffix handling so the returned path is real."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def _atomic_savez(path, payload):
    """``np.savez`` via a same-directory temp file + ``os.replace``.

    Model files are republished *in place* by the registry's refresh
    path while other processes (pool workers, sibling daemons) may be
    loading them; a write-in-place ``np.savez`` would expose truncated
    zips to those readers.  The rename is atomic on POSIX, so readers
    see either the old or the new artefact, never a torn one.  The temp
    name is pid *and* thread unique -- two threads of one daemon (say, a
    publish racing a follow refresh) must not interleave writes into a
    shared temp file either.
    """
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
    try:
        with open(tmp, "wb") as handle:
            np.savez(handle, **payload)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


@dataclass(frozen=True)
class HabitConfig:
    """Tuning knobs for :class:`HabitImputer`.

    - ``resolution``: hex grid resolution (paper sweep: 6..10).
    - ``tolerance_m``: RDP simplification tolerance; 0 disables smoothing.
    - ``projection``: node placement, ``"center"`` or ``"median"``.
    - ``edge_weight``: ``"transitions"`` (paper) or ``"inverse_frequency"``.
    - ``approx_distinct``: HyperLogLog vs exact distinct vessels in stats.
    - ``snap_max_ring``: hex rings searched before the snap full-scan.
    - ``snap_limit_cells``: reject a snap farther than this many grid
      steps from the query endpoint -- queries far outside the trained
      coverage degrade to the straight-line fallback instead of routing
      through an arbitrarily distant corridor.
    - ``resample_m``: output point spacing; simplified paths are resampled
      back to AIS-like density so point-to-point metrics stay comparable.
    - ``search``: query search variant -- ``"ch"`` (default; contraction
      hierarchy precomputed at :meth:`HabitImputer.finalize`, an order
      of magnitude fewer expansions than ALT on lane-shaped cell
      graphs), ``"alt"`` (landmark heuristic; cheaper preprocessing),
      ``"bidirectional"`` (meet-in-the-middle; no preprocessing, wins
      when fits are too frequent to amortise any preprocessing),
      ``"astar"``, or ``"dijkstra"``.  All return equal-cost paths; they
      differ only in nodes expanded per query.
    - ``num_landmarks``: ALT landmark count, selected at
      :meth:`HabitImputer.finalize` when ``search="alt"`` (or on the
      first ALT query) and persisted in format-v4+ model files.
    """

    resolution: int = 9
    tolerance_m: float = 100.0
    projection: str = "center"
    edge_weight: str = "transitions"
    approx_distinct: bool = True
    snap_max_ring: int = 8
    snap_limit_cells: int = 200
    resample_m: float = 250.0
    search: str = "ch"
    num_landmarks: int = 8


class HabitImputer:
    """Imputes trajectory gaps by routing over learned cell transitions."""

    def __init__(self, config=None):
        self.config = config or HabitConfig()
        self.graph = None
        self.cell_stats = None
        self.transition_stats = None
        #: Accumulated mergeable fit state (None until a partial fit).
        self._state = None
        #: The state the current graph was built from -- states are
        #: immutable and rebound on every fold, so identity against
        #: ``_state`` is an exact "graph is stale" test (the typed
        #: refresh path uses it to skip rebuilding untouched classes).
        self._finalized_state = None
        #: Bumped by every :meth:`update`; surfaced in serving provenance.
        self.revision = 1

    # -- fitting ----------------------------------------------------------

    def fit_partial(self, trips):
        """Fold one shard/chunk of segmented trips into the fit state.

        Does not touch the graph; call :meth:`finalize` once every shard
        is in.  Chunks must hold whole trips (see
        :mod:`repro.core.statistics`).  Returns self.
        """
        with _FIT_SECONDS.time(("partial",)):
            state = partial_statistics(trips, self.config)
            if self._state is None:
                self._state = state
            else:
                self._state = StatisticsState.merged([self._state, state])
        return self

    def merge(self, other):
        """Absorb another imputer's (or a raw) partial fit state; returns self.

        *other* is a :class:`repro.core.statistics.StatisticsState` or a
        :class:`HabitImputer` carrying one.  States are never mutated, so
        the donor keeps working.
        """
        state = other._state if isinstance(other, HabitImputer) else other
        if state is None:
            raise ValueError("cannot merge an imputer with no fit state")
        with _FIT_SECONDS.time(("merge",)):
            if self._state is None:
                self._state = state
            else:
                self._state = StatisticsState.merged([self._state, state])
        return self

    def finalize(self):
        """Freeze the accumulated state into statistics + cell graph."""
        if self._state is None:
            raise RuntimeError("HabitImputer.finalize called with no fit state")
        with _FIT_SECONDS.time(("finalize",)):
            cell_stats, transition_stats = self._state.finalize()
            self.cell_stats = cell_stats
            self.transition_stats = transition_stats
            self.graph = CellGraph.from_statistics(
                cell_stats,
                transition_stats,
                projection=self.config.projection,
                edge_weight=self.config.edge_weight,
            )
            if self.config.search == "alt":
                # Pay landmark preprocessing once at fit time; the tables
                # ride in the (v4+) model payload so loads skip this.
                self.graph.ensure_landmarks(self.config.num_landmarks)
            elif self.config.search == "ch":
                # Same deal for the contraction hierarchy (v5 payload).
                self.graph.ensure_ch()
            self._finalized_state = self._state
        return self

    def fit_from_trips(self, trips):
        """Learn the cell graph from a segmented trip table; returns self."""
        self._state = None
        self.revision = 1
        return self.fit_partial(trips).finalize()

    def update(self, trips):
        """Incremental refresh: merge new trips, rebuild the graph, bump
        ``revision``.  Only the graph rebuild repeats -- historical rows
        live on solely as merged sketch state.  Returns self.
        """
        if self.graph is not None and self._state is None:
            raise ValueError(
                "model was saved without its fit state and cannot be "
                "updated incrementally; refit from the full history"
            )
        self.fit_partial(trips)
        self.revision += 1
        return self.finalize()

    def fork(self):
        """A fresh, unfinalised imputer sharing this model's fit state.

        The serving registry's refresh path never mutates a served
        instance: it forks the model, folds new data into the fork via
        :meth:`update`, and swaps the fork in.  States are immutable, so
        sharing one between the original and the fork is safe; the
        built graph rides along too (queries never mutate it beyond its
        own locked memos), which lets a typed refresh skip rebuilding
        classes the new chunk never touched.  Raises ``ValueError`` on a
        model saved without its fit state (there is nothing refreshable
        to share).
        """
        if self._state is None:
            raise ValueError(
                "model was saved without its fit state and cannot be "
                "refreshed incrementally; refit from the full history"
            )
        fresh = type(self)(self.config)
        fresh._state = self._state
        fresh._finalized_state = self._finalized_state
        fresh.graph = self.graph
        fresh.cell_stats = self.cell_stats
        fresh.transition_stats = self.transition_stats
        fresh.revision = self.revision
        return fresh

    def _require_fitted(self):
        if self.graph is None:
            raise RuntimeError("HabitImputer.impute called before fit_from_trips")

    # -- querying ---------------------------------------------------------

    def snap_endpoints(self, start, end):
        """Snap both ``(lat, lng)`` gap endpoints to graph node cells.

        Returns ``(src_cell, dst_cell)``, or ``None`` when the graph is
        empty or either snap lands beyond ``snap_limit_cells`` (the
        caller degrades to the straight-line fallback).  Snaps are
        memoized on the graph, so repeated endpoints cost a dict probe.
        """
        self._require_fitted()
        config = self.config
        if self.graph.num_nodes == 0:
            return None
        src_cell = latlng_to_cell(start[0], start[1], config.resolution)
        dst_cell = latlng_to_cell(end[0], end[1], config.resolution)
        src = self.graph.nearest_node(src_cell, config.snap_max_ring)
        dst = self.graph.nearest_node(dst_cell, config.snap_max_ring)
        if (
            grid_distance(src_cell, src) > config.snap_limit_cells
            or grid_distance(dst_cell, dst) > config.snap_limit_cells
        ):
            return None
        return src, dst

    def route(self, src_node, dst_node, method=None):
        """Search the cell graph between two snapped node cells.

        *method* defaults to ``config.search``; returns the
        :class:`repro.core.graph.SearchResult` (or ``None`` when no route
        exists).  This is the cacheable stage: the result depends only on
        the graph and the snapped endpoints, never on the raw query
        positions.
        """
        self._require_fitted()
        method = method or self.config.search
        if method == "alt":
            self.graph.ensure_landmarks(self.config.num_landmarks)
        elif method == "ch":
            self.graph.ensure_ch()
        return self.graph.find_path(src_node, dst_node, method)

    def route_batch(self, pairs, method=None):
        """Search many snapped ``(src, dst)`` node-cell pairs in one call.

        The batch analogue of :meth:`route`: *method* defaults to
        ``config.search``, and with the default ``"ch"`` every
        non-degenerate pair is answered by one vectorised kernel sweep
        (:meth:`repro.core.graph.CellGraph.find_paths_batch`) instead of
        a Python heap loop per pair.  Returns a list aligned with
        *pairs* of :class:`repro.core.graph.SearchResult` (or ``None``
        for unreachable pairs) -- cost-identical to calling
        :meth:`route` per pair, which is what the serving layer's batch
        engine relies on when it caches the results individually.
        """
        self._require_fitted()
        method = method or self.config.search
        if method == "alt":
            self.graph.ensure_landmarks(self.config.num_landmarks)
        elif method == "ch":
            self.graph.ensure_ch()
        return self.graph.find_paths_batch(pairs, method)

    def render_path(self, start, end, result):
        """Project a search result into an :class:`ImputedPath`.

        Positions come straight from the graph's flat arrays (no dict
        lookups), then RDP at ``tolerance_m``, resampling to
        ``resample_m``, and exact endpoint pinning.  ``None`` renders the
        flagged straight-line fallback.
        """
        if result is None:
            return straight_line_path(start, end, method="fallback")
        config = self.config
        graph = self.graph
        idx = np.asarray(result.node_indices, dtype=np.int64)
        lats = np.empty(len(idx) + 2)
        lngs = np.empty(len(idx) + 2)
        lats[0], lngs[0] = float(start[0]), float(start[1])
        lats[-1], lngs[-1] = float(end[0]), float(end[1])
        lats[1:-1] = graph.lats[idx]
        lngs[1:-1] = graph.lngs[idx]
        # One projection feeds both simplification and resampling.
        x = y = None
        if config.tolerance_m > 0.0 and len(lats) > 2:
            x, y = latlng_to_xy_m(lats, lngs)
            kept = rdp_keep_indices(x, y, config.tolerance_m)
            lats, lngs, x, y = lats[kept], lngs[kept], x[kept], y[kept]
        if config.resample_m > 0.0 and len(lats) >= 2:
            if x is None:
                x, y = latlng_to_xy_m(lats, lngs)
            lats, lngs = resample_polyline_xy(lats, lngs, x, y, config.resample_m)
        return ImputedPath(
            lats=lats,
            lngs=lngs,
            method=result.method,
            cells=result.cells,
            expanded=result.expanded,
        )

    def impute(self, start, end, use_heuristic=True, method=None):
        """Reconstruct the path between two ``(lat, lng)`` gap endpoints.

        *method* overrides the configured search variant for this query;
        ``use_heuristic=False`` is the legacy spelling for ``"dijkstra"``
        (the A* ablation's control arm).
        """
        self._require_fitted()
        snapped = self.snap_endpoints(start, end)
        if snapped is None:
            return straight_line_path(start, end, method="fallback")
        if method is None:
            method = self.config.search if use_heuristic else "dijkstra"
        return self.render_path(start, end, self.route(snapped[0], snapped[1], method))

    # -- persistence ------------------------------------------------------

    def storage_size_bytes(self):
        """Model footprint: the graph's flat arrays."""
        self._require_fitted()
        return self.graph.storage_size_bytes()

    def save(self, path, include_state=True):
        """Serialise the fitted model to an ``.npz`` file; returns the path.

        With *include_state* (the default) the mergeable fit state rides
        along, so a loaded model can keep absorbing new data via
        :meth:`update`; pass ``False`` for a leaner, serve-only artefact.
        """
        self._require_fitted()
        path = _normalize_npz_path(path)
        payload = {
            "format": _format_array(MODEL_FORMAT),
            "config": _config_payload(self.config),
            "revision": np.array([self.revision], dtype=np.int64),
            **_graph_payload(self.graph),
        }
        if include_state and self._state is not None:
            payload.update(self._state.payload(_STATE_PREFIX))
        _atomic_savez(path, payload)
        return path

    @classmethod
    def load(cls, path):
        """Restore a model saved with :meth:`save`.

        Raises :class:`ModelFormatError` when *path* is not a readable
        habit model (wrong kind, out-of-range version, missing arrays,
        or not an ``.npz`` archive at all).  Format-v3 files load with
        default search settings and no precomputed tables; v4 files
        restore ALT landmarks; v5 files additionally restore the
        contraction hierarchy.  Whatever a pre-v5 payload lacks is
        rebuilt on demand at the first query that needs it.  Models
        saved with their fit state come back refreshable; state-less
        artefacts load fine but reject :meth:`update`.
        """
        path = Path(path)
        with _open_npz(path) as data:
            _check_format(data, MODEL_FORMAT, path)
            imputer = cls(_config_from_npz(data["config"]))
            imputer.graph = _graph_from_npz(data, path)
            imputer.revision = int(data["revision"][0])
            if _STATE_PREFIX + "meta" in data.files:
                imputer._state = StatisticsState.from_payload(data, _STATE_PREFIX)
                # The persisted graph was built from this very state.
                imputer._finalized_state = imputer._state
        return imputer
