"""HABIT: the paper's data-driven, grid-based trajectory imputer.

Fitting aggregates historical trips into cell/transition statistics and
freezes them into a :class:`repro.core.graph.CellGraph`; queries only
read the graph, so fitted models can be shared, cached, or sharded
freely (a property the serving layer relies on).

Fitting is incremental: :meth:`HabitImputer.fit_partial` folds one shard
or streamed chunk of trips into a mergeable
:class:`repro.core.statistics.StatisticsState`, :meth:`HabitImputer.merge`
absorbs another imputer's (or raw) state, and
:meth:`HabitImputer.finalize` freezes the accumulated state into the
graph.  :meth:`HabitImputer.fit_from_trips` is the one-shot wrapper, and
:meth:`HabitImputer.update` refreshes an already-finalised model in place
from new trips -- only the (cheap) graph rebuild is repeated, never the
pass over historical rows.  ``revision`` counts those refreshes and rides
into serving provenance.

A query snaps both gap endpoints to graph nodes, runs A*, projects the
cell path to positions (cell centres or per-cell medians), simplifies with
RDP at ``tolerance_m``, and pins the exact endpoints.  When no route
exists the imputer degrades to a straight line, flagged in
``ImputedPath.method``.
"""

import hashlib
import json
import zipfile
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core.graph import CellGraph
from repro.core.path import ImputedPath, resample_polyline, straight_line_path
from repro.core.statistics import StatisticsState, partial_statistics
from repro.geo.simplify import rdp_simplify
from repro.hexgrid import grid_distance, latlng_to_cell

__all__ = ["HabitConfig", "HabitImputer", "ModelFormatError", "config_hash"]

#: On-disk model format tag and version.  Bumped whenever the ``.npz``
#: layout changes; version-1 files predate the tag and are rejected with
#: a clear error instead of being mis-read.  Version 3 added the model
#: revision and the optional mergeable fit state that powers
#: :meth:`HabitImputer.update` after a load.
MODEL_FORMAT = "habit-npz"
MODEL_FORMAT_VERSION = 3

#: Prefix under which a model's mergeable fit state is stored in the npz.
_STATE_PREFIX = "state_"

#: The flat arrays that fully describe a :class:`CellGraph`, in the
#: positional order of its constructor.
_GRAPH_KEYS = (
    "cells",
    "lats",
    "lngs",
    "edge_src",
    "edge_dst",
    "edge_cost",
    "edge_count",
)


class ModelFormatError(ValueError):
    """A model file is not a readable, current-version ``.npz`` artefact."""


def config_hash(config):
    """Stable 12-hex digest of a :class:`HabitConfig`.

    Hashes the JSON-serialised field dict, so the digest is identical
    across processes and Python versions (unlike ``hash()``, which is
    salted per run).  Registries and caches key fitted models on
    ``(dataset, config_hash)``.
    """
    payload = json.dumps(asdict(config), sort_keys=True)
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:12]


# -- shared .npz payload helpers (also used by the typed variant) ---------


def _format_array(kind):
    return np.array([kind, str(MODEL_FORMAT_VERSION)])


def _check_format(data, kind, path):
    """Validate the format tag of an opened ``np.load`` mapping."""
    if "format" not in data.files:
        raise ModelFormatError(
            f"{path}: no format tag; not a {kind!r} model "
            "(or written by a pre-versioning release)"
        )
    tag = data["format"]
    name, version = str(tag[0]), str(tag[1])
    if name != kind:
        raise ModelFormatError(f"{path}: format {name!r}, expected {kind!r}")
    if version != str(MODEL_FORMAT_VERSION):
        raise ModelFormatError(
            f"{path}: format version {version}, this build reads "
            f"version {MODEL_FORMAT_VERSION}"
        )


def _graph_payload(graph, prefix=""):
    return {prefix + key: getattr(graph, key) for key in _GRAPH_KEYS}


def _graph_from_npz(data, path, prefix=""):
    missing = [key for key in _GRAPH_KEYS if prefix + key not in data.files]
    if missing:
        raise ModelFormatError(f"{path}: missing graph arrays {missing}")
    return CellGraph(*(data[prefix + key] for key in _GRAPH_KEYS))


def _config_payload(config):
    return np.array(
        [
            str(config.resolution),
            str(config.tolerance_m),
            config.projection,
            config.edge_weight,
            str(int(config.approx_distinct)),
            str(config.snap_max_ring),
            str(config.snap_limit_cells),
            str(config.resample_m),
        ]
    )


def _config_from_npz(raw):
    return HabitConfig(
        resolution=int(raw[0]),
        tolerance_m=float(raw[1]),
        projection=str(raw[2]),
        edge_weight=str(raw[3]),
        approx_distinct=bool(int(raw[4])),
        snap_max_ring=int(raw[5]),
        snap_limit_cells=int(raw[6]),
        resample_m=float(raw[7]),
    )


def _open_npz(path):
    """``np.load`` with unreadable archives mapped to ModelFormatError.

    Non-zip bytes surface as ``ValueError`` (numpy's pickle fallback),
    truncated/corrupt zips as ``zipfile.BadZipFile``; both mean the same
    thing to callers.  Missing files keep raising ``OSError``.
    """
    try:
        return np.load(path)
    except (ValueError, zipfile.BadZipFile) as exc:
        raise ModelFormatError(f"{path}: not an .npz model archive ({exc})") from exc


def _normalize_npz_path(path):
    """Mirror ``np.savez``'s suffix handling so the returned path is real."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


@dataclass(frozen=True)
class HabitConfig:
    """Tuning knobs for :class:`HabitImputer`.

    - ``resolution``: hex grid resolution (paper sweep: 6..10).
    - ``tolerance_m``: RDP simplification tolerance; 0 disables smoothing.
    - ``projection``: node placement, ``"center"`` or ``"median"``.
    - ``edge_weight``: ``"transitions"`` (paper) or ``"inverse_frequency"``.
    - ``approx_distinct``: HyperLogLog vs exact distinct vessels in stats.
    - ``snap_max_ring``: hex rings searched before the snap full-scan.
    - ``snap_limit_cells``: reject a snap farther than this many grid
      steps from the query endpoint -- queries far outside the trained
      coverage degrade to the straight-line fallback instead of routing
      through an arbitrarily distant corridor.
    - ``resample_m``: output point spacing; simplified paths are resampled
      back to AIS-like density so point-to-point metrics stay comparable.
    """

    resolution: int = 9
    tolerance_m: float = 100.0
    projection: str = "center"
    edge_weight: str = "transitions"
    approx_distinct: bool = True
    snap_max_ring: int = 8
    snap_limit_cells: int = 200
    resample_m: float = 250.0


class HabitImputer:
    """Imputes trajectory gaps by routing over learned cell transitions."""

    def __init__(self, config=None):
        self.config = config or HabitConfig()
        self.graph = None
        self.cell_stats = None
        self.transition_stats = None
        #: Accumulated mergeable fit state (None until a partial fit).
        self._state = None
        #: Bumped by every :meth:`update`; surfaced in serving provenance.
        self.revision = 1

    # -- fitting ----------------------------------------------------------

    def fit_partial(self, trips):
        """Fold one shard/chunk of segmented trips into the fit state.

        Does not touch the graph; call :meth:`finalize` once every shard
        is in.  Chunks must hold whole trips (see
        :mod:`repro.core.statistics`).  Returns self.
        """
        state = partial_statistics(trips, self.config)
        if self._state is None:
            self._state = state
        else:
            self._state = StatisticsState.merged([self._state, state])
        return self

    def merge(self, other):
        """Absorb another imputer's (or a raw) partial fit state; returns self.

        *other* is a :class:`repro.core.statistics.StatisticsState` or a
        :class:`HabitImputer` carrying one.  States are never mutated, so
        the donor keeps working.
        """
        state = other._state if isinstance(other, HabitImputer) else other
        if state is None:
            raise ValueError("cannot merge an imputer with no fit state")
        if self._state is None:
            self._state = state
        else:
            self._state = StatisticsState.merged([self._state, state])
        return self

    def finalize(self):
        """Freeze the accumulated state into statistics + cell graph."""
        if self._state is None:
            raise RuntimeError("HabitImputer.finalize called with no fit state")
        cell_stats, transition_stats = self._state.finalize()
        self.cell_stats = cell_stats
        self.transition_stats = transition_stats
        self.graph = CellGraph.from_statistics(
            cell_stats,
            transition_stats,
            projection=self.config.projection,
            edge_weight=self.config.edge_weight,
        )
        return self

    def fit_from_trips(self, trips):
        """Learn the cell graph from a segmented trip table; returns self."""
        self._state = None
        self.revision = 1
        return self.fit_partial(trips).finalize()

    def update(self, trips):
        """Incremental refresh: merge new trips, rebuild the graph, bump
        ``revision``.  Only the graph rebuild repeats -- historical rows
        live on solely as merged sketch state.  Returns self.
        """
        if self.graph is not None and self._state is None:
            raise ValueError(
                "model was saved without its fit state and cannot be "
                "updated incrementally; refit from the full history"
            )
        self.fit_partial(trips)
        self.revision += 1
        return self.finalize()

    def _require_fitted(self):
        if self.graph is None:
            raise RuntimeError("HabitImputer.impute called before fit_from_trips")

    # -- querying ---------------------------------------------------------

    def impute(self, start, end, use_heuristic=True):
        """Reconstruct the path between two ``(lat, lng)`` gap endpoints."""
        self._require_fitted()
        config = self.config
        if self.graph.num_nodes == 0:
            return straight_line_path(start, end, method="fallback")
        src_cell = latlng_to_cell(start[0], start[1], config.resolution)
        dst_cell = latlng_to_cell(end[0], end[1], config.resolution)
        src = self.graph.nearest_node(src_cell, config.snap_max_ring)
        dst = self.graph.nearest_node(dst_cell, config.snap_max_ring)
        if (
            grid_distance(src_cell, src) > config.snap_limit_cells
            or grid_distance(dst_cell, dst) > config.snap_limit_cells
        ):
            return straight_line_path(start, end, method="fallback")
        cell_path = self.graph.astar(src, dst, use_heuristic)
        if cell_path is None:
            return straight_line_path(start, end, method="fallback")
        attrs = self.graph.node_attrs
        lats = np.empty(len(cell_path) + 2)
        lngs = np.empty(len(cell_path) + 2)
        lats[0], lngs[0] = float(start[0]), float(start[1])
        lats[-1], lngs[-1] = float(end[0]), float(end[1])
        for i, cell in enumerate(cell_path, start=1):
            lats[i], lngs[i] = attrs[cell]
        if config.tolerance_m > 0.0 and len(lats) > 2:
            lats, lngs = rdp_simplify(lats, lngs, config.tolerance_m)
        if config.resample_m > 0.0:
            lats, lngs = resample_polyline(lats, lngs, config.resample_m)
        method = "astar" if use_heuristic else "dijkstra"
        return ImputedPath(lats=lats, lngs=lngs, method=method, cells=tuple(cell_path))

    # -- persistence ------------------------------------------------------

    def storage_size_bytes(self):
        """Model footprint: the graph's flat arrays."""
        self._require_fitted()
        return self.graph.storage_size_bytes()

    def save(self, path, include_state=True):
        """Serialise the fitted model to an ``.npz`` file; returns the path.

        With *include_state* (the default) the mergeable fit state rides
        along, so a loaded model can keep absorbing new data via
        :meth:`update`; pass ``False`` for a leaner, serve-only artefact.
        """
        self._require_fitted()
        path = _normalize_npz_path(path)
        payload = {
            "format": _format_array(MODEL_FORMAT),
            "config": _config_payload(self.config),
            "revision": np.array([self.revision], dtype=np.int64),
            **_graph_payload(self.graph),
        }
        if include_state and self._state is not None:
            payload.update(self._state.payload(_STATE_PREFIX))
        np.savez(path, **payload)
        return path

    @classmethod
    def load(cls, path):
        """Restore a model saved with :meth:`save`.

        Raises :class:`ModelFormatError` when *path* is not a
        current-version habit model (wrong kind, stale version, missing
        arrays, or not an ``.npz`` archive at all).  Models saved with
        their fit state come back refreshable; state-less artefacts load
        fine but reject :meth:`update`.
        """
        path = Path(path)
        with _open_npz(path) as data:
            _check_format(data, MODEL_FORMAT, path)
            imputer = cls(_config_from_npz(data["config"]))
            imputer.graph = _graph_from_npz(data, path)
            imputer.revision = int(data["revision"][0])
            if _STATE_PREFIX + "meta" in data.files:
                imputer._state = StatisticsState.from_payload(data, _STATE_PREFIX)
        return imputer
