"""Imputation results and shared path construction helpers."""

from dataclasses import dataclass, field

import numpy as np

from repro.geo.proj import latlng_to_xy_m

__all__ = [
    "ImputedPath",
    "resample_polyline",
    "resample_polyline_xy",
    "straight_line_path",
]


@dataclass(frozen=True)
class ImputedPath:
    """A reconstructed trajectory between two gap endpoints.

    ``method`` records how the path was produced (a graph search variant
    -- ``"astar"``, ``"dijkstra"``, ``"bidirectional"``, ``"alt"`` -- or
    ``"straight"`` / ``"fallback"`` when a search found no route and the
    imputer degraded to a straight line).  ``expanded`` counts the nodes
    the search settled (0 for straight lines), making heuristic quality
    observable in served responses, not just benchmarks.
    """

    lats: np.ndarray
    lngs: np.ndarray
    method: str = "astar"
    cells: tuple = field(default=(), repr=False)
    expanded: int = 0

    @property
    def num_points(self):
        """Number of path positions."""
        return len(self.lats)


def resample_polyline(lats, lngs, step_m=250.0):
    """Resample a polyline to roughly *step_m* point spacing.

    Imputed paths are simplified to a handful of vertices for storage, but
    point-to-point metrics (DTW) compare against densely sampled ground
    truth; evaluation therefore runs on paths resampled back to AIS-like
    spacing.  Endpoints are preserved exactly.
    """
    lats = np.asarray(lats, dtype=np.float64)
    lngs = np.asarray(lngs, dtype=np.float64)
    if len(lats) < 2:
        return lats.copy(), lngs.copy()
    x, y = latlng_to_xy_m(lats, lngs)
    return resample_polyline_xy(lats, lngs, x, y, step_m)


def resample_polyline_xy(lats, lngs, x, y, step_m=250.0):
    """:func:`resample_polyline` over pre-projected coordinates.

    Segment lengths come from the caller's *x*/*y* (so the imputation hot
    path projects each polyline exactly once); interpolation itself runs
    on lat/lng, which is equivalent under the affine local projection.
    """
    seg = np.hypot(np.diff(x), np.diff(y))
    cum = np.concatenate(([0.0], np.cumsum(seg)))
    length = float(cum[-1])
    if length <= 0.0:
        return lats[:1].copy(), lngs[:1].copy()
    num = max(2, int(np.ceil(length / max(step_m, 1.0))) + 1)
    along = np.linspace(0.0, length, num)
    return np.interp(along, cum, lats), np.interp(along, cum, lngs)


def straight_line_path(start, end, step_m=250.0, method="straight"):
    """Great-circle-free straight interpolation between two endpoints.

    Resamples at roughly *step_m* spacing so DTW comparisons see a path,
    not just two vertices.
    """
    lat_a, lng_a = float(start[0]), float(start[1])
    lat_b, lng_b = float(end[0]), float(end[1])
    x, y = latlng_to_xy_m(
        np.asarray([lat_a, lat_b]), np.asarray([lng_a, lng_b])
    )
    length = float(np.hypot(x[1] - x[0], y[1] - y[0]))
    num = max(2, int(np.ceil(length / max(step_m, 1.0))) + 1)
    frac = np.linspace(0.0, 1.0, num)
    return ImputedPath(
        lats=lat_a + (lat_b - lat_a) * frac,
        lngs=lng_a + (lng_b - lng_a) * frac,
        method=method,
    )
