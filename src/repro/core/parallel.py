"""Sharded and parallel fitting over the partial → merge statistics engine.

:func:`shard_trips` partitions a segmented trip table into spatial shards
keyed by the *cell prefix* (a coarse-resolution hex cell) of each trip's
first position -- whole trips only, so within-trip transitions never
cross a shard.  :func:`compute_statistics_sharded` and
:func:`parallel_fit` then run :func:`repro.core.statistics.partial_statistics`
per shard -- serially, or fanned out over a process pool -- and merge.

The merged result is exactly equal to the one-shot path for counts,
transitions and HLL distinct estimates; medians carry the t-digest
tolerance (see :mod:`repro.core.statistics`).

Process-pool note: on ``fork`` platforms the shards are handed to workers
through fork-inherited module state, so only the compact partial states
cross process boundaries, not the row data.  Where ``fork`` is
unavailable the shards are pickled to the workers instead -- same
results, more IPC.
"""

import itertools
import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.ais import schema
from repro.core.statistics import StatisticsState, partial_statistics
from repro.hexgrid import latlng_to_cell_array
from repro.minidb.hll import hash_array

__all__ = [
    "compute_statistics_sharded",
    "parallel_fit",
    "shard_trips",
]

#: How many resolutions coarser than the fit grid the shard prefix is.
PREFIX_COARSENING = 4

# Shard lists a forked worker reads by (token, index).  Keyed per call so
# concurrent process-mode fits never see each other's shards; a worker's
# fork inherits a snapshot taken at pool creation, so entries other calls
# add or delete afterwards cannot affect it.
_FORK_SHARDS = {}
_FORK_LOCK = threading.Lock()
_FORK_TOKENS = itertools.count()


def shard_trips(trips, num_shards, resolution, coarsening=PREFIX_COARSENING):
    """Partition segmented trips into *num_shards* whole-trip spatial shards.

    Each trip is assigned by the coarse hex cell (``resolution -
    coarsening``) of its first position, hashed for balance; every row of
    a trip lands in the same shard, which is what keeps within-trip
    transitions intact.  Returns a list of tables (some possibly empty).
    """
    num_shards = max(int(num_shards), 1)
    if trips.num_rows == 0 or num_shards == 1:
        return [trips] + [trips.head(0)] * (num_shards - 1)
    trip_ids = np.asarray(trips.column(schema.TRIP_ID), dtype=np.int64)
    _, first_rows, dense = np.unique(trip_ids, return_index=True, return_inverse=True)
    prefix_res = max(int(resolution) - int(coarsening), 0)
    coarse = latlng_to_cell_array(
        np.asarray(trips.column(schema.LAT), dtype=np.float64)[first_rows],
        np.asarray(trips.column(schema.LON), dtype=np.float64)[first_rows],
        prefix_res,
    )
    shard_of_trip = (hash_array(coarse) % np.uint64(num_shards)).astype(np.int64)
    shard_of_row = shard_of_trip[dense]
    return [trips.filter(shard_of_row == s) for s in range(num_shards)]


def _partial_worker(args):
    """Process-pool worker: partial statistics for one shard."""
    shard, config = args
    if isinstance(shard, tuple):  # fork path: (token, index) into inherited state
        token, index = shard
        shard = _FORK_SHARDS[token][index]
    return partial_statistics(shard, config)


def _map_partials(shards, config, mode, max_workers):
    if mode == "serial":
        return [partial_statistics(shard, config) for shard in shards]
    if mode != "process":
        raise ValueError(f"unknown mode {mode!r}; use 'serial' or 'process'")
    workers = max_workers or min(len(shards), multiprocessing.cpu_count() or 1)
    use_fork = "fork" in multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if use_fork else None)
    if not use_fork:
        jobs = [(shard, config) for shard in shards]
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            return list(pool.map(_partial_worker, jobs))
    with _FORK_LOCK:
        token = next(_FORK_TOKENS)
        _FORK_SHARDS[token] = shards
    jobs = [((token, i), config) for i in range(len(shards))]
    try:
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            return list(pool.map(_partial_worker, jobs))
    finally:
        with _FORK_LOCK:
            del _FORK_SHARDS[token]


def compute_statistics_sharded(
    trips, config, num_shards=4, mode="serial", max_workers=None
):
    """Sharded :func:`repro.core.statistics.compute_statistics`.

    Splits *trips* with :func:`shard_trips`, computes per-shard partial
    states (``mode="process"`` fans them over a process pool), and merges.
    Returns ``(cell_stats, transition_stats)``.
    """
    shards = shard_trips(trips, num_shards, config.resolution)
    states = _map_partials(shards, config, mode, max_workers)
    return StatisticsState.merged(states).finalize()


def parallel_fit(trips, config=None, num_shards=4, mode="serial", max_workers=None):
    """Fit a :class:`repro.core.HabitImputer` from whole-trip shards.

    The sharded statistics feed ``fit_partial``/``merge``/``finalize``,
    so the returned model is the same one ``fit_from_trips`` builds (graph
    arrays bit-identical under the default center projection).
    """
    # Imported here: habit.py already imports this package's statistics
    # sibling, and parallel is a leaf the imputer does not depend on.
    from repro.core.habit import HabitConfig, HabitImputer

    config = config or HabitConfig()
    shards = shard_trips(trips, num_shards, config.resolution)
    states = _map_partials(shards, config, mode, max_workers)
    imputer = HabitImputer(config)
    for state in states:
        imputer.merge(state)
    return imputer.finalize()
