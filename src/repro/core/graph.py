"""The learned cell-transition graph and its CSR search engine.

Nodes are hex cells with observed support; edges are observed directed
cell transitions.  Edge costs are denominated in *grid steps* and are
always >= the hex grid distance they span, which makes the grid-distance
heuristic exactly admissible (and consistent): every search variant
returns the same cost as plain Dijkstra, just expanding fewer nodes --
the property the A* ablation and the search equivalence tests check.

Internally the graph lives in a compact index space: cell ids are mapped
to dense ``int32`` node indices at construction and edges are stored as
CSR arrays (``indptr`` / ``indices`` / ``costs``), with per-node axial
``(q, r)`` coordinates precomputed so heuristics are two integer
subtractions on arrays instead of a bit-unpack per edge relaxation.  The
legacy dict views (``adjacency``, ``node_attrs``) are built lazily for
compatibility and never touched by the hot path.

Search variants (:meth:`CellGraph.find_path`):

- ``"dijkstra"`` -- no heuristic; the cost oracle.
- ``"astar"`` -- grid-distance heuristic, precomputed for all nodes per
  query as one vectorised pass.
- ``"bidirectional"`` -- meet-in-the-middle Dijkstra over reduced costs
  from the balanced grid potential ``p(v) = (h(v, dst) - h(v, src)) / 2``
  (consistent both ways, so the standard ``top_f + top_b >= mu`` stopping
  rule is provably equal-cost).
- ``"alt"`` -- A* with the ALT/landmark heuristic maxed with the grid
  heuristic; landmarks are far-apart high-degree hub cells with exact
  CSR-Dijkstra distance tables (:meth:`CellGraph.compute_landmarks`),
  persisted in format-v4 model files so loaded models skip
  preprocessing.
- ``"ch"`` (default) -- contraction hierarchies.  An offline pass
  (:meth:`CellGraph.compute_ch`) contracts nodes in edge-difference
  order (lazy re-evaluation) and records shortcut edges with
  middle-node back-pointers; queries run a bidirectional upward-only
  Dijkstra with stall-on-demand pruning and unpack shortcuts back into
  original cells.  The hierarchy is stored as CSR ``int32`` arrays and
  persisted in format-v5 model files.

Two weight schemes are supported:

- ``"transitions"`` (paper): cost ~ grid span, with a vanishing bonus for
  frequently observed transitions (ties break toward habit).
- ``"inverse_frequency"``: popular edges are up to 2x cheaper per step,
  steering paths onto dominant lanes.
"""

import threading
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from time import perf_counter

import numpy as np

from repro.core.kernel import (
    KERNEL_BATCH_SIZE,
    KERNEL_SECONDS,
    build_kernel_tables,
    initial_cut_counts,
    solve_batch,
)
from repro.hexgrid import (
    cell_axial_array,
    cell_to_latlng_array,
    grid_distance_array,
    ring,
)
from repro.obs import COUNT_BUCKETS, METRICS

__all__ = ["CellGraph", "SearchResult", "SEARCH_METHODS", "GOAL_DIRECTED_METHODS"]

#: Search variants accepted by :meth:`CellGraph.find_path` (and, through
#: ``HabitConfig.search``, by the imputer's query path).
SEARCH_METHODS = ("dijkstra", "astar", "bidirectional", "alt", "ch")

#: Below this many non-degenerate lanes, ``find_paths_batch`` answers
#: each pair with the scalar CH query instead of the NumPy sweep: the
#: kernel's fixed per-sweep cost (dense 2n workspace, frontier set-up)
#: only amortises across several lanes, and costs are bit-equal either
#: way.  ``expanded`` keeps its per-variant meaning (settled nodes
#: scalar-side, labelled nodes batch-side).
KERNEL_CROSSOVER_LANES = 4

#: The variants that search *toward* the goal (heuristic- or
#: hierarchy-guided); each must settle no more nodes than plain Dijkstra
#: on any admissible graph -- the bound the property suite asserts.
GOAL_DIRECTED_METHODS = ("astar", "alt")

_INF = float("inf")

_SEARCH_SECONDS = METRICS.histogram(
    "repro_search_seconds",
    "Graph search latency per query in seconds, by search variant.",
    ("method",),
)
_SEARCH_EXPANDED = METRICS.histogram(
    "repro_search_expanded",
    "Nodes settled per search query, by search variant.",
    ("method",),
    buckets=COUNT_BUCKETS,
)
_GRAPH_BUILD_SECONDS = METRICS.histogram(
    "repro_graph_build_seconds",
    "Search-preprocessing build duration, by stage (landmarks, ch).",
    ("stage",),
)

#: Bound on the per-graph snap memo (the serve path re-snaps identical
#: endpoints constantly; distinct endpoints are bounded by traffic area).
_SNAP_CACHE_SIZE = 1 << 16

#: Bound on the per-target heuristic-vector memos.  Hub-to-hub queries
#: concentrate on few destinations, so the vectorised grid/ALT heuristic
#: pass is usually amortised to a dict probe; each entry is O(num_nodes).
_H_CACHE_SIZE = 128

#: Cap on nodes settled per witness search during CH contraction.  The
#: witness search only ever *skips* a shortcut; hitting the cap adds a
#: (redundant but harmless) shortcut, it never loses a necessary one,
#: so correctness is independent of this knob -- only preprocessing
#: time and hierarchy density depend on it.
_CH_WITNESS_LIMIT = 64

#: Relative slack when a witness path is compared against a candidate
#: shortcut.  Costs are float sums in different association orders; a
#: witness within this slack of the shortcut cost still proves the
#: shortcut unnecessary (up to the same slack the equal-cost tests
#: allow), while a genuinely longer witness never passes.
_CH_WITNESS_RTOL = 1e-12


def _edge_costs(grid_spans, counts, scheme):
    spans = np.maximum(grid_spans.astype(np.float64), 1.0)
    counts = counts.astype(np.float64)
    if scheme == "transitions":
        return spans * (1.0 + 1.0 / (1.0 + counts))
    if scheme == "inverse_frequency":
        top = max(float(counts.max()), 1.0) if len(counts) else 1.0
        return spans * (2.0 - counts / top)
    raise ValueError(f"unknown edge weight scheme {scheme!r}")


@dataclass(frozen=True)
class SearchResult:
    """One answered graph query: the path, its cost, and search effort.

    ``cells`` are packed cell ids along the path (src..dst inclusive);
    ``node_indices`` are the same nodes in dense index space (used by the
    imputer to project positions without dict lookups).  ``expanded``
    counts settled nodes -- the heuristic-quality signal surfaced in
    serving provenance and the A* ablation.
    """

    cells: tuple
    cost: float
    expanded: int
    method: str
    node_indices: tuple = field(default=(), repr=False)


class CellGraph:
    """Directed graph over hex cells with metricised transition costs."""

    def __init__(self, cells, lats, lngs, edge_src, edge_dst, edge_cost, edge_count):
        self.cells = np.asarray(cells, dtype=np.int64)
        self.lats = np.asarray(lats, dtype=np.float64)
        self.lngs = np.asarray(lngs, dtype=np.float64)
        self.edge_src = np.asarray(edge_src, dtype=np.int64)
        self.edge_dst = np.asarray(edge_dst, dtype=np.int64)
        self.edge_cost = np.asarray(edge_cost, dtype=np.float64)
        self.edge_count = np.asarray(edge_count, dtype=np.int64)
        n = len(self.cells)
        # Dense index space: cell id -> int32 node index via sorted lookup.
        order = np.argsort(self.cells, kind="stable")
        self._sorted_cells = self.cells[order]
        self._sorted_to_node = order.astype(np.int32)
        # Per-node axial coordinates: the heuristic becomes two integer
        # subtractions on these arrays.
        q, r = cell_axial_array(self.cells)
        self.node_q = q.astype(np.int32)
        self.node_r = r.astype(np.int32)
        # CSR edge storage.  Edges whose endpoints carry no node (possible
        # only in hand-built graphs) are dropped from the index; the flat
        # arrays above stay exactly as given for persistence.
        src_idx = self._node_index_array(self.edge_src)
        dst_idx = self._node_index_array(self.edge_dst)
        valid = (src_idx >= 0) & (dst_idx >= 0)
        src_idx = src_idx[valid]
        eorder = np.argsort(src_idx, kind="stable")  # keeps per-row edge order
        counts = np.bincount(src_idx, minlength=n) if len(src_idx) else np.zeros(n, np.int64)
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.indptr[1:])
        self.indices = dst_idx[valid][eorder].astype(np.int32)
        self.costs = self.edge_cost[valid][eorder]
        self._csr_counts = self.edge_count[valid][eorder]
        # Optional ALT landmark tables (node indices + k x n distance
        # matrices, exact CSR-Dijkstra distances, inf = unreachable).
        self.landmarks = None
        self.landmark_from = None
        self.landmark_to = None
        # Optional contraction hierarchy (``compute_ch``): per-node
        # contraction rank plus upward/downward shortcut CSR arrays with
        # middle-node back-pointers (-1 = original edge).  ``ch_down_*``
        # row u holds the *in*-neighbours of u with higher rank -- the
        # backward query's adjacency and the forward query's stall probe.
        self.ch_rank = None
        self.ch_up_indptr = None
        self.ch_up_indices = None
        self.ch_up_costs = None
        self.ch_up_middle = None
        self.ch_down_indptr = None
        self.ch_down_indices = None
        self.ch_down_costs = None
        self.ch_down_middle = None
        # Lazily built structures (hot-loop adjacency mirrors, legacy
        # dict views, snap memo, landmarks) share one reentrant lock
        # (landmark preprocessing builds the mirrors while holding it);
        # all are pure functions of the frozen arrays, so queries stay
        # read-only in spirit.
        self._lock = threading.RLock()
        self._csr_lists = None
        self._rev_lists = None
        self._node_attrs = None
        self._adjacency = None
        self._snap_cache = {}
        self._h_cache = {}  # target idx -> (int64 array, python list)
        self._alt_h_cache = {}  # target idx -> python list
        self._ch_up_lists = None  # hot-loop mirrors of the CH CSR arrays
        self._ch_down_lists = None
        self._ch_middle_map = None  # (u, v) -> middle node (unpacking)
        self._ch_kernel_table = None  # sorted augmented-edge table (batch)
        self._in_deg = None  # per-node in-degree (degenerate short-circuit)

    @classmethod
    def from_statistics(cls, cell_stats, transition_stats, projection, edge_weight):
        """Build a graph from :func:`repro.core.statistics.compute_statistics`.

        *projection* places each node at the cell centre (``"center"``) or
        at the median of its observed positions (``"median"``).
        """
        cells = np.asarray(cell_stats.column("cell"), dtype=np.int64)
        if projection == "center":
            lats, lngs = cell_to_latlng_array(cells)
        elif projection == "median":
            lats = np.asarray(cell_stats.column("median_lat"), dtype=np.float64)
            lngs = np.asarray(cell_stats.column("median_lon"), dtype=np.float64)
        else:
            raise ValueError(f"unknown projection {projection!r}")
        src = np.asarray(transition_stats.column("cell"), dtype=np.int64)
        dst = np.asarray(transition_stats.column("next_cell"), dtype=np.int64)
        counts = np.asarray(transition_stats.column("transitions"), dtype=np.int64)
        spans = (
            grid_distance_array(src, dst) if len(src) else np.zeros(0, dtype=np.int64)
        )
        costs = _edge_costs(spans, counts, edge_weight)
        return cls(cells, lats, lngs, src, dst, costs, counts)

    # -- index space -------------------------------------------------------

    def _node_index_array(self, cells):
        """Map cell ids to node indices (int32), -1 where absent."""
        cells = np.asarray(cells, dtype=np.int64)
        if len(self._sorted_cells) == 0:
            return np.full(cells.shape, -1, dtype=np.int32)
        pos = np.searchsorted(self._sorted_cells, cells)
        pos = np.minimum(pos, len(self._sorted_cells) - 1)
        out = self._sorted_to_node[pos].astype(np.int32, copy=True)
        out[self._sorted_cells[pos] != cells] = -1
        return out

    def node_index(self, cell):
        """Dense node index for a cell id, or -1 when not a node."""
        sorted_cells = self._sorted_cells
        if len(sorted_cells) == 0:
            return -1
        pos = int(np.searchsorted(sorted_cells, int(cell)))
        if pos >= len(sorted_cells) or int(sorted_cells[pos]) != int(cell):
            return -1
        return int(self._sorted_to_node[pos])

    # -- legacy dict views (lazy; not used by the hot path) ---------------

    @property
    def node_attrs(self):
        """cell id -> (lat, lng); compat view, built on first access."""
        attrs = self._node_attrs
        if attrs is None:
            with self._lock:
                attrs = self._node_attrs
                if attrs is None:
                    attrs = {
                        int(c): (float(la), float(ln))
                        for c, la, ln in zip(self.cells, self.lats, self.lngs)
                    }
                    self._node_attrs = attrs
        return attrs

    @property
    def adjacency(self):
        """cell id -> [(neighbour cell, cost, count)]; compat view."""
        adj = self._adjacency
        if adj is None:
            with self._lock:
                adj = self._adjacency
                if adj is None:
                    adj = {}
                    cells = self.cells
                    indptr, indices = self.indptr, self.indices
                    for u in range(len(cells)):
                        row = [
                            (
                                int(cells[indices[e]]),
                                float(self.costs[e]),
                                int(self._csr_counts[e]),
                            )
                            for e in range(indptr[u], indptr[u + 1])
                        ]
                        if row:
                            adj[int(cells[u])] = row
                    self._adjacency = adj
        return adj

    # -- shape / size ------------------------------------------------------

    @property
    def num_nodes(self):
        """Number of cells with observed support."""
        return len(self.cells)

    @property
    def num_edges(self):
        """Number of directed transitions."""
        return len(self.edge_src)

    def storage_size_bytes(self):
        """Bytes of the flat arrays that fully describe the graph."""
        return int(
            self.cells.nbytes
            + self.lats.nbytes
            + self.lngs.nbytes
            + self.edge_src.nbytes
            + self.edge_dst.nbytes
            + self.edge_cost.nbytes
            + self.edge_count.nbytes
        )

    # -- hot-loop mirrors --------------------------------------------------

    @staticmethod
    def _neighbour_tuples(indptr, indices, costs):
        """Per-node ``((v, w), ...)`` rows from CSR arrays.

        The search loops iterate neighbours as ``for v, w in adj[u]`` --
        one tuple unpack per edge beats indexed CSR access by ~20% in
        CPython, and the rows are built once per graph.
        """
        indices = indices.tolist()
        costs = costs.tolist()
        bounds = indptr.tolist()
        pairs = list(zip(indices, costs))
        return [
            tuple(pairs[bounds[u] : bounds[u + 1]]) for u in range(len(bounds) - 1)
        ]

    def _forward(self):
        """Hot-loop adjacency mirror of the forward CSR (lazy, cached)."""
        adj = self._csr_lists
        if adj is None:
            with self._lock:
                adj = self._csr_lists
                if adj is None:
                    adj = self._neighbour_tuples(self.indptr, self.indices, self.costs)
                    self._csr_lists = adj
        return adj

    def _backward(self):
        """Hot-loop adjacency mirror of the reverse CSR (lazy, cached)."""
        adj = self._rev_lists
        if adj is None:
            with self._lock:
                adj = self._rev_lists
                if adj is None:
                    n = self.num_nodes
                    eorder = np.argsort(self.indices, kind="stable")
                    counts = (
                        np.bincount(self.indices, minlength=n)
                        if len(self.indices)
                        else np.zeros(n, np.int64)
                    )
                    indptr = np.zeros(n + 1, dtype=np.int64)
                    np.cumsum(counts, out=indptr[1:])
                    # Source of each CSR edge, recovered from indptr.
                    src_of_edge = np.repeat(
                        np.arange(n, dtype=np.int32), np.diff(self.indptr)
                    )
                    adj = self._neighbour_tuples(
                        indptr, src_of_edge[eorder], self.costs[eorder]
                    )
                    self._rev_lists = adj
        return adj

    def _grid_h_array(self, target):
        """Grid distance of every node to *target* (one vectorised pass)."""
        dq = self.node_q.astype(np.int64) - int(self.node_q[target])
        dr = self.node_r.astype(np.int64) - int(self.node_r[target])
        return (np.abs(dq) + np.abs(dr) + np.abs(dq + dr)) >> 1

    def _grid_h(self, target):
        """Memoized ``(array, list)`` grid heuristic to *target*."""
        entry = self._h_cache.get(target)
        if entry is None:
            arr = self._grid_h_array(target)
            entry = (arr, arr.tolist())
            with self._lock:
                if len(self._h_cache) >= _H_CACHE_SIZE:
                    self._h_cache.clear()
                self._h_cache[target] = entry
        return entry

    # -- snapping ----------------------------------------------------------

    def nearest_node(self, cell, max_ring=8):
        """Snap a cell to the nearest graph node.

        Expands hex rings outwards (cheap, local) and falls back to a
        vectorised full scan over all nodes when the rings miss.  Snaps
        are memoized per graph -- the serve path re-snaps identical
        endpoints constantly -- in a bounded memo keyed by
        ``(cell, max_ring)`` (flushed wholesale when full).  Returns
        ``None`` only for an empty graph.
        """
        if self.num_nodes == 0:
            return None
        cell = int(cell)
        if self.node_index(cell) >= 0:
            return cell
        key = (cell, int(max_ring))
        cache = self._snap_cache
        hit = cache.get(key)
        if hit is not None:
            return hit
        snapped = self._nearest_node_uncached(cell, max_ring)
        with self._lock:
            if len(cache) >= _SNAP_CACHE_SIZE:
                cache.clear()
            cache[key] = snapped
        return snapped

    def _nearest_node_uncached(self, cell, max_ring):
        for k in range(1, max_ring + 1):
            candidates = np.asarray(ring(cell, k), dtype=np.int64)
            found = self._node_index_array(candidates) >= 0
            if found.any():
                return int(candidates[found][0])
        # Full scan, broadcasting the scalar query cell (no per-miss
        # np.full_like allocation).
        distances = grid_distance_array(self.cells, np.int64(cell))
        return int(self.cells[int(np.argmin(distances))])

    # -- search ------------------------------------------------------------

    def astar(self, src, dst, use_heuristic=True):
        """Cheapest path of cell ids from *src* to *dst*, or ``None``.

        With *use_heuristic* the hex grid distance to *dst* guides the
        search; without it this is Dijkstra.  Both return equal-cost paths
        because the heuristic is admissible and consistent.  (Compat
        wrapper over :meth:`find_path`.)
        """
        result = self.find_path(src, dst, "astar" if use_heuristic else "dijkstra")
        return None if result is None else list(result.cells)

    def find_path(self, src, dst, method="astar"):
        """Search for a cheapest *src* -> *dst* path (cell ids).

        Returns a :class:`SearchResult` or ``None`` when either endpoint
        is not a node or no route exists.  All methods return equal-cost
        paths (the heuristics are admissible and consistent).
        """
        if method not in SEARCH_METHODS:
            raise ValueError(
                f"unknown search method {method!r}; expected one of {SEARCH_METHODS}"
            )
        started = perf_counter()
        result = self._find_path(src, dst, method)
        _SEARCH_SECONDS.observe(perf_counter() - started, (method,))
        if result is not None:
            _SEARCH_EXPANDED.observe(result.expanded, (method,))
        return result

    def _find_path(self, src, dst, method):
        si = self.node_index(src)
        di = self.node_index(dst)
        if si < 0 or di < 0:
            return None
        if si == di:
            cell = int(self.cells[si])
            return SearchResult((cell,), 0.0, 0, method, (si,))
        if self._degenerate_unreachable(si, di):
            return None
        if method == "bidirectional":
            found = self._bidirectional(si, di)
        elif method == "ch":
            self.ensure_ch()
            found = self._ch_query(si, di)
        else:
            if method == "dijkstra":
                h = None
            elif method == "astar":
                h = self._grid_h(di)[1]
            else:  # alt
                self.ensure_landmarks()
                h = self._alt_h(di)
                if h[si] == _INF:
                    return None  # provably unreachable (landmark bound)
            found = self._astar_indices(si, di, h)
        if found is None:
            return None
        path, cost, expanded = found
        cells = tuple(self.cells[path].tolist())
        return SearchResult(cells, cost, expanded, method, tuple(path))

    def _degenerate_unreachable(self, si, di):
        """Cheap provable-unreachable test for a ``si != di`` pair.

        A source with no outgoing edges cannot reach anything and a
        target with no incoming edges cannot be reached, so every
        variant can return ``None`` before touching its heap (or
        triggering a lazy landmark/CH build).
        """
        return (
            self.indptr[si + 1] == self.indptr[si] or self._in_degree()[di] == 0
        )

    def _in_degree(self):
        """Per-node in-degree array (lazy, cached)."""
        deg = self._in_deg
        if deg is None:
            with self._lock:
                deg = self._in_deg
                if deg is None:
                    n = self.num_nodes
                    deg = (
                        np.bincount(self.indices, minlength=n)
                        if len(self.indices)
                        else np.zeros(n, np.int64)
                    )
                    self._in_deg = deg
        return deg

    def _astar_indices(self, si, di, h):
        """Unidirectional A* / Dijkstra over the adjacency mirror."""
        adj = self._forward()
        n = self.num_nodes
        g = [_INF] * n
        came = [-1] * n
        closed = bytearray(n)
        g[si] = 0.0
        frontier = [((h[si] if h else 0.0), si)]
        expanded = 0
        while frontier:
            _, u = heappop(frontier)
            if u == di:
                path = [u]
                while came[u] >= 0:
                    u = came[u]
                    path.append(u)
                path.reverse()
                return path, g[di], expanded
            if closed[u]:
                continue
            closed[u] = 1
            expanded += 1
            gu = g[u]
            for v, w in adj[u]:
                if closed[v]:
                    continue
                tentative = gu + w
                if tentative < g[v]:
                    hv = h[v] if h else 0.0
                    if hv == _INF:
                        continue
                    g[v] = tentative
                    came[v] = u
                    heappush(frontier, (tentative + hv, v))
        return None

    def _bidirectional(self, si, di):
        """Meet-in-the-middle search with balanced grid potentials.

        Runs bidirectional Dijkstra over reduced costs
        ``c(u, v) - p(u) + p(v)`` with ``p(v) = (h(v, dst) - h(v, src)) / 2``;
        consistency of the grid heuristic makes reduced costs non-negative
        in both directions, so the classic ``top_f + top_b >= mu`` stop is
        exact.  True (unreduced) distances ride along for the returned
        cost.
        """
        fadj = self._forward()
        badj = self._backward()
        n = self.num_nodes
        p = ((self._grid_h(di)[0] - self._grid_h(si)[0]) * 0.5).tolist()
        gf = [_INF] * n  # reduced forward distances
        gb = [_INF] * n
        tf = [_INF] * n  # true forward distances
        tb = [_INF] * n
        cf = [-1] * n
        cb = [-1] * n
        donef = bytearray(n)
        doneb = bytearray(n)
        gf[si] = tf[si] = 0.0
        gb[di] = tb[di] = 0.0
        qf = [(0.0, si)]
        qb = [(0.0, di)]
        mu = _INF  # best reduced meeting cost
        mu_true = _INF
        meet = -1
        expanded = 0
        while qf and qb and qf[0][0] + qb[0][0] < mu:
            if qf[0][0] <= qb[0][0]:
                _, u = heappop(qf)
                if donef[u]:
                    continue
                donef[u] = 1
                expanded += 1
                tu = tf[u]
                base = gf[u] - p[u]
                for v, w in fadj[u]:
                    if donef[v]:
                        continue
                    ng = base + w + p[v]
                    # ng >= mu can never improve: reduced costs are
                    # non-negative, so any s-t path via v costs >= mu.
                    if ng < gf[v] and ng < mu:
                        gf[v] = ng
                        tf[v] = tu + w
                        cf[v] = u
                        heappush(qf, (ng, v))
                        if gb[v] < _INF:
                            cand = ng + gb[v]
                            if cand < mu:
                                mu = cand
                                mu_true = tf[v] + tb[v]
                                meet = v
            else:
                _, u = heappop(qb)
                if doneb[u]:
                    continue
                doneb[u] = 1
                expanded += 1
                tu = tb[u]
                base = gb[u] + p[u]
                for v, w in badj[u]:
                    if doneb[v]:
                        continue
                    ng = base + w - p[v]  # reverse reduced cost
                    if ng < gb[v] and ng < mu:
                        gb[v] = ng
                        tb[v] = tu + w
                        cb[v] = u
                        heappush(qb, (ng, v))
                        if gf[v] < _INF:
                            cand = gf[v] + ng
                            if cand < mu:
                                mu = cand
                                mu_true = tf[v] + tb[v]
                                meet = v
        if meet < 0:
            return None
        path = [meet]
        u = meet
        while cf[u] >= 0:
            u = cf[u]
            path.append(u)
        path.reverse()
        u = meet
        while cb[u] >= 0:
            u = cb[u]
            path.append(u)
        return path, mu_true, expanded

    # -- ALT landmarks -----------------------------------------------------

    @property
    def has_landmarks(self):
        """Whether ALT landmark tables are present."""
        return self.landmarks is not None and len(self.landmarks) > 0

    def ensure_landmarks(self, k=8):
        """Compute landmark tables if absent (idempotent, thread-safe)."""
        if self.landmarks is None:
            with self._lock:
                if self.landmarks is None:
                    with _GRAPH_BUILD_SECONDS.time(("landmarks",)):
                        self._compute_landmarks_locked(k)
        return self

    def compute_landmarks(self, k=8):
        """(Re)select ~*k* far-apart high-degree hub landmarks.

        Picks the highest-degree node, then farthest-point selection over
        a high-degree candidate pool using exact symmetric graph
        distances, and precomputes per-landmark distance tables from
        (``landmark_from``) and to (``landmark_to``) every node via CSR
        Dijkstra.  Persisted with format-v4 models so loading skips this.
        """
        with self._lock:
            with _GRAPH_BUILD_SECONDS.time(("landmarks",)):
                self._compute_landmarks_locked(k)
        return self

    def _compute_landmarks_locked(self, k):
        n = self.num_nodes
        k = max(int(k), 0)
        if n == 0 or k == 0:
            self.landmarks = np.zeros(0, dtype=np.int32)
            self.landmark_from = np.zeros((0, n), dtype=np.float64)
            self.landmark_to = np.zeros((0, n), dtype=np.float64)
            return
        k = min(k, n)
        out_deg = np.diff(self.indptr)
        in_deg = (
            np.bincount(self.indices, minlength=n)
            if len(self.indices)
            else np.zeros(n, np.int64)
        )
        degree = out_deg + in_deg
        # Candidate pool: hubs only (top quartile by degree, at least k).
        pool = np.argsort(degree, kind="stable")[::-1][: max(k, n // 4)]
        chosen = [int(pool[0])]
        dist_from = [self._sssp(chosen[0], reverse=False)]
        dist_to = [self._sssp(chosen[0], reverse=True)]
        # Farthest-point selection on min symmetric landmark distance;
        # unreachable (inf) sorts first, spreading across components.
        min_sym = np.minimum(dist_from[0], dist_to[0])
        while len(chosen) < k:
            scores = min_sym[pool].copy()
            scores[np.isin(pool, chosen)] = -1.0
            best = int(pool[int(np.argmax(scores))])
            if best in chosen or scores.max() <= 0.0:
                break  # pool exhausted (tiny or fully covered graph)
            chosen.append(best)
            dist_from.append(self._sssp(best, reverse=False))
            dist_to.append(self._sssp(best, reverse=True))
            min_sym = np.minimum(min_sym, np.minimum(dist_from[-1], dist_to[-1]))
        self.landmarks = np.asarray(chosen, dtype=np.int32)
        self.landmark_from = np.vstack(dist_from)
        self.landmark_to = np.vstack(dist_to)
        self._alt_h_cache = {}

    def set_landmarks(self, landmarks, dist_from, dist_to):
        """Install precomputed landmark tables (model load path)."""
        landmarks = np.asarray(landmarks, dtype=np.int32)
        dist_from = np.asarray(dist_from, dtype=np.float64)
        dist_to = np.asarray(dist_to, dtype=np.float64)
        n = self.num_nodes
        expected = (len(landmarks), n)
        if dist_from.shape != expected or dist_to.shape != expected:
            raise ValueError(
                f"landmark tables must be shaped {expected}, got "
                f"{dist_from.shape} / {dist_to.shape}"
            )
        self.landmarks = landmarks
        self.landmark_from = dist_from
        self.landmark_to = dist_to
        self._alt_h_cache = {}
        return self

    def _sssp(self, source, reverse=False):
        """Exact single-source distances over the (reverse) CSR."""
        adj = self._backward() if reverse else self._forward()
        n = self.num_nodes
        dist = [_INF] * n
        done = bytearray(n)
        dist[source] = 0.0
        heap = [(0.0, source)]
        while heap:
            d, u = heappop(heap)
            if done[u]:
                continue
            done[u] = 1
            for v, w in adj[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heappush(heap, (nd, v))
        return np.asarray(dist, dtype=np.float64)

    def _alt_h(self, di):
        """ALT heuristic to *di* for every node, maxed with the grid one.

        Triangle-inequality bounds ``d(l, t) - d(l, v)`` and
        ``d(v, l) - d(t, l)`` per landmark; ``inf`` entries are exact
        (the node provably cannot reach *di*) and prune the search, while
        ``inf - inf`` (no information) collapses to the grid bound.
        Memoized per target like the grid heuristic.
        """
        cached = self._alt_h_cache.get(di)
        if cached is not None:
            return cached
        grid_h = self._grid_h(di)[0].astype(np.float64)
        lf = self.landmark_from
        lt = self.landmark_to
        if lf is None or lf.shape[0] == 0:
            h = grid_h.tolist()
        else:
            with np.errstate(invalid="ignore"):
                a = lf[:, di : di + 1] - lf  # d(l, t) - d(l, v)
                b = lt - lt[:, di : di + 1]  # d(v, l) - d(t, l)
            bounds = np.fmax(
                np.nan_to_num(a, nan=-np.inf, posinf=np.inf, neginf=-np.inf),
                np.nan_to_num(b, nan=-np.inf, posinf=np.inf, neginf=-np.inf),
            ).max(axis=0)
            h = np.maximum(bounds, grid_h).tolist()
        with self._lock:
            if len(self._alt_h_cache) >= _H_CACHE_SIZE:
                self._alt_h_cache.clear()
            self._alt_h_cache[di] = h
        return h

    # -- contraction hierarchy ---------------------------------------------

    @property
    def has_ch(self):
        """Whether the contraction hierarchy is present."""
        return self.ch_rank is not None

    def ensure_ch(self):
        """Compute the hierarchy if absent (idempotent, thread-safe)."""
        if self.ch_rank is None:
            with self._lock:
                if self.ch_rank is None:
                    with _GRAPH_BUILD_SECONDS.time(("ch",)):
                        self._compute_ch_locked()
        return self

    def compute_ch(self):
        """(Re)build the contraction hierarchy.

        Contracts every node in edge-difference order (shortcuts added
        minus edges removed, plus a deleted-neighbours term for spatial
        uniformity) with lazy priority re-evaluation: the cheapest node
        is re-scored when popped and contracted only if it still beats
        the next candidate.  Contracting ``w`` adds a shortcut
        ``u -> v`` with cost ``c(u,w) + c(w,v)`` for every in/out
        neighbour pair unless a bounded witness search proves an equally
        cheap detour survives without ``w``; the witness search is
        conservative (a truncated search adds a redundant shortcut, it
        never drops a needed one), so CH distances are *exactly* the
        Dijkstra distances.  The result is stored as upward/downward CSR
        ``int32`` arrays with per-edge middle-node back-pointers for
        path unpacking, persisted in format-v5 model files so loads skip
        this pass.
        """
        with self._lock:
            with _GRAPH_BUILD_SECONDS.time(("ch",)):
                self._compute_ch_locked()
        return self

    def _compute_ch_locked(self):
        n = self.num_nodes
        # Overlay adjacency for the contraction pass, deduplicated to
        # the cheapest parallel edge (what every search relaxes anyway)
        # and self-loop-free (positive costs, never on a cheapest
        # path).  ``out_all`` accumulates every augmented edge with its
        # middle back-pointer for the final rank split; ``out_live`` /
        # ``in_live`` mirror only the *remaining* graph -- contracted
        # nodes are physically removed, so the witness inner loop
        # iterates plain ``{node: cost}`` dicts with no contracted
        # checks or tuple unpacking.
        eu = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self.indptr.astype(np.int64))
        )
        ev = self.indices.astype(np.int64)
        ec = self.costs
        keep = eu != ev
        eu, ev, ec = eu[keep], ev[keep], ec[keep]
        ekey = eu * n + ev
        order = np.lexsort((ec, ekey))
        ekey = ekey[order]
        first = np.ones(ekey.size, dtype=bool)
        first[1:] = ekey[1:] != ekey[:-1]
        eu, ev, ec = eu[order][first], ev[order][first], ec[order][first]
        fsplit = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(eu, minlength=n), out=fsplit[1:])
        rorder = np.argsort(ev, kind="stable")
        rsplit = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(ev, minlength=n), out=rsplit[1:])
        fv, fc = ev.tolist(), ec.tolist()
        ru, rc = eu[rorder].tolist(), ec[rorder].tolist()
        fb, rb = fsplit.tolist(), rsplit.tolist()
        out_live = [
            dict(zip(fv[fb[u] : fb[u + 1]], fc[fb[u] : fb[u + 1]]))
            for u in range(n)
        ]
        in_live = [
            dict(zip(ru[rb[v] : rb[v + 1]], rc[rb[v] : rb[v + 1]]))
            for v in range(n)
        ]
        out_all = [
            {v: (c, -1) for v, c in row.items()} for row in out_live
        ]
        contracted = bytearray(n)
        rank = np.zeros(n, dtype=np.int32)
        deleted = [0] * n

        # Stamped scratch arrays for the witness searches: one flat
        # distance/version pair per node instead of a fresh dict per
        # search, so the inner relax loop is pure list indexing.
        wdist = [0.0] * n
        wstamp = [0] * n
        wver = 0

        def witness_distances(adj, source, targets, limit):
            """Bounded Dijkstra from *source* over *adj* (the live
            forward or reverse overlay); fills the stamped scratch
            arrays and returns the search's stamp.  The node being
            evaluated must already be detached from *adj* -- the caller
            unlinks its incident edges once per evaluation, which is
            cheaper than a skip test in every relaxation."""
            nonlocal wver
            wver += 1
            ver = wver
            dist = wdist
            stamp = wstamp
            dist[source] = 0.0
            stamp[source] = ver
            heap = [(0.0, source)]
            pop = heappop
            push = heappush
            remaining = len(targets)
            settled = 0
            # Labels beyond the witness cap can never pass a witness
            # comparison (every ``through <= limit``), so pushes past
            # it are pure heap churn -- prune them at the source.
            cap = limit * (1.0 + _CH_WITNESS_RTOL)
            while heap and remaining and settled < _CH_WITNESS_LIMIT:
                d, u = pop(heap)
                if d > limit:
                    break
                if d > dist[u]:
                    continue  # stale heap entry
                if u in targets:
                    remaining -= 1
                settled += 1
                for v, w in adj[u].items():
                    nd = d + w
                    if nd > cap:
                        continue
                    if stamp[v] != ver or nd < dist[v]:
                        dist[v] = nd
                        stamp[v] = ver
                        push(heap, (nd, v))
            return ver

        def scan_pairs(w, din, dout, skip=()):
            """Pending (in, out) pairs of *w* with no trivial witness.

            A live overlay edge between the pair's endpoints is itself
            a witness (shortcut expansions pass only through
            already-contracted nodes, never through live *w*), and most
            remaining witnesses in these near-planar overlays are two
            edges long -- a handful of dict probes settles them far
            cheaper than a heap search.  Survivors are grouped by
            source for ``searched_cuts``.  ``din is None`` scans every
            pair (exact mode); otherwise only pairs touching an edge in
            ``din``/``dout`` are considered.  Pairs in ``skip`` are
            excluded (already-settled verdicts the caller vouches for).
            """
            ins_d = in_live[w]
            outs_d = out_live[w]
            rtol = 1.0 + _CH_WITNESS_RTOL
            exact = din is None
            pend = {}
            tgts = set()
            for a, cuw in ins_d.items():
                adirty = exact or a in din
                if not adirty and not dout:
                    continue
                direct = out_live[a]
                for b, cwb in outs_d.items():
                    if b == a or not (adirty or b in dout):
                        continue
                    if skip and (a, b) in skip:
                        continue
                    through = cuw + cwb
                    cap = through * rtol
                    dbc = direct.get(b)
                    if dbc is not None and dbc <= cap:
                        continue  # the edge itself is a witness
                    hop2 = False
                    for x, cax in direct.items():
                        if x == w or x == b:
                            continue
                        cxb = out_live[x].get(b)
                        if cxb is not None and cax + cxb <= cap:
                            hop2 = True
                            break
                    if hop2:
                        continue
                    pend.setdefault(a, []).append((b, through))
                    tgts.add(b)
            return pend, tgts

        def searched_cuts(w, pend, tgts):
            """Witness searches for the pending pairs of *w*; returns
            the pairs with no witness (the cuts).  Searches run on the
            *smaller* grouping -- forward from each source over
            ``out_live``, or backward from each target over the reverse
            overlay -- with *w* detached so no path routes through it.
            """
            new_cuts = []
            if not pend:
                return new_cuts
            ins_d = in_live[w]
            outs_d = out_live[w]
            rtol = 1.0 + _CH_WITNESS_RTOL
            for a in ins_d:
                del out_live[a][w]
            for b in outs_d:
                del in_live[b][w]
            if len(pend) <= len(tgts):
                for a, pairs in pend.items():
                    ver = witness_distances(
                        out_live,
                        a,
                        [b for b, _ in pairs],
                        max(t for _, t in pairs),
                    )
                    for b, through in pairs:
                        if (
                            wstamp[b] == ver
                            and wdist[b] <= through * rtol
                        ):
                            continue  # a witness survives without w
                        new_cuts.append((a, b, through))
            else:
                back = {}
                for a, pairs in pend.items():
                    for b, through in pairs:
                        back.setdefault(b, []).append((a, through))
                for b, pairs in back.items():
                    ver = witness_distances(
                        in_live,
                        b,
                        [a for a, _ in pairs],
                        max(t for _, t in pairs),
                    )
                    for a, through in pairs:
                        if (
                            wstamp[a] == ver
                            and wdist[a] <= through * rtol
                        ):
                            continue
                        new_cuts.append((a, b, through))
            for a, cuw in ins_d.items():
                out_live[a][w] = cuw
            for b, cwb in outs_d.items():
                in_live[b][w] = cwb
            return new_cuts

        def estimate(w):
            """Estimated cut *count* for *w* -- heap ordering only.

            Runs no witness searches at all.  ``cached`` keeps verdicts
            from the last exact evaluation: its "cut" triples stay
            valid forever (contraction maps every new path to an
            equal-cost older one, so live distances only grow, and a
            pair's ``through`` improving marks it dirty), while pairs
            touching a dirty edge move into ``unver`` -- counted as
            provisional cuts until ``exact_cuts`` resolves them at
            contraction time.  A reused "witnessed" verdict (a pair
            absent from both) can go stale without any of the pair's
            own edges changing -- contracting some other node *x*
            destroys the witness path exactly when *x*'s replacement
            shortcut was suppressed by a witness through *w* itself --
            so cached verdicts order the heap but are never trusted
            for insertion; only cuts survive reuse, and only in
            ``exact_cuts``'s skip set.
            """
            ins_d = in_live[w]
            outs_d = out_live[w]
            din = dirty_in[w]
            dout = dirty_out[w]
            uv = unver[w]
            if din is None and dout is None and deleted[w] == eval_del[w]:
                return len(cached[w]) + (len(uv) if uv else 0)
            eval_del[w] = deleted[w]
            if not ins_d or not outs_d:
                dirty_in[w] = None
                dirty_out[w] = None
                cached[w] = []
                unver[w] = None
                return 0
            din = din or ()
            dout = dout or ()
            dirty_in[w] = None
            dirty_out[w] = None
            cached[w] = retained = [
                t
                for t in cached[w]
                if t[0] in ins_d
                and t[1] in outs_d
                and t[0] not in din
                and t[1] not in dout
            ]
            if uv:
                for a, b in list(uv):
                    if (
                        a not in ins_d
                        or b not in outs_d
                        or a in din
                        or b in dout
                    ):
                        del uv[(a, b)]
            if din or dout:
                pend, _ = scan_pairs(w, din, dout)
                if pend:
                    if uv is None:
                        uv = unver[w] = {}
                    for a, pairs in pend.items():
                        for b, through in pairs:
                            uv[(a, b)] = through
            return len(retained) + (len(uv) if uv else 0)

        def exact_cuts(w):
            """Current witnessed cuts of *w*, recomputed against the
            live overlay -- the only verdicts sound enough to insert as
            shortcuts (see ``estimate`` for why cached "witnessed"
            ones are not).  Cached *cut* verdicts, by contrast, never
            go stale -- contraction maps every new path to an equal-cost
            older one, so live distances (with or without *w*) only
            ever grow, and a pair's ``through`` improving marks it
            dirty -- so the cuts ``estimate`` just filtered to current
            membership are taken verbatim and only the remaining
            pairs are re-proven.  Skipping them drops exactly the most
            expensive searches: a no-witness search exhausts its whole
            cost ball before giving up.
            """
            if not in_live[w] or not out_live[w]:
                return []
            known = cached[w]
            pend, tgts = scan_pairs(
                w, None, (), {(a, b) for a, b, _ in known}
            )
            new_cuts = searched_cuts(w, pend, tgts)
            return known + new_cuts if new_cuts else known

        # Lazy-re-evaluation contraction loop: each popped node is
        # re-scored with the cheap incremental ``estimate`` and
        # contracted only while it still beats the heap's next
        # candidate -- at which point ``exact_cuts`` recomputes the
        # real shortcut set against the live overlay.  The initial
        # pass -- one exact witness evaluation per node on the pristine
        # overlay -- runs as one vectorised multi-lane sweep in the
        # kernel; counts and cut triples are exactly the scalar pass's
        # (see ``initial_cut_counts``), and seed the estimate cache.
        init_counts, (cw, cu, cv, ct) = initial_cut_counts(
            n,
            self.indptr,
            self.indices,
            self.costs,
            _CH_WITNESS_RTOL,
            return_cuts=True,
        )
        heap = [
            (c - len(in_live[w]) - len(out_live[w]), w)
            for w, c in enumerate(init_counts.tolist())
        ]
        heapify(heap)
        cached = [[] for _ in range(n)]  # node -> last exact cut verdicts
        for wi, ui, vi, ti in zip(
            cw.tolist(), cu.tolist(), cv.tolist(), ct.tolist()
        ):
            cached[wi].append((ui, vi, ti))
        unver = [None] * n  # node -> {(a, b): through} awaiting a verdict
        # Endpoints of edges added/improved since a node's last
        # evaluation -- the only pairs ``estimate`` must re-scan --
        # plus the neighbour-contraction count last seen, so a pop
        # with no changes at all returns its count untouched.
        dirty_in = [None] * n
        dirty_out = [None] * n
        eval_del = [0] * n
        aug = []  # every inserted shortcut, flat, for the final split
        next_rank = 0
        while heap:
            _, w = heappop(heap)
            if contracted[w]:
                continue
            degree = len(in_live[w]) + len(out_live[w])
            priority = estimate(w) - degree + deleted[w]
            if heap and priority > heap[0][0]:
                heappush(heap, (priority, w))
                continue
            cuts = exact_cuts(w)
            priority = len(cuts) - degree + deleted[w]
            if heap and priority > heap[0][0]:
                # The estimate was off; the exact verdicts are the
                # freshest estimate there is, so recycle them.
                cached[w] = cuts
                unver[w] = None
                dirty_in[w] = None
                dirty_out[w] = None
                eval_del[w] = deleted[w]
                heappush(heap, (priority, w))
                continue
            for u, v, cost in cuts:
                old = out_all[u].get(v)
                if old is None or cost < old[0]:
                    out_all[u][v] = (cost, w)
                    out_live[u][v] = cost
                    in_live[v][u] = cost
                    aug.append((u, v, cost, w))
                    du = dirty_out[u]
                    if du is None:
                        dirty_out[u] = {v}
                    else:
                        du.add(v)
                    dv = dirty_in[v]
                    if dv is None:
                        dirty_in[v] = {u}
                    else:
                        dv.add(u)
            contracted[w] = 1
            rank[w] = next_rank
            next_rank += 1
            for u in in_live[w]:
                del out_live[u][w]
                deleted[u] += 1
            for v in out_live[w]:
                del in_live[v][w]
                deleted[v] += 1
            out_live[w] = {}
            in_live[w] = {}

        # Split the augmented edge set by rank direction, vectorised:
        # originals plus every appended shortcut, deduplicated to the
        # cheapest per pair with earliest-insertion tie-breaking (the
        # same verdicts the ``out_all`` dicts keep), then one stable
        # sort per direction.  ``up`` rows are outgoing edges to
        # higher-ranked nodes (forward search); ``down`` rows are
        # *incoming* edges from higher-ranked nodes (backward search,
        # and the forward search's stall probe).
        if aug:
            su, sv, sc, sm = zip(*aug)
            au = np.concatenate([eu, np.asarray(su, dtype=np.int64)])
            av = np.concatenate([ev, np.asarray(sv, dtype=np.int64)])
            ac = np.concatenate([ec, np.asarray(sc, dtype=np.float64)])
            am = np.concatenate(
                [
                    np.full(eu.size, -1, dtype=np.int32),
                    np.asarray(sm, dtype=np.int32),
                ]
            )
        else:
            au, av, ac = eu, ev, ec
            am = np.full(eu.size, -1, dtype=np.int32)
        akey = au * n + av
        aorder = np.lexsort((ac, akey))
        akey = akey[aorder]
        akeep = np.ones(akey.size, dtype=bool)
        akeep[1:] = akey[1:] != akey[:-1]
        sel = aorder[akeep]  # sorted by (u, v), cheapest per pair
        au, av, ac, am = au[sel], av[sel], ac[sel], am[sel]
        rank64 = rank.astype(np.int64)
        up_mask = rank64[av] > rank64[au]
        self.ch_rank = rank
        self.ch_up_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(au[up_mask], minlength=n), out=self.ch_up_indptr[1:]
        )
        self.ch_up_indices = av[up_mask].astype(np.int32)
        self.ch_up_costs = ac[up_mask]
        self.ch_up_middle = am[up_mask]
        down = ~up_mask
        dorder = np.argsort(av[down] * n + au[down])  # rows by v, then u
        self.ch_down_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(av[down], minlength=n), out=self.ch_down_indptr[1:]
        )
        self.ch_down_indices = au[down][dorder].astype(np.int32)
        self.ch_down_costs = ac[down][dorder]
        self.ch_down_middle = am[down][dorder]
        self._ch_up_lists = None
        self._ch_down_lists = None
        self._ch_middle_map = None
        self._ch_kernel_table = None

    def set_ch(
        self,
        rank,
        up_indptr,
        up_indices,
        up_costs,
        up_middle,
        down_indptr,
        down_indices,
        down_costs,
        down_middle,
    ):
        """Install precomputed hierarchy arrays (model load path)."""
        rank = np.asarray(rank, dtype=np.int32)
        n = self.num_nodes
        if rank.shape != (n,):
            raise ValueError(f"ch_rank must be shaped ({n},), got {rank.shape}")
        up = _check_ch_csr("ch_up", n, up_indptr, up_indices, up_costs, up_middle)
        down = _check_ch_csr(
            "ch_down", n, down_indptr, down_indices, down_costs, down_middle
        )
        self.ch_rank = rank
        (
            self.ch_up_indptr,
            self.ch_up_indices,
            self.ch_up_costs,
            self.ch_up_middle,
        ) = up
        (
            self.ch_down_indptr,
            self.ch_down_indices,
            self.ch_down_costs,
            self.ch_down_middle,
        ) = down
        self._ch_up_lists = None
        self._ch_down_lists = None
        self._ch_middle_map = None
        self._ch_kernel_table = None
        return self

    def _ch_up(self):
        """Hot-loop mirror of the upward CSR (lazy, cached)."""
        rows = self._ch_up_lists
        if rows is None:
            with self._lock:
                rows = self._ch_up_lists
                if rows is None:
                    rows = self._neighbour_tuples(
                        self.ch_up_indptr, self.ch_up_indices, self.ch_up_costs
                    )
                    self._ch_up_lists = rows
        return rows

    def _ch_down(self):
        """Hot-loop mirror of the downward CSR (lazy, cached)."""
        rows = self._ch_down_lists
        if rows is None:
            with self._lock:
                rows = self._ch_down_lists
                if rows is None:
                    rows = self._neighbour_tuples(
                        self.ch_down_indptr, self.ch_down_indices, self.ch_down_costs
                    )
                    self._ch_down_lists = rows
        return rows

    def _ch_middles(self):
        """``(u, v) -> middle node`` over the augmented edge set (lazy).

        Each augmented edge lives in exactly one of the two CSRs (by
        rank direction), so the union is collision-free.
        """
        middles = self._ch_middle_map
        if middles is None:
            with self._lock:
                middles = self._ch_middle_map
                if middles is None:
                    middles = {}
                    indptr = self.ch_up_indptr.tolist()
                    indices = self.ch_up_indices.tolist()
                    mids = self.ch_up_middle.tolist()
                    for u in range(len(indptr) - 1):
                        for e in range(indptr[u], indptr[u + 1]):
                            middles[(u, indices[e])] = mids[e]
                    indptr = self.ch_down_indptr.tolist()
                    indices = self.ch_down_indices.tolist()
                    mids = self.ch_down_middle.tolist()
                    for u in range(len(indptr) - 1):
                        for e in range(indptr[u], indptr[u + 1]):
                            # down row u holds edges indices[e] -> u.
                            middles[(indices[e], u)] = mids[e]
                    self._ch_middle_map = middles
        return middles

    def _ch_query(self, si, di):
        """Bidirectional upward Dijkstra with stall-on-demand.

        Both searches only relax edges toward higher-ranked nodes (the
        forward one over ``ch_up``, the backward one over ``ch_down``),
        so search spaces are tiny cones under the hierarchy's hubs.  A
        settled node is *stalled* -- counted out of ``expanded`` and not
        relaxed -- when a higher-ranked neighbour already proves its
        label suboptimal in the full graph.  ``mu`` tracks the best
        meeting cost over nodes labelled from both sides; a side stops
        once its queue minimum reaches ``mu`` (labels only grow upward,
        so nothing cheaper can appear), which keeps the stop exact.
        """
        up = self._ch_up()
        down = self._ch_down()
        df = {si: 0.0}
        db = {di: 0.0}
        pf = {si: -1}
        pb = {di: -1}
        donef = set()
        doneb = set()
        heapf = [(0.0, si)]
        heapb = [(0.0, di)]
        mu = _INF
        meet = -1
        expanded = 0
        while True:
            fgo = bool(heapf) and heapf[0][0] < mu
            bgo = bool(heapb) and heapb[0][0] < mu
            if not fgo and not bgo:
                break
            if fgo and (not bgo or heapf[0][0] <= heapb[0][0]):
                d, u = heappop(heapf)
                if u in donef:
                    continue
                donef.add(u)
                stalled = False
                for v, w in down[u]:  # incoming edges from higher ranks
                    dv = df.get(v)
                    if dv is not None and dv + w < d:
                        stalled = True
                        break
                if not stalled:
                    expanded += 1
                    for v, w in up[u]:
                        nd = d + w
                        if nd < df.get(v, _INF):
                            df[v] = nd
                            pf[v] = u
                            heappush(heapf, (nd, v))
                            dbv = db.get(v)
                            if dbv is not None and nd + dbv < mu:
                                mu = nd + dbv
                                meet = v
                dbu = db.get(u)
                if dbu is not None and d + dbu < mu:
                    mu = d + dbu
                    meet = u
            else:
                d, u = heappop(heapb)
                if u in doneb:
                    continue
                doneb.add(u)
                stalled = False
                for v, w in up[u]:  # outgoing edges to higher ranks
                    dv = db.get(v)
                    if dv is not None and dv + w < d:
                        stalled = True
                        break
                if not stalled:
                    expanded += 1
                    for v, w in down[u]:
                        nd = d + w
                        if nd < db.get(v, _INF):
                            db[v] = nd
                            pb[v] = u
                            heappush(heapb, (nd, v))
                            dfv = df.get(v)
                            if dfv is not None and dfv + nd < mu:
                                mu = dfv + nd
                                meet = v
                dfu = df.get(u)
                if dfu is not None and dfu + d < mu:
                    mu = dfu + d
                    meet = u
        if meet < 0:
            return None
        # Augmented up-down path: forward parents back to si, backward
        # parents forward to di, then recursive shortcut unpacking.
        chain = []
        u = meet
        while u != -1:
            chain.append(u)
            u = pf[u]
        chain.reverse()
        u = pb[meet]
        while u != -1:
            chain.append(u)
            u = pb[u]
        middles = self._ch_middles()
        path = [chain[0]]
        for a, b in zip(chain, chain[1:]):
            _ch_unpack(a, b, middles, path)
        return path, mu, expanded

    # -- batch kernel ------------------------------------------------------

    def find_paths_batch(self, pairs, method="ch"):
        """Answer many ``(src, dst)`` cell-id queries in one call.

        With the default ``"ch"`` method every non-degenerate pair runs
        through the vectorised batch kernel
        (:func:`repro.core.kernel.solve_batch`): one NumPy frontier
        sweep answers the whole batch instead of one Python heap loop
        per query, with costs bit-equal to scalar CH.  Batches smaller
        than :data:`KERNEL_CROSSOVER_LANES` fall back to the scalar CH
        query per pair, which wins below the sweep's fixed cost (same
        costs and paths; ``expanded`` counts settled nodes, as for any
        scalar query).  Other methods
        fall back to :meth:`find_path` per pair -- the scalar oracle
        the property suite compares against.  Degenerate pairs
        (missing endpoints, ``src == dst``, provably unreachable) are
        short-circuited before any kernel work, exactly like
        :meth:`find_path`.

        Returns a list aligned with *pairs* of :class:`SearchResult`
        (``expanded`` counts labelled nodes across both sweep
        directions, the batch analogue of settled nodes) or ``None``.
        """
        if method not in SEARCH_METHODS:
            raise ValueError(
                f"unknown search method {method!r}; expected one of {SEARCH_METHODS}"
            )
        pairs = list(pairs)
        KERNEL_BATCH_SIZE.observe(len(pairs))
        started = perf_counter()
        results = [None] * len(pairs)
        lanes = []  # (batch position, src node, dst node) for the kernel
        for i, (src, dst) in enumerate(pairs):
            si = self.node_index(src)
            di = self.node_index(dst)
            if si < 0 or di < 0:
                continue
            if si == di:
                cell = int(self.cells[si])
                results[i] = SearchResult((cell,), 0.0, 0, method, (si,))
                continue
            if self._degenerate_unreachable(si, di):
                continue
            if method == "ch":
                lanes.append((i, si, di))
            else:
                results[i] = self.find_path(src, dst, method)
        if lanes and len(lanes) < KERNEL_CROSSOVER_LANES:
            # Too few lanes for the sweep's fixed cost to amortise: the
            # scalar CH query wins below the crossover, at bit-equal
            # costs (it observes its own search metrics).
            for i, _, _ in lanes:
                results[i] = self.find_path(pairs[i][0], pairs[i][1], "ch")
        elif lanes:
            self.ensure_ch()
            kernel_started = perf_counter()
            paths, costs, expanded = solve_batch(
                self._ch_kernel_tables(),
                np.asarray([si for _, si, _ in lanes], dtype=np.int64),
                np.asarray([di for _, _, di in lanes], dtype=np.int64),
            )
            # Each lane is one search: feed the scalar per-query series
            # too (an equal share of the sweep), so dashboards keep
            # counting searches when serving goes batch-native.
            share = (perf_counter() - kernel_started) / len(lanes)
            for (i, _, _), path, cost, exp in zip(lanes, paths, costs, expanded):
                _SEARCH_SECONDS.observe(share, ("ch",))
                if path is None:
                    continue
                _SEARCH_EXPANDED.observe(int(exp), ("ch",))
                cells = tuple(self.cells[path].tolist())
                results[i] = SearchResult(
                    cells, float(cost), int(exp), "ch", tuple(path)
                )
        KERNEL_SECONDS.observe(perf_counter() - started)
        return results

    def _ch_kernel_tables(self):
        """Preprocessed batch-kernel tables for this hierarchy (lazy).

        Builds the sorted augmented-edge table -- flat ``u * n + v``
        keys paired with middle nodes (-1 = original edge); every
        augmented edge lives in exactly one of the two CSRs, so keys
        are unique -- and hands it plus the raw CSRs to
        :func:`repro.core.kernel.build_kernel_tables`, which derives
        the combined sweep CSRs and precomputed shortcut expansions.
        Cached until the hierarchy changes.
        """
        table = self._ch_kernel_table
        if table is None:
            with self._lock:
                table = self._ch_kernel_table
                if table is None:
                    n = self.num_nodes
                    up_src = np.repeat(
                        np.arange(n, dtype=np.int64), np.diff(self.ch_up_indptr)
                    )
                    # Down row v holds incoming edges u -> v.
                    down_dst = np.repeat(
                        np.arange(n, dtype=np.int64), np.diff(self.ch_down_indptr)
                    )
                    keys = np.concatenate(
                        [
                            up_src * n + self.ch_up_indices,
                            self.ch_down_indices.astype(np.int64) * n + down_dst,
                        ]
                    )
                    vals = np.concatenate(
                        [self.ch_up_middle, self.ch_down_middle]
                    ).astype(np.int32)
                    order = np.argsort(keys, kind="stable")
                    table = build_kernel_tables(
                        n,
                        (self.ch_up_indptr, self.ch_up_indices, self.ch_up_costs),
                        (
                            self.ch_down_indptr,
                            self.ch_down_indices,
                            self.ch_down_costs,
                        ),
                        keys[order],
                        vals[order],
                    )
                    self._ch_kernel_table = table
        return table


# -- CH module helpers -----------------------------------------------------


def _flatten_ch_rows(rows):
    """Pack per-node ``(neighbour, cost, middle)`` rows into CSR arrays.

    Rows are sorted by neighbour index so the layout is deterministic --
    rebuilding the hierarchy from the same graph reproduces the persisted
    arrays bit-exactly (the persistence-matrix tests rely on it).
    """
    n = len(rows)
    indptr = np.zeros(n + 1, dtype=np.int64)
    total = sum(len(row) for row in rows)
    indices = np.empty(total, dtype=np.int32)
    costs = np.empty(total, dtype=np.float64)
    middle = np.empty(total, dtype=np.int32)
    pos = 0
    for u, row in enumerate(rows):
        row.sort()
        for v, cost, mid in row:
            indices[pos] = v
            costs[pos] = cost
            middle[pos] = mid
            pos += 1
        indptr[u + 1] = pos
    return indptr, indices, costs, middle


def _check_ch_csr(name, num_nodes, indptr, indices, costs, middle):
    """Validate one direction's CH CSR arrays (the ``set_ch`` load path)."""
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int32)
    costs = np.asarray(costs, dtype=np.float64)
    middle = np.asarray(middle, dtype=np.int32)
    if indptr.shape != (num_nodes + 1,):
        raise ValueError(
            f"{name}_indptr must be shaped ({num_nodes + 1},), got {indptr.shape}"
        )
    edges = int(indptr[-1]) if len(indptr) else 0
    if not (len(indices) == len(costs) == len(middle) == edges):
        raise ValueError(
            f"{name} arrays must all hold {edges} edges, got "
            f"{len(indices)} / {len(costs)} / {len(middle)}"
        )
    return indptr, indices, costs, middle


def _ch_unpack(a, b, middles, out):
    """Expand one augmented edge ``a -> b`` into original nodes.

    Iterative in-order traversal of the shortcut tree (middle-node
    back-pointers), appending every node after ``a`` to *out* --
    recursion depth would otherwise track shortcut nesting, which is
    unbounded in adversarial graphs.
    """
    stack = [(a, b)]
    while stack:
        u, v = stack.pop()
        m = middles.get((u, v), -1)
        if m < 0:
            out.append(v)
        else:
            # Right half pushed first so the left half unpacks first.
            stack.append((m, v))
            stack.append((u, m))
