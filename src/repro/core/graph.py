"""The learned cell-transition graph and its A* search.

Nodes are hex cells with observed support; edges are observed directed
cell transitions.  Edge costs are denominated in *grid steps* and are
always >= the hex grid distance they span, which makes the grid-distance
heuristic exactly admissible (and consistent): A* with the heuristic
returns the same cost as plain Dijkstra, just expanding fewer nodes --
the property the A* ablation checks.

Two weight schemes are supported:

- ``"transitions"`` (paper): cost ~ grid span, with a vanishing bonus for
  frequently observed transitions (ties break toward habit).
- ``"inverse_frequency"``: popular edges are up to 2x cheaper per step,
  steering paths onto dominant lanes.
"""

import heapq

import numpy as np

from repro.hexgrid import (
    cell_to_latlng_array,
    grid_distance,
    grid_distance_array,
    ring,
)

__all__ = ["CellGraph"]


def _edge_costs(grid_spans, counts, scheme):
    spans = np.maximum(grid_spans.astype(np.float64), 1.0)
    counts = counts.astype(np.float64)
    if scheme == "transitions":
        return spans * (1.0 + 1.0 / (1.0 + counts))
    if scheme == "inverse_frequency":
        top = max(float(counts.max()), 1.0) if len(counts) else 1.0
        return spans * (2.0 - counts / top)
    raise ValueError(f"unknown edge weight scheme {scheme!r}")


class CellGraph:
    """Directed graph over hex cells with metricised transition costs."""

    def __init__(self, cells, lats, lngs, edge_src, edge_dst, edge_cost, edge_count):
        self.cells = np.asarray(cells, dtype=np.int64)
        self.lats = np.asarray(lats, dtype=np.float64)
        self.lngs = np.asarray(lngs, dtype=np.float64)
        self.edge_src = np.asarray(edge_src, dtype=np.int64)
        self.edge_dst = np.asarray(edge_dst, dtype=np.int64)
        self.edge_cost = np.asarray(edge_cost, dtype=np.float64)
        self.edge_count = np.asarray(edge_count, dtype=np.int64)
        #: cell id -> (lat, lng) of the node's projected position.
        self.node_attrs = {
            int(c): (float(la), float(ln))
            for c, la, ln in zip(self.cells, self.lats, self.lngs)
        }
        #: cell id -> list of (neighbour cell, cost, transition count).
        self.adjacency = {}
        for s, d, c, k in zip(
            self.edge_src, self.edge_dst, self.edge_cost, self.edge_count
        ):
            self.adjacency.setdefault(int(s), []).append((int(d), float(c), int(k)))

    @classmethod
    def from_statistics(cls, cell_stats, transition_stats, projection, edge_weight):
        """Build a graph from :func:`repro.core.statistics.compute_statistics`.

        *projection* places each node at the cell centre (``"center"``) or
        at the median of its observed positions (``"median"``).
        """
        cells = np.asarray(cell_stats.column("cell"), dtype=np.int64)
        if projection == "center":
            lats, lngs = cell_to_latlng_array(cells)
        elif projection == "median":
            lats = np.asarray(cell_stats.column("median_lat"), dtype=np.float64)
            lngs = np.asarray(cell_stats.column("median_lon"), dtype=np.float64)
        else:
            raise ValueError(f"unknown projection {projection!r}")
        src = np.asarray(transition_stats.column("cell"), dtype=np.int64)
        dst = np.asarray(transition_stats.column("next_cell"), dtype=np.int64)
        counts = np.asarray(transition_stats.column("transitions"), dtype=np.int64)
        spans = (
            grid_distance_array(src, dst) if len(src) else np.zeros(0, dtype=np.int64)
        )
        costs = _edge_costs(spans, counts, edge_weight)
        return cls(cells, lats, lngs, src, dst, costs, counts)

    @property
    def num_nodes(self):
        """Number of cells with observed support."""
        return len(self.cells)

    @property
    def num_edges(self):
        """Number of directed transitions."""
        return len(self.edge_src)

    def storage_size_bytes(self):
        """Bytes of the flat arrays that fully describe the graph."""
        return int(
            self.cells.nbytes
            + self.lats.nbytes
            + self.lngs.nbytes
            + self.edge_src.nbytes
            + self.edge_dst.nbytes
            + self.edge_cost.nbytes
            + self.edge_count.nbytes
        )

    def nearest_node(self, cell, max_ring=8):
        """Snap a cell to the nearest graph node.

        Expands hex rings outwards (cheap, local) and falls back to a
        vectorised full scan over all nodes when the rings miss.  Returns
        ``None`` only for an empty graph.
        """
        if self.num_nodes == 0:
            return None
        attrs = self.node_attrs
        cell = int(cell)
        if cell in attrs:
            return cell
        for k in range(1, max_ring + 1):
            hits = [c for c in ring(cell, k) if c in attrs]
            if hits:
                return hits[0]
        distances = grid_distance_array(
            self.cells, np.full_like(self.cells, cell)
        )
        return int(self.cells[int(np.argmin(distances))])

    def astar(self, src, dst, use_heuristic=True):
        """Cheapest path of cell ids from *src* to *dst*, or ``None``.

        With *use_heuristic* the hex grid distance to *dst* guides the
        search; without it this is Dijkstra.  Both return equal-cost paths
        because the heuristic is admissible and consistent.
        """
        src = int(src)
        dst = int(dst)
        if src not in self.node_attrs or dst not in self.node_attrs:
            return None
        if src == dst:
            return [src]
        adjacency = self.adjacency
        h0 = grid_distance(src, dst) if use_heuristic else 0
        frontier = [(float(h0), src)]
        g_score = {src: 0.0}
        came_from = {}
        closed = set()
        while frontier:
            _, node = heapq.heappop(frontier)
            if node == dst:
                path = [node]
                while node in came_from:
                    node = came_from[node]
                    path.append(node)
                path.reverse()
                return path
            if node in closed:
                continue
            closed.add(node)
            g_node = g_score[node]
            for neighbour, cost, _count in adjacency.get(node, ()):
                if neighbour in closed:
                    continue
                tentative = g_node + cost
                if tentative < g_score.get(neighbour, np.inf):
                    g_score[neighbour] = tentative
                    came_from[neighbour] = node
                    h = grid_distance(neighbour, dst) if use_heuristic else 0
                    heapq.heappush(frontier, (tentative + h, neighbour))
        return None
