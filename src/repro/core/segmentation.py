"""Trip segmentation: split vessel streams at temporal/spatial breaks.

A *trip* is a maximal run of one vessel's reports with no time gap longer
than ``max_gap_s`` and no positional jump longer than ``max_jump_m``.
Segmentation is fully vectorised: sort by (vessel, time), mark break rows,
and take the cumulative sum of breaks as the trip id.

Two shapes are provided:

- :func:`segment_trips` -- one-shot over a whole table.
- :class:`StreamingSegmenter` -- incremental over chunked feeds
  (e.g. :func:`repro.ais.read_csv_chunks`): each :meth:`~StreamingSegmenter.push`
  emits the trips that *closed* within the data seen so far and carries
  every vessel's still-open trip across the chunk boundary, so a trip
  spanning two chunks segments exactly as it would in one pass.
"""

import numpy as np

from repro.ais import schema
from repro.geo.proj import M_PER_DEG

__all__ = ["StreamingSegmenter", "segment_trips", "segment_trips_stream"]


def _break_mask(vessel, t, lat, lon, max_gap_s, max_jump_m):
    """Trip-break flags for rows already sorted by (vessel, time)."""
    n = len(t)
    breaks = np.zeros(n, dtype=bool)
    if n == 0:
        return breaks
    breaks[0] = True
    new_vessel = vessel[1:] != vessel[:-1]
    dt = t[1:] - t[:-1]
    dy = (lat[1:] - lat[:-1]) * M_PER_DEG
    dx = (lon[1:] - lon[:-1]) * M_PER_DEG * np.cos(np.radians(lat[:-1]))
    jump = np.hypot(dx, dy)
    breaks[1:] = new_vessel | (dt > max_gap_s) | (jump > max_jump_m)
    return breaks


def segment_trips(table, max_gap_s=1800.0, max_jump_m=5000.0, min_points=2):
    """Assign a ``trip_id`` column, dropping trips shorter than *min_points*.

    Input order does not matter (rows are sorted by vessel and timestamp
    first); an empty table yields an empty table with the trip column.
    Trip ids are dense int64 values, globally unique across vessels.
    """
    if table.num_rows == 0:
        return table.with_columns(**{schema.TRIP_ID: np.zeros(0, dtype=np.int64)})
    ordered = table.sort_by(schema.VESSEL_ID, schema.T)
    breaks = _break_mask(
        ordered.column(schema.VESSEL_ID),
        np.asarray(ordered.column(schema.T), dtype=np.float64),
        np.asarray(ordered.column(schema.LAT), dtype=np.float64),
        np.asarray(ordered.column(schema.LON), dtype=np.float64),
        max_gap_s,
        max_jump_m,
    )
    trip_ids = np.cumsum(breaks) - 1
    segmented = ordered.with_columns(**{schema.TRIP_ID: trip_ids.astype(np.int64)})
    if min_points > 1:
        counts = np.bincount(trip_ids)
        segmented = segmented.filter(counts[trip_ids] >= min_points)
    return segmented


class StreamingSegmenter:
    """Incremental :func:`segment_trips` over a chunked, time-ordered feed.

    Chunks may interleave vessels and be unsorted internally, but each
    vessel's reports must not regress behind its *segmentation barrier* --
    the start of its open trip (after :meth:`flush`, the last closed
    report plus ``max_gap_s``).  A report behind the barrier could
    retroactively join or reshape an already-closed trip, so it raises
    ``ValueError`` instead of silently diverging from the one-shot pass.
    Memory is bounded by the open trips held across chunk boundaries,
    never by archive size.

    Trip ids are dense and unique within one segmenter but are numbered
    in trip *completion* order, which generally differs from the
    (vessel, time) numbering of the one-shot path; the trips' row
    contents are identical.

    *buffer_budget* bounds the open-trip buffer to at most that many
    rows **per vessel**: after each push, any longer open trip is
    compressed to the budget with
    :func:`repro.geo.compress_to_budget` (SED-ranked row dropping, time
    as the sync parameter; a vessel's first and last buffered reports
    always survive).  Memory then stays O(budget) per vessel no matter
    how long a vessel keeps transmitting, at the cost of exact
    equivalence with the one-shot pass: compressed trips keep their
    shape but lose interior fixes, and a dropped row can widen a
    gap/jump past the break thresholds, closing the older part of the
    trip early.  Barriers are unaffected (the open trip's start row is
    always kept).
    """

    def __init__(
        self, max_gap_s=1800.0, max_jump_m=5000.0, min_points=2, buffer_budget=None
    ):
        if buffer_budget is not None:
            if isinstance(buffer_budget, bool) or not isinstance(buffer_budget, int):
                raise TypeError(
                    f"buffer_budget must be an int or None, got {buffer_budget!r}"
                )
            if buffer_budget < 2:
                raise ValueError(f"buffer_budget must be >= 2, got {buffer_budget}")
        self.max_gap_s = float(max_gap_s)
        self.max_jump_m = float(max_jump_m)
        self.min_points = int(min_points)
        self.buffer_budget = buffer_budget
        self._tail = None  # open-trip rows, sorted by (vessel, t)
        self._barrier = {}  # vessel id -> earliest admissible report time
        self._next_trip_id = 0

    @property
    def open_rows(self):
        """Rows currently buffered in open trips."""
        return 0 if self._tail is None else self._tail.num_rows

    def push(self, table):
        """Absorb a chunk; returns the trips that closed, with ``trip_id``."""
        if table.num_rows == 0 and self._tail is None:
            return table.with_columns(**{schema.TRIP_ID: np.zeros(0, dtype=np.int64)})
        from repro.minidb import Table

        combined = table if self._tail is None else Table.concat([self._tail, table])
        combined = combined.sort_by(schema.VESSEL_ID, schema.T)
        vessel = combined.column(schema.VESSEL_ID)
        t = np.asarray(combined.column(schema.T), dtype=np.float64)
        self._check_monotone(table)

        breaks = _break_mask(
            vessel,
            t,
            np.asarray(combined.column(schema.LAT), dtype=np.float64),
            np.asarray(combined.column(schema.LON), dtype=np.float64),
            self.max_gap_s,
            self.max_jump_m,
        )
        local_ids = np.cumsum(breaks) - 1
        # Each vessel's chronologically last trip stays open: broadcast the
        # id found at every vessel run's end back over the run.
        n = combined.num_rows
        run_end = np.ones(n, dtype=bool)
        run_end[:-1] = vessel[:-1] != vessel[1:]
        run_lengths = np.diff(np.concatenate(([-1], np.flatnonzero(run_end))))
        open_ids = np.repeat(local_ids[run_end], run_lengths)
        open_mask = local_ids == open_ids

        self._tail = combined.filter(open_mask)
        closed = combined.filter(~open_mask)
        if closed.num_rows:
            # Vessels that closed a trip get their barrier raised to the
            # open trip's start (the sealed break point).  This covers
            # trips min_points later drops too -- a late report
            # overlapping a dropped short trip must still be refused.
            # Vessels whose trip is still fully open keep their barrier:
            # out-of-order arrivals within an open trip are legal.
            closed_vessels = np.unique(np.asarray(closed.column(schema.VESSEL_ID)))
            sealed = self._tail.filter(
                np.isin(np.asarray(self._tail.column(schema.VESSEL_ID)), closed_vessels)
            )
            self._raise_barriers(sealed, 0.0)
        self._compact_tail()
        return self._emit(closed, local_ids[~open_mask])

    def flush(self):
        """Close and emit every buffered trip; the segmenter resets to empty."""
        tail = self._tail
        self._tail = None
        if tail is None:
            return self._empty_trips()
        if tail.num_rows == 0:
            return tail.with_columns(**{schema.TRIP_ID: np.zeros(0, dtype=np.int64)})
        vessel = tail.column(schema.VESSEL_ID)
        breaks = np.ones(tail.num_rows, dtype=bool)
        breaks[1:] = vessel[1:] != vessel[:-1]
        # Tail rows were kept as one open trip per vessel, so vessel runs
        # are exactly the remaining trips.
        local_ids = np.cumsum(breaks) - 1
        # Everything is closed now: nothing within linking range of a
        # flushed trip's last report may arrive later.
        self._raise_barriers(tail, self.max_gap_s, newest=True)
        return self._emit(tail, local_ids)

    # -- internals ---------------------------------------------------------

    def _compact_tail(self):
        """Compress each vessel's open trip down to ``buffer_budget`` rows."""
        budget = self.buffer_budget
        tail = self._tail
        if budget is None or tail is None or tail.num_rows <= budget:
            return
        from repro.geo.budget import compress_to_budget

        vessel = np.asarray(tail.column(schema.VESSEL_ID))
        n = len(vessel)
        run_end = np.ones(n, dtype=bool)
        run_end[:-1] = vessel[:-1] != vessel[1:]
        bounds = np.concatenate(([0], np.flatnonzero(run_end) + 1))
        lat = np.asarray(tail.column(schema.LAT), dtype=np.float64)
        lon = np.asarray(tail.column(schema.LON), dtype=np.float64)
        t = np.asarray(tail.column(schema.T), dtype=np.float64)
        keep = np.ones(n, dtype=bool)
        changed = False
        for s, e in zip(bounds[:-1], bounds[1:]):
            if e - s <= budget:
                continue
            # Same local equirectangular scaling _break_mask uses.
            x = (lon[s:e] - lon[s]) * M_PER_DEG * np.cos(np.radians(lat[s]))
            y = (lat[s:e] - lat[s]) * M_PER_DEG
            res = compress_to_budget(x, y, budget, t=t[s:e])
            keep[s:e] = False
            keep[s + res.indices] = True
            changed = True
        if changed:
            self._tail = tail.filter(keep)

    def _empty_trips(self):
        from repro.minidb import Table

        columns = {name: np.zeros(0) for name in schema.RAW_COLUMNS}
        columns[schema.VESSEL_ID] = np.zeros(0, dtype=np.int64)
        columns[schema.TRIP_ID] = np.zeros(0, dtype=np.int64)
        return Table(columns)

    def _check_monotone(self, chunk):
        if chunk.num_rows == 0 or not self._barrier:
            return
        # One sort gives every vessel's earliest report; the loop below
        # only does dict lookups, never per-vessel scans of the chunk.
        for v, earliest in self._per_vessel(chunk, newest=False):
            barrier = self._barrier.get(v)
            if barrier is not None and earliest < barrier:
                raise ValueError(
                    f"vessel {v!r}: chunk contains a report behind the "
                    "vessel's already-closed trips; streamed chunks must "
                    "be time-ordered per vessel"
                )

    def _raise_barriers(self, table, margin, newest=False):
        """Forbid future reports before each vessel's open-trip start
        (*newest=False*) or within *margin* of its last report."""
        for v, bound in self._per_vessel(table, newest):
            self._barrier[v] = max(self._barrier.get(v, -np.inf), bound + margin)

    @staticmethod
    def _per_vessel(table, newest):
        """Yield ``(vessel, earliest-or-newest timestamp)`` per vessel."""
        vessel = np.asarray(table.column(schema.VESSEL_ID))
        t = np.asarray(table.column(schema.T), dtype=np.float64)
        order = np.lexsort((t, vessel))
        sv, st = vessel[order], t[order]
        pick = np.ones(len(order), dtype=bool)
        if newest:
            pick[:-1] = sv[:-1] != sv[1:]
        else:
            pick[1:] = sv[1:] != sv[:-1]
        integral = np.issubdtype(vessel.dtype, np.integer)
        for v, bound in zip(sv[pick], st[pick]):
            yield (int(v) if integral else v), float(bound)

    def _emit(self, closed, local_ids):
        """Re-number closed trips with global ids and apply min_points."""
        if closed.num_rows == 0:
            return closed.with_columns(**{schema.TRIP_ID: np.zeros(0, dtype=np.int64)})
        _, first_rows, dense = np.unique(local_ids, return_index=True, return_inverse=True)
        counts = np.bincount(dense)
        keep = counts[dense] >= self.min_points
        # Dense global numbering in (vessel, time) order of the kept trips.
        kept_ids = np.unique(dense[keep])
        remap = np.full(len(counts), -1, dtype=np.int64)
        remap[kept_ids] = self._next_trip_id + np.arange(len(kept_ids))
        self._next_trip_id += len(kept_ids)
        out = closed.filter(keep).with_columns(
            **{schema.TRIP_ID: remap[dense[keep]]}
        )
        return out

    def _note_emitted(self, emitted):
        vessel = np.asarray(emitted.column(schema.VESSEL_ID))
        t = np.asarray(emitted.column(schema.T), dtype=np.float64)
        order = np.lexsort((t, vessel))
        sv, st = vessel[order], t[order]
        run_end = np.ones(len(sv), dtype=bool)
        run_end[:-1] = sv[:-1] != sv[1:]
        integral = np.issubdtype(vessel.dtype, np.integer)
        for v, newest in zip(sv[run_end], st[run_end]):
            self._emitted_t[int(v) if integral else v] = float(newest)


def segment_trips_stream(chunks, max_gap_s=1800.0, max_jump_m=5000.0, min_points=2):
    """Generator over chunked raw tables yielding per-chunk closed trips.

    Equivalent to pushing every chunk through a
    :class:`StreamingSegmenter` and flushing at the end; empty emissions
    are skipped.
    """
    segmenter = StreamingSegmenter(max_gap_s, max_jump_m, min_points)
    for chunk in chunks:
        emitted = segmenter.push(chunk)
        if emitted.num_rows:
            yield emitted
    final = segmenter.flush()
    if final.num_rows:
        yield final
