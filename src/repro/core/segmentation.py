"""Trip segmentation: split vessel streams at temporal/spatial breaks.

A *trip* is a maximal run of one vessel's reports with no time gap longer
than ``max_gap_s`` and no positional jump longer than ``max_jump_m``.
Segmentation is fully vectorised: sort by (vessel, time), mark break rows,
and take the cumulative sum of breaks as the trip id.
"""

import numpy as np

from repro.ais import schema
from repro.geo.proj import M_PER_DEG

__all__ = ["segment_trips"]


def segment_trips(table, max_gap_s=1800.0, max_jump_m=5000.0, min_points=2):
    """Assign a ``trip_id`` column, dropping trips shorter than *min_points*.

    Input order does not matter (rows are sorted by vessel and timestamp
    first); an empty table yields an empty table with the trip column.
    Trip ids are dense int64 values, globally unique across vessels.
    """
    if table.num_rows == 0:
        return table.with_columns(**{schema.TRIP_ID: np.zeros(0, dtype=np.int64)})
    ordered = table.sort_by(schema.VESSEL_ID, schema.T)
    vessel = ordered.column(schema.VESSEL_ID)
    t = np.asarray(ordered.column(schema.T), dtype=np.float64)
    lat = np.asarray(ordered.column(schema.LAT), dtype=np.float64)
    lon = np.asarray(ordered.column(schema.LON), dtype=np.float64)

    n = ordered.num_rows
    breaks = np.zeros(n, dtype=bool)
    breaks[0] = True
    new_vessel = vessel[1:] != vessel[:-1]
    dt = t[1:] - t[:-1]
    dy = (lat[1:] - lat[:-1]) * M_PER_DEG
    dx = (lon[1:] - lon[:-1]) * M_PER_DEG * np.cos(np.radians(lat[:-1]))
    jump = np.hypot(dx, dy)
    breaks[1:] = new_vessel | (dt > max_gap_s) | (jump > max_jump_m)
    trip_ids = np.cumsum(breaks) - 1
    segmented = ordered.with_columns(**{schema.TRIP_ID: trip_ids.astype(np.int64)})
    if min_points > 1:
        counts = np.bincount(trip_ids)
        segmented = segmented.filter(counts[trip_ids] >= min_points)
    return segmented
