"""Per-cell and per-transition statistics (the paper's CTE stage).

:func:`compute_statistics` indexes every position into a hex cell at the
configured resolution, then produces two tables with one
:mod:`repro.minidb` pass each:

- **cell statistics**: support count, distinct vessels (HyperLogLog or
  exact, per ``config.approx_distinct``), and median position/speed/course
  -- the medians drive the "median" cell projection.
- **transition statistics**: directed cell pairs observed consecutively
  within a trip, with transition counts and distinct-vessel support --
  the graph's edge list.
"""

import numpy as np

from repro.ais import schema
from repro.hexgrid import latlng_to_cell_array
from repro.minidb import Table, agg

__all__ = ["CELL", "NEXT_CELL", "compute_statistics"]

#: Column name for the hex cell id.
CELL = "cell"

#: Column name for the following cell within a trip.
NEXT_CELL = "next_cell"

_NO_CELL = np.int64(-1)


def _distinct_agg(approx):
    spec = agg.approx_count_distinct if approx else agg.count_distinct
    return spec(schema.VESSEL_ID).alias("vessels")


def compute_statistics(trips, config):
    """Aggregate a segmented trip table into (cell_stats, transition_stats).

    *config* is a :class:`repro.core.habit.HabitConfig`; its ``resolution``
    picks the grid and ``approx_distinct`` picks the distinct-count kernel.
    """
    cells = latlng_to_cell_array(
        trips.column(schema.LAT), trips.column(schema.LON), config.resolution
    )
    indexed = trips.with_columns(**{CELL: cells})
    cell_stats = indexed.group_by(CELL).agg(
        agg.count(),
        _distinct_agg(config.approx_distinct),
        agg.median(schema.LAT).alias("median_lat"),
        agg.median(schema.LON).alias("median_lon"),
        agg.median(schema.SOG).alias("median_sog"),
        agg.median(schema.COG).alias("median_cog"),
    )

    nxt = indexed.lag(CELL, schema.TRIP_ID, schema.T, -1, _NO_CELL)
    moved = (nxt != _NO_CELL) & (nxt != cells)
    if not np.any(moved):
        transition_stats = Table(
            {
                CELL: np.zeros(0, dtype=np.int64),
                NEXT_CELL: np.zeros(0, dtype=np.int64),
                "transitions": np.zeros(0, dtype=np.int64),
                "vessels": np.zeros(0, dtype=np.int64),
            }
        )
        return cell_stats, transition_stats

    pairs = indexed.filter(moved).with_columns(**{NEXT_CELL: nxt[moved]})
    transition_stats = pairs.group_by(CELL, NEXT_CELL).agg(
        agg.count().alias("transitions"),
        _distinct_agg(config.approx_distinct),
    )
    return cell_stats, transition_stats


def cell_medians(cell_stats):
    """Convenience accessor: (cells, median_lats, median_lons) arrays."""
    return (
        cell_stats.column(CELL),
        cell_stats.column("median_lat"),
        cell_stats.column("median_lon"),
    )


def transition_arrays(transition_stats):
    """Convenience accessor: (src, dst, transitions, vessels) arrays."""
    return (
        transition_stats.column(CELL),
        transition_stats.column(NEXT_CELL),
        transition_stats.column("transitions"),
        transition_stats.column("vessels"),
    )
