"""Per-cell and per-transition statistics (the paper's CTE stage).

The fit aggregation is a **partial-aggregate → merge** pipeline:
:func:`partial_statistics` summarises one shard or streamed chunk of
segmented trips into a mergeable :class:`StatisticsState`, and
:func:`merge_statistics` combines any number of states into the two
tables the cell graph is built from:

- **cell statistics**: support count, distinct vessels (HyperLogLog or
  exact, per ``config.approx_distinct``), and median position/speed/course
  -- the medians drive the "median" cell projection.
- **transition statistics**: directed cell pairs observed consecutively
  within a trip, with transition counts and distinct-vessel support --
  the graph's edge list.

:func:`compute_statistics` (the original one-shot entry point) is a thin
wrapper: one partial state, finalised immediately.  Equivalence between
the two paths is pinned by tests: counts, transitions and HLL distinct
estimates are **exactly** equal however the trips were sharded or
streamed; medians are mergeable t-digest estimates within the tolerance
documented in :mod:`repro.minidb.tdigest`.

Shard/chunk contract: a shard must contain **whole trips** -- transitions
are extracted within each chunk, so splitting one trip across two states
would drop the boundary transition.  :func:`repro.core.parallel.shard_trips`
and :class:`repro.core.segmentation.StreamingSegmenter` both honour this.
"""

from dataclasses import dataclass

import numpy as np

from repro.ais import schema
from repro.hexgrid import latlng_to_cell_array
from repro.minidb import agg, merge_states
from repro.minidb.partial import GroupState

__all__ = [
    "CELL",
    "NEXT_CELL",
    "StatisticsState",
    "compute_statistics",
    "merge_statistics",
    "partial_statistics",
]

#: Column name for the hex cell id.
CELL = "cell"

#: Column name for the following cell within a trip.
NEXT_CELL = "next_cell"

_NO_CELL = np.int64(-1)


def _distinct_agg(approx):
    spec = agg.approx_count_distinct if approx else agg.count_distinct
    return spec(schema.VESSEL_ID).alias("vessels")


def _index_cells(trips, config):
    """Index every position into a hex cell, rejecting invalid coordinates.

    Non-finite or out-of-range lat/lon cannot be packed into a cell id --
    they would silently corrupt ``cell_stats`` with garbage cells -- so
    they raise here instead of propagating.  :func:`repro.core.clean_messages`
    is the sanctioned filter for dirty feeds; run it first.
    """
    lat = np.asarray(trips.column(schema.LAT), dtype=np.float64)
    lon = np.asarray(trips.column(schema.LON), dtype=np.float64)
    invalid = ~(
        np.isfinite(lat) & np.isfinite(lon) & (np.abs(lat) <= 90.0) & (np.abs(lon) <= 180.0)
    )
    if np.any(invalid):
        raise ValueError(
            f"{int(invalid.sum())} of {len(lat)} positions have non-finite or "
            "out-of-range lat/lon and cannot be cell-indexed; run "
            "clean_messages before fitting"
        )
    return latlng_to_cell_array(lat, lon, config.resolution)


@dataclass(frozen=True)
class StatisticsState:
    """Mergeable partial fit state: one shard's cell + transition summaries.

    Instances are immutable; :meth:`merged` returns a new state and never
    mutates its inputs, so a state can be shared between a served model
    and an in-progress refresh.
    """

    cell_state: GroupState
    transition_state: GroupState
    resolution: int
    approx_distinct: bool
    num_positions: int

    @classmethod
    def merged(cls, states):
        """Combine shard states; all must share resolution and distinct mode."""
        states = list(states)
        if not states:
            raise ValueError("StatisticsState.merged needs at least one state")
        head = states[0]
        for other in states[1:]:
            if (
                other.resolution != head.resolution
                or other.approx_distinct != head.approx_distinct
            ):
                raise ValueError(
                    "cannot merge statistics fitted at different resolutions "
                    "or distinct-count modes"
                )
        if len(states) == 1:
            return head
        return cls(
            cell_state=merge_states([s.cell_state for s in states]),
            transition_state=merge_states([s.transition_state for s in states]),
            resolution=head.resolution,
            approx_distinct=head.approx_distinct,
            num_positions=sum(s.num_positions for s in states),
        )

    def finalize(self):
        """Render ``(cell_stats, transition_stats)`` tables."""
        return self.cell_state.finalize(), self.transition_state.finalize()

    # -- persistence (ridden by model files) ------------------------------

    def payload(self, prefix="state_"):
        """Flat array mapping for ``np.savez``-style persistence."""
        out = {
            prefix
            + "meta": np.array(
                [str(self.resolution), str(int(self.approx_distinct)), str(self.num_positions)]
            )
        }
        out.update(self.cell_state.payload(prefix + "cell_"))
        out.update(self.transition_state.payload(prefix + "tr_"))
        return out

    @classmethod
    def from_payload(cls, data, prefix="state_"):
        """Rebuild a state from a :meth:`payload` mapping (dict or npz)."""
        meta = np.asarray(data[prefix + "meta"])
        return cls(
            cell_state=GroupState.from_payload(data, prefix + "cell_"),
            transition_state=GroupState.from_payload(data, prefix + "tr_"),
            resolution=int(meta[0]),
            approx_distinct=bool(int(meta[1])),
            num_positions=int(meta[2]),
        )


def partial_statistics(trips, config):
    """Summarise one shard/chunk of segmented trips into a mergeable state.

    *config* is a :class:`repro.core.habit.HabitConfig`; its ``resolution``
    picks the grid and ``approx_distinct`` picks the distinct-count kernel.
    The chunk must hold whole trips (see the module docstring).
    """
    cells = _index_cells(trips, config)
    indexed = trips.with_columns(**{CELL: cells})
    cell_state = indexed.group_by(CELL).partial(
        agg.count(),
        _distinct_agg(config.approx_distinct),
        agg.median(schema.LAT).alias("median_lat"),
        agg.median(schema.LON).alias("median_lon"),
        agg.median(schema.SOG).alias("median_sog"),
        agg.median(schema.COG).alias("median_cog"),
    )

    if trips.num_rows:
        nxt = indexed.lag(CELL, schema.TRIP_ID, schema.T, -1, _NO_CELL)
        moved = (nxt != _NO_CELL) & (nxt != cells)
        pairs = indexed.filter(moved).with_columns(**{NEXT_CELL: nxt[moved]})
    else:
        pairs = indexed.with_columns(**{NEXT_CELL: cells})
    transition_state = pairs.group_by(CELL, NEXT_CELL).partial(
        agg.count().alias("transitions"),
        _distinct_agg(config.approx_distinct),
    )
    return StatisticsState(
        cell_state=cell_state,
        transition_state=transition_state,
        resolution=config.resolution,
        approx_distinct=config.approx_distinct,
        num_positions=trips.num_rows,
    )


def merge_statistics(states):
    """Merge shard states and render ``(cell_stats, transition_stats)``."""
    return StatisticsState.merged(states).finalize()


def compute_statistics(trips, config):
    """One-shot aggregation: a single partial state, finalised immediately.

    Kept as the simple entry point; the sharded/streamed paths produce
    identical counts, transitions and HLL estimates (see module docstring).
    """
    return partial_statistics(trips, config).finalize()


def cell_medians(cell_stats):
    """Convenience accessor: (cells, median_lats, median_lons) arrays."""
    return (
        cell_stats.column(CELL),
        cell_stats.column("median_lat"),
        cell_stats.column("median_lon"),
    )


def transition_arrays(transition_stats):
    """Convenience accessor: (src, dst, transitions, vessels) arrays."""
    return (
        transition_stats.column(CELL),
        transition_stats.column(NEXT_CELL),
        transition_stats.column("transitions"),
        transition_stats.column("vessels"),
    )
