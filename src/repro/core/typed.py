"""Vessel-type-aware HABIT: one cell graph per traffic class.

Mixed-traffic waters (the SAR dataset) blend motion patterns -- a fishing
vessel's loops teach a cargo router bad habits.  :class:`TypedHabitImputer`
fits one :class:`repro.core.habit.HabitImputer` per vessel type with
enough support, plus a global fallback for thin classes and untyped
queries.  This is the paper's future-work extension, ablated in
``bench_ablation_typed``.
"""

from pathlib import Path

import numpy as np

from repro.ais import schema
from repro.core.habit import (
    HabitConfig,
    HabitImputer,
    _check_format,
    _config_from_npz,
    _config_payload,
    _format_array,
    _graph_from_npz,
    _graph_payload,
    _normalize_npz_path,
    _open_npz,
)

__all__ = ["TypedHabitImputer"]

#: Format tag for the typed multi-graph ``.npz`` layout -- distinct from
#: the single-graph ``habit-npz`` so loading one as the other fails with
#: a clear :class:`repro.core.habit.ModelFormatError`.
TYPED_MODEL_FORMAT = "typed-habit-npz"


class TypedHabitImputer:
    """Routes each gap query on its vessel class's own transition graph."""

    def __init__(self, config=None, min_group_rows=1000):
        self.config = config or HabitConfig()
        self.min_group_rows = min_group_rows
        self.by_type = {}
        self.fallback = None
        #: Serving provenance parity with :class:`HabitImputer`; typed
        #: models have no incremental-refresh path yet, so this stays 1.
        self.revision = 1

    @property
    def fitted_groups(self):
        """Vessel types that received their own graph, sorted."""
        return sorted(self.by_type)

    def fit_from_trips(self, trips):
        """Fit per-type graphs plus the global fallback; returns self."""
        self.fallback = HabitImputer(self.config).fit_from_trips(trips)
        self.by_type = {}
        types = np.asarray(trips.column(schema.VESSEL_TYPE))
        for vessel_type in np.unique(types):
            mask = types == vessel_type
            if int(mask.sum()) < self.min_group_rows:
                continue
            group = trips.filter(mask)
            self.by_type[str(vessel_type)] = HabitImputer(self.config).fit_from_trips(
                group
            )
        return self

    def resolve(self, vessel_type=None):
        """Pick the graph for a vessel class: ``(imputer, class_tag)``.

        ``class_tag`` is the resolved group name (``""`` for the global
        fallback) -- the serving layer folds it into its path-cache key
        so two classes never share cached routes.
        """
        if self.fallback is None:
            raise RuntimeError("TypedHabitImputer.impute called before fit_from_trips")
        key = str(vessel_type) if vessel_type is not None else None
        imputer = self.by_type.get(key)
        if imputer is None:
            return self.fallback, ""
        return imputer, key

    def impute(self, start, end, vessel_type=None):
        """Impute on the type's graph, falling back to the global one."""
        imputer, _ = self.resolve(vessel_type)
        return imputer.impute(start, end)

    def storage_size_bytes(self):
        """Total footprint across the fallback and all typed graphs."""
        if self.fallback is None:
            raise RuntimeError("TypedHabitImputer not fitted")
        total = self.fallback.storage_size_bytes()
        return total + sum(i.storage_size_bytes() for i in self.by_type.values())

    # -- persistence ------------------------------------------------------

    def save(self, path):
        """Serialise the fallback and every per-type graph to one ``.npz``."""
        if self.fallback is None:
            raise RuntimeError("TypedHabitImputer not fitted")
        path = _normalize_npz_path(path)
        groups = self.fitted_groups
        payload = {
            "format": _format_array(TYPED_MODEL_FORMAT),
            "config": _config_payload(self.config),
            "min_group_rows": np.array([self.min_group_rows], dtype=np.int64),
            # dtype=str sizes the array to the longest name -- never truncate.
            "groups": np.array(groups, dtype=np.str_),
            **_graph_payload(self.fallback.graph, "fallback_"),
        }
        for i, name in enumerate(groups):
            payload.update(_graph_payload(self.by_type[name].graph, f"g{i}_"))
        np.savez(path, **payload)
        return path

    @classmethod
    def load(cls, path):
        """Restore a model saved with :meth:`save`.

        Raises :class:`repro.core.habit.ModelFormatError` on kind/version
        mismatch or missing arrays.
        """
        path = Path(path)
        with _open_npz(path) as data:
            _check_format(data, TYPED_MODEL_FORMAT, path)
            config = _config_from_npz(data["config"])
            typed = cls(config, min_group_rows=int(data["min_group_rows"][0]))
            typed.fallback = _with_graph(config, _graph_from_npz(data, path, "fallback_"))
            for i, name in enumerate(data["groups"]):
                graph = _graph_from_npz(data, path, f"g{i}_")
                typed.by_type[str(name)] = _with_graph(config, graph)
        return typed


def _with_graph(config, graph):
    imputer = HabitImputer(config)
    imputer.graph = graph
    return imputer
