"""Vessel-type-aware HABIT: one cell graph per traffic class.

Mixed-traffic waters (the SAR dataset) blend motion patterns -- a fishing
vessel's loops teach a cargo router bad habits.  :class:`TypedHabitImputer`
fits one :class:`repro.core.habit.HabitImputer` per vessel type with
enough support, plus a global fallback for thin classes and untyped
queries.  This is the paper's future-work extension, ablated in
``bench_ablation_typed``.

Fitting mirrors the plain imputer's incremental shape:
:meth:`TypedHabitImputer.fit_partial` splits each chunk by vessel class
and folds it into per-class :class:`repro.core.statistics.StatisticsState`s
(held by per-class ``HabitImputer``s) plus the global fallback state;
:meth:`TypedHabitImputer.finalize` freezes a graph for every class whose
*accumulated* support reached ``min_group_rows`` -- so a thin class can be
promoted to its own graph once enough of its traffic has streamed in --
and :meth:`TypedHabitImputer.update` refreshes all graphs from new trips
without ever re-reading history.  The per-class states ride inside the
typed ``.npz`` container, so a loaded typed model keeps refreshing --
and so does every class graph's precomputed search state (ALT landmark
tables and, since format v5, the contraction hierarchy), so a loaded
typed model answers its first ``"ch"`` query without paying per-class
preprocessing.
"""

from pathlib import Path

import numpy as np

from repro.ais import schema
from repro.core.habit import (
    HabitConfig,
    HabitImputer,
    _atomic_savez,
    _check_format,
    _config_from_npz,
    _config_payload,
    _format_array,
    _graph_from_npz,
    _graph_payload,
    _normalize_npz_path,
    _open_npz,
)
from repro.core.statistics import StatisticsState

__all__ = ["TypedHabitImputer"]

#: Format tag for the typed multi-graph ``.npz`` layout -- distinct from
#: the single-graph ``habit-npz`` so loading one as the other fails with
#: a clear :class:`repro.core.habit.ModelFormatError`.
TYPED_MODEL_FORMAT = "typed-habit-npz"

#: Prefixes under which the mergeable per-class fit states live in the
#: (v4) container.  ``state_groups`` lists every class carrying a state
#: (a superset of ``groups``: thin classes accumulate state before they
#: earn a graph); class *i* of that list stores under ``state_c{i}_``,
#: the fallback under ``state_fallback_``.  All state fields are
#: optional -- files saved before they existed (or with
#: ``include_state=False``) still load, but refuse incremental update.
_STATE_GROUPS_KEY = "state_groups"
_FALLBACK_STATE_PREFIX = "state_fallback_"

_STATELESS_MESSAGE = (
    "typed model was saved without its per-class fit states and cannot "
    "be refreshed incrementally; refit from the full history"
)


class TypedHabitImputer:
    """Routes each gap query on its vessel class's own transition graph.

    Fit either one-shot (:meth:`fit_from_trips`) or incrementally
    (:meth:`fit_partial` per chunk, then :meth:`finalize`); after a fit,
    :meth:`update` folds newly arrived trips into every class state and
    rebuilds only the (cheap) graphs, bumping ``revision``.  Queries
    resolve a class graph via :meth:`resolve` and never mutate the model.
    """

    def __init__(self, config=None, min_group_rows=1000):
        self.config = config or HabitConfig()
        self.min_group_rows = min_group_rows
        #: Vessel classes that earned their own graph (support >=
        #: ``min_group_rows``): class name -> finalised ``HabitImputer``.
        self.by_type = {}
        self.fallback = None
        #: Every class seen so far, promoted or not: class name ->
        #: state-carrying ``HabitImputer`` (graph only once promoted).
        #: ``by_type`` values are aliases into this dict.
        self._partials = {}
        #: Incremental-refresh counter, mirrored onto every class imputer
        #: at :meth:`finalize` so serve-path cache keys (which read the
        #: class imputer's revision) invalidate on typed refreshes too.
        self.revision = 1

    @property
    def fitted_groups(self):
        """Vessel types that received their own graph, sorted."""
        return sorted(self.by_type)

    # -- fitting ----------------------------------------------------------

    def fit_partial(self, trips):
        """Fold one chunk of segmented trips into the per-class fit states.

        The chunk is split by vessel class; each class's rows land in its
        own mergeable state (created on first sight) and every row also
        feeds the global fallback state.  No graphs are touched; call
        :meth:`finalize` once every chunk is in.  Chunks must hold whole
        trips.  Returns self.

        A model loaded from a state-less artefact raises ``ValueError``
        (like :meth:`update`): folding a chunk into empty states would
        silently rebuild the graphs from that chunk alone, discarding
        the fitted history.
        """
        if self.fallback is not None and self.fallback._state is None:
            raise ValueError(_STATELESS_MESSAGE)
        if self.fallback is None:
            self.fallback = HabitImputer(self.config)
        self.fallback.fit_partial(trips)
        types = np.asarray(trips.column(schema.VESSEL_TYPE))
        for vessel_type in np.unique(types):
            group = trips.filter(types == vessel_type)
            name = str(vessel_type)
            if name not in self._partials:
                self._partials[name] = HabitImputer(self.config)
            self._partials[name].fit_partial(group)
        return self

    def merge(self, other):
        """Absorb another typed imputer's accumulated fit states; returns self.

        Class states present on both sides merge; classes only *other*
        has seen are adopted (states are immutable, so they are shared,
        never copied).  Both imputers must carry states.
        """
        if not isinstance(other, TypedHabitImputer):
            raise TypeError("TypedHabitImputer.merge expects a TypedHabitImputer")
        if self.fallback is None or self.fallback._state is None:
            raise ValueError("cannot merge into a typed imputer with no fit state")
        if other.fallback is None or other.fallback._state is None:
            raise ValueError("cannot merge a typed imputer with no fit state")
        self.fallback.merge(other.fallback)
        for name, imputer in other._partials.items():
            if name in self._partials:
                self._partials[name].merge(imputer)
            else:
                adopted = HabitImputer(self.config)
                adopted._state = imputer._state
                self._partials[name] = adopted
        return self

    def finalize(self):
        """Freeze graphs: the fallback plus every class with enough support.

        Promotion is by *accumulated* support: a class reaches its own
        graph as soon as its states total ``min_group_rows`` rows, even
        if no single chunk did.  Classes whose state is untouched since
        their last finalize keep their existing graph -- a refresh whose
        chunk only carried cargo traffic does not pay N-1 other classes'
        graph (and ALT landmark) rebuilds -- and keep their ``revision``
        too, so their serve-path cache entries stay warm; only rebuilt
        imputers take the typed model's new revision.  Returns self.
        """
        if self.fallback is None or self.fallback._state is None:
            raise RuntimeError("TypedHabitImputer.finalize called with no fit state")
        refreshed = []
        if (
            self.fallback.graph is None
            or self.fallback._state is not self.fallback._finalized_state
        ):
            self.fallback.finalize()
            refreshed.append(self.fallback)
        self.by_type = {}
        for name in sorted(self._partials):
            imputer = self._partials[name]
            if imputer._state.num_positions < self.min_group_rows:
                continue
            if imputer.graph is None or imputer._state is not imputer._finalized_state:
                imputer.finalize()
                refreshed.append(imputer)
            self.by_type[name] = imputer
        # Only rebuilt imputers take the new revision: an untouched
        # class's graph (and therefore every cached route on it) is
        # byte-identical, and bumping its revision would invalidate the
        # serve-path cache for nothing.
        for imputer in refreshed:
            imputer.revision = self.revision
        return self

    def fit_from_trips(self, trips):
        """Fit per-type graphs plus the global fallback; returns self."""
        self.fallback = None
        self.by_type = {}
        self._partials = {}
        self.revision = 1
        return self.fit_partial(trips).finalize()

    def update(self, trips):
        """Incremental refresh across every class: merge new trips into
        the per-class states, rebuild the graphs, bump ``revision``.

        Results are equivalent to a full refit on the concatenated
        history (exactly for graph topology and transition counts,
        within t-digest tolerance for median projections).  Raises
        ``ValueError`` on a model loaded without its fit states.
        """
        if self.fallback is not None and self.fallback._state is None:
            raise ValueError(_STATELESS_MESSAGE)
        self.fit_partial(trips)
        self.revision += 1
        return self.finalize()

    def fork(self):
        """A fresh, unfinalised typed imputer sharing every class state.

        The registry's refresh path forks the served model, updates the
        fork, and swaps it in -- in-flight queries keep the old graphs.
        Raises ``ValueError`` when the model carries no states.
        """
        if self.fallback is None or self.fallback._state is None:
            raise ValueError(_STATELESS_MESSAGE)
        fresh = TypedHabitImputer(self.config, min_group_rows=self.min_group_rows)
        fresh.fallback = self.fallback.fork()
        fresh._partials = {name: imp.fork() for name, imp in self._partials.items()}
        fresh.revision = self.revision
        return fresh

    # -- querying ---------------------------------------------------------

    def resolve(self, vessel_type=None):
        """Pick the graph for a vessel class: ``(imputer, class_tag)``.

        ``class_tag`` is the resolved group name (``""`` for the global
        fallback) -- the serving layer folds it into its path-cache key
        so two classes never share cached routes.
        """
        if self.fallback is None:
            raise RuntimeError("TypedHabitImputer.impute called before fit_from_trips")
        key = str(vessel_type) if vessel_type is not None else None
        imputer = self.by_type.get(key)
        if imputer is None:
            return self.fallback, ""
        return imputer, key

    def impute(self, start, end, vessel_type=None):
        """Impute on the type's graph, falling back to the global one."""
        imputer, _ = self.resolve(vessel_type)
        return imputer.impute(start, end)

    def route_batch(self, items, method=None):
        """Route many ``(src, dst, vessel_type)`` triples, batched per class.

        Each triple resolves its class graph exactly like
        :meth:`resolve`; the batch is then split into per-class
        sub-batches and every sub-batch runs through that class
        imputer's :meth:`repro.core.habit.HabitImputer.route_batch` --
        one kernel sweep per distinct graph, however the classes are
        interleaved in *items*.  Returns a list aligned with *items* of
        :class:`repro.core.graph.SearchResult` (or ``None``), identical
        to routing each triple on ``resolve(vessel_type)[0]`` alone.
        """
        if self.fallback is None:
            raise RuntimeError(
                "TypedHabitImputer.route_batch called before fit_from_trips"
            )
        items = list(items)
        groups = {}  # class tag -> (imputer, [positions], [pairs])
        for i, (src, dst, vessel_type) in enumerate(items):
            imputer, tag = self.resolve(vessel_type)
            group = groups.get(tag)
            if group is None:
                group = groups[tag] = (imputer, [], [])
            group[1].append(i)
            group[2].append((src, dst))
        results = [None] * len(items)
        for imputer, positions, pairs in groups.values():
            for i, result in zip(positions, imputer.route_batch(pairs, method)):
                results[i] = result
        return results

    def storage_size_bytes(self):
        """Total footprint across the fallback and all typed graphs."""
        if self.fallback is None:
            raise RuntimeError("TypedHabitImputer not fitted")
        total = self.fallback.storage_size_bytes()
        return total + sum(i.storage_size_bytes() for i in self.by_type.values())

    # -- persistence ------------------------------------------------------

    def save(self, path, include_state=True):
        """Serialise the fallback and every per-type graph to one ``.npz``.

        With *include_state* (the default) every class's mergeable fit
        state -- including classes still below ``min_group_rows`` --
        rides along in the container, so a loaded typed model keeps
        refreshing incrementally; pass ``False`` for a leaner, serve-only
        artefact that rejects :meth:`update`.
        """
        if self.fallback is None or self.fallback.graph is None:
            raise RuntimeError(
                "TypedHabitImputer not fitted (finalize() accumulated "
                "partial fits before saving)"
            )
        # A graph paired with a *newer* state must never be persisted:
        # load() records each persisted graph as built from the persisted
        # state, and the refresh path's skip-untouched-classes check
        # would then keep serving the stale graph forever.
        for imputer in (self.fallback, *self._partials.values()):
            if imputer.graph is not None and imputer._state is not imputer._finalized_state:
                raise RuntimeError(
                    "TypedHabitImputer has partial fits newer than its "
                    "graphs; call finalize() before save()"
                )
        path = _normalize_npz_path(path)
        groups = self.fitted_groups
        payload = {
            "format": _format_array(TYPED_MODEL_FORMAT),
            "config": _config_payload(self.config),
            "min_group_rows": np.array([self.min_group_rows], dtype=np.int64),
            "revision": np.array([self.revision], dtype=np.int64),
            # dtype=str sizes the array to the longest name -- never truncate.
            "groups": np.array(groups, dtype=np.str_),
            **_graph_payload(self.fallback.graph, "fallback_"),
        }
        for i, name in enumerate(groups):
            payload.update(_graph_payload(self.by_type[name].graph, f"g{i}_"))
        if include_state and self.fallback._state is not None:
            state_groups = sorted(self._partials)
            payload[_STATE_GROUPS_KEY] = np.array(state_groups, dtype=np.str_)
            payload.update(self.fallback._state.payload(_FALLBACK_STATE_PREFIX))
            for i, name in enumerate(state_groups):
                payload.update(
                    self._partials[name]._state.payload(f"state_c{i}_")
                )
        _atomic_savez(path, payload)
        return path

    @classmethod
    def load(cls, path):
        """Restore a model saved with :meth:`save`.

        Raises :class:`repro.core.habit.ModelFormatError` on kind/version
        mismatch or missing arrays.  Files written before the typed
        container carried revisions/states load with ``revision=1`` and
        no states (serve-only: :meth:`update` raises); state-carrying
        files come back fully refreshable, thin classes included.
        """
        path = Path(path)
        with _open_npz(path) as data:
            _check_format(data, TYPED_MODEL_FORMAT, path)
            config = _config_from_npz(data["config"])
            typed = cls(config, min_group_rows=int(data["min_group_rows"][0]))
            if "revision" in data.files:
                typed.revision = int(data["revision"][0])
            typed.fallback = _with_graph(config, _graph_from_npz(data, path, "fallback_"))
            for i, name in enumerate(data["groups"]):
                graph = _graph_from_npz(data, path, f"g{i}_")
                imputer = _with_graph(config, graph)
                typed.by_type[str(name)] = imputer
                typed._partials[str(name)] = imputer
            if _STATE_GROUPS_KEY in data.files:
                typed.fallback._state = StatisticsState.from_payload(
                    data, _FALLBACK_STATE_PREFIX
                )
                typed.fallback._finalized_state = typed.fallback._state
                for i, name in enumerate(data[_STATE_GROUPS_KEY]):
                    imputer = typed._partials.setdefault(
                        str(name), HabitImputer(config)
                    )
                    imputer._state = StatisticsState.from_payload(data, f"state_c{i}_")
                    if imputer.graph is not None:
                        # The persisted graph came from this very state.
                        imputer._finalized_state = imputer._state
            for imputer in (typed.fallback, *typed._partials.values()):
                imputer.revision = typed.revision
        return typed


def _with_graph(config, graph):
    imputer = HabitImputer(config)
    imputer.graph = graph
    return imputer
