"""Vessel-type-aware HABIT: one cell graph per traffic class.

Mixed-traffic waters (the SAR dataset) blend motion patterns -- a fishing
vessel's loops teach a cargo router bad habits.  :class:`TypedHabitImputer`
fits one :class:`repro.core.habit.HabitImputer` per vessel type with
enough support, plus a global fallback for thin classes and untyped
queries.  This is the paper's future-work extension, ablated in
``bench_ablation_typed``.
"""

import numpy as np

from repro.ais import schema
from repro.core.habit import HabitConfig, HabitImputer

__all__ = ["TypedHabitImputer"]


class TypedHabitImputer:
    """Routes each gap query on its vessel class's own transition graph."""

    def __init__(self, config=None, min_group_rows=1000):
        self.config = config or HabitConfig()
        self.min_group_rows = min_group_rows
        self.by_type = {}
        self.fallback = None

    @property
    def fitted_groups(self):
        """Vessel types that received their own graph, sorted."""
        return sorted(self.by_type)

    def fit_from_trips(self, trips):
        """Fit per-type graphs plus the global fallback; returns self."""
        self.fallback = HabitImputer(self.config).fit_from_trips(trips)
        self.by_type = {}
        types = np.asarray(trips.column(schema.VESSEL_TYPE))
        for vessel_type in np.unique(types):
            mask = types == vessel_type
            if int(mask.sum()) < self.min_group_rows:
                continue
            group = trips.filter(mask)
            self.by_type[str(vessel_type)] = HabitImputer(self.config).fit_from_trips(
                group
            )
        return self

    def impute(self, start, end, vessel_type=None):
        """Impute on the type's graph, falling back to the global one."""
        if self.fallback is None:
            raise RuntimeError("TypedHabitImputer.impute called before fit_from_trips")
        key = str(vessel_type) if vessel_type is not None else None
        imputer = self.by_type.get(key, self.fallback)
        return imputer.impute(start, end)

    def storage_size_bytes(self):
        """Total footprint across the fallback and all typed graphs."""
        if self.fallback is None:
            raise RuntimeError("TypedHabitImputer not fitted")
        total = self.fallback.storage_size_bytes()
        return total + sum(i.storage_size_bytes() for i in self.by_type.values())
