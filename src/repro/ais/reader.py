"""Real-AIS loaders: map public dump columns onto the canonical schema.

Public AIS archives disagree on header names -- MarineCadastre uses
``MMSI, BaseDateTime, LAT, LON, SOG, COG, VesselType``; the Danish
Maritime Authority uses ``# Timestamp, MMSI, Latitude, Longitude, SOG,
COG, Ship type`` with ``dd/mm/yyyy`` timestamps.  :func:`read_csv`
normalises either (and close relatives) into a raw
:class:`repro.minidb.Table` in :mod:`repro.ais.schema` columns, so real
dumps flow through the exact pipeline the synthetic generators feed:
``clean_messages -> segment_trips -> fit``.

The loader is deliberately lenient about *values*: rows without a
parseable vessel id or timestamp are dropped (nothing downstream can use
them), while unparseable coordinates/speeds become NaN for
:func:`repro.core.clean_messages` to discard -- cleaning policy stays in
one place.  It is strict about *structure*: missing required columns
raise :class:`AISFormatError` naming what could not be mapped.
"""

import csv
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.ais import schema
from repro.minidb import Table

__all__ = ["AISFormatError", "read_csv", "read_csv_chunks", "read_parquet"]

#: Default rows per chunk for :func:`read_csv_chunks` (~tens of MB of
#: parsed arrays; month-scale dumps stream in hundreds of chunks).
DEFAULT_CHUNK_ROWS = 250_000


class AISFormatError(ValueError):
    """An AIS dump's structure cannot be mapped onto the schema."""


#: lowercased source header -> canonical schema column.
COLUMN_ALIASES = {
    # vessel id
    "mmsi": schema.VESSEL_ID,
    "vessel_id": schema.VESSEL_ID,
    "userid": schema.VESSEL_ID,
    "sourcemmsi": schema.VESSEL_ID,
    # timestamp
    "t": schema.T,
    "timestamp": schema.T,
    "# timestamp": schema.T,
    "basedatetime": schema.T,
    "time": schema.T,
    "epoch": schema.T,
    # position
    "lat": schema.LAT,
    "latitude": schema.LAT,
    "lon": schema.LON,
    "lng": schema.LON,
    "long": schema.LON,
    "longitude": schema.LON,
    # kinematics
    "sog": schema.SOG,
    "speed": schema.SOG,
    "speedoverground": schema.SOG,
    "cog": schema.COG,
    "course": schema.COG,
    "courseoverground": schema.COG,
    # class
    "vessel_type": schema.VESSEL_TYPE,
    "vesseltype": schema.VESSEL_TYPE,
    "ship type": schema.VESSEL_TYPE,
    "ship_type": schema.VESSEL_TYPE,
    "shiptype": schema.VESSEL_TYPE,
}

#: Columns a dump must provide; the rest default (SOG/COG 0, type unknown).
REQUIRED_COLUMNS = (schema.VESSEL_ID, schema.T, schema.LAT, schema.LON)

_TIME_FORMATS = (
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%d %H:%M:%S",
    "%d/%m/%Y %H:%M:%S",
    "%m/%d/%Y %H:%M:%S",
)


def _parse_time(value):
    """One timestamp string to epoch seconds, or None."""
    value = str(value).strip()
    if not value:
        return None
    try:
        return float(value)
    except ValueError:
        pass
    for fmt in _TIME_FORMATS:
        try:
            parsed = datetime.strptime(value, fmt)
        except ValueError:
            continue
        return parsed.replace(tzinfo=timezone.utc).timestamp()
    return None


def _map_header(names, source):
    mapping = {}
    for index, name in enumerate(names):
        canonical = COLUMN_ALIASES.get(str(name).strip().lower())
        if canonical is not None and canonical not in mapping:
            mapping[canonical] = index
    missing = [c for c in REQUIRED_COLUMNS if c not in mapping]
    if missing:
        raise AISFormatError(
            f"{source}: cannot map required columns {missing} "
            f"from headers {list(names)}"
        )
    return mapping


def _to_float(values):
    """Column to float64 with unparseable entries as NaN."""
    arr = np.asarray(values)
    try:
        return arr.astype(np.float64)
    except ValueError:
        pass
    out = np.full(len(arr), np.nan)
    for i, value in enumerate(arr):
        try:
            out[i] = float(value)
        except (TypeError, ValueError):
            pass
    return out


def _to_epoch(values):
    """Column to epoch seconds (numeric, datetime64, or string formats)."""
    arr = np.asarray(values)
    if arr.dtype.kind == "M":
        stamped = arr.astype("datetime64[ns]")
        out = stamped.astype(np.int64) / 1e9
        out[np.isnat(stamped)] = np.nan  # NaT casts to int64-min, not NaN
        return out
    if arr.dtype.kind in "fiu":
        return arr.astype(np.float64)
    out = np.full(len(arr), np.nan)
    for i, value in enumerate(arr):
        parsed = _parse_time(value)
        if parsed is not None:
            out[i] = parsed
    return out


def _from_named_columns(named, source):
    """Alias-map and coerce ``{header: array}`` into a raw schema table."""
    mapping = _map_header(list(named), source)
    by_header = list(named.values())
    column = {key: np.asarray(by_header[idx]) for key, idx in mapping.items()}

    vessel = _to_float(column[schema.VESSEL_ID])
    t = _to_epoch(column[schema.T])
    keep = np.isfinite(vessel) & np.isfinite(t)

    n = int(keep.sum())
    out = {
        schema.VESSEL_ID: vessel[keep].astype(np.int64),
        schema.T: t[keep],
        schema.LAT: _to_float(column[schema.LAT])[keep],
        schema.LON: _to_float(column[schema.LON])[keep],
    }
    for key in (schema.SOG, schema.COG):
        out[key] = _to_float(column[key])[keep] if key in column else np.zeros(n)
    if schema.VESSEL_TYPE in column:
        # dtype=str sizes to the longest label; a fixed width would
        # silently truncate real-world type names.
        types = np.asarray(column[schema.VESSEL_TYPE], dtype=np.str_)
        types = np.char.lower(np.char.strip(types))[keep]
        out[schema.VESSEL_TYPE] = np.where(types == "", "unknown", types)
    else:
        out[schema.VESSEL_TYPE] = np.full(n, "unknown")
    return Table({name: out[name] for name in schema.RAW_COLUMNS})


def _rows_to_table(header, cells, source):
    named = {
        name: np.array([row[i] for row in cells], dtype="U64")
        for i, name in enumerate(header)
    }
    return _from_named_columns(named, source)


def read_csv(path, delimiter=","):
    """Load a public AIS dump CSV into a raw schema :class:`Table`.

    Headers are matched case-insensitively against :data:`COLUMN_ALIASES`;
    rows whose field count disagrees with the header are skipped.  The
    result feeds straight into :func:`repro.core.clean_messages`.
    """
    path = Path(path)
    with open(path, newline="", encoding="utf-8-sig") as handle:
        rows = csv.reader(handle, delimiter=delimiter)
        header = next(rows, None)
        if not header:
            raise AISFormatError(f"{path}: empty file, no header row")
        width = len(header)
        cells = [row for row in rows if len(row) == width]
    return _rows_to_table(header, cells, str(path))


def read_csv_chunks(path, chunk_rows=DEFAULT_CHUNK_ROWS, delimiter=","):
    """Stream a public AIS dump CSV as bounded-memory schema tables.

    An iterator of :class:`repro.minidb.Table` chunks of at most
    *chunk_rows* source rows each -- the whole dump is never materialised,
    so month-scale archives fit in constant memory.  Each chunk gets the
    same alias mapping and value coercion as :func:`read_csv`;
    concatenating every chunk reproduces ``read_csv(path)`` exactly.
    Pipe chunks through :func:`repro.core.clean_messages`, a
    :class:`repro.core.StreamingSegmenter` and
    :meth:`repro.core.HabitImputer.fit_partial` for a fixed-memory fit.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
    path = Path(path)
    with open(path, newline="", encoding="utf-8-sig") as handle:
        rows = csv.reader(handle, delimiter=delimiter)
        header = next(rows, None)
        if not header:
            raise AISFormatError(f"{path}: empty file, no header row")
        # Map (and so validate) the header up front: a structurally broken
        # dump fails on the first chunk, not somewhere mid-stream.
        _map_header(header, str(path))
        width = len(header)
        buffer = []
        for row in rows:
            if len(row) != width:
                continue
            buffer.append(row)
            if len(buffer) >= chunk_rows:
                yield _rows_to_table(header, buffer, str(path))
                buffer = []
        if buffer:
            yield _rows_to_table(header, buffer, str(path))


def read_parquet(path):
    """Load an AIS dump parquet file; requires pandas with a parquet engine.

    The container image may not ship pandas -- this entry point is gated,
    not a hard dependency: without pandas it raises ``RuntimeError``
    pointing at the CSV path instead of failing at import time.
    """
    try:
        import pandas as pd
    except ImportError as exc:
        raise RuntimeError(
            "read_parquet requires pandas (with a parquet engine such as "
            "pyarrow); install them or convert the dump to CSV for read_csv"
        ) from exc
    frame = pd.read_parquet(path)
    named = {str(name): frame[name].to_numpy() for name in frame.columns}
    return _from_named_columns(named, str(path))
