"""Real-AIS loaders: map public dump columns onto the canonical schema.

Public AIS archives disagree on header names -- MarineCadastre uses
``MMSI, BaseDateTime, LAT, LON, SOG, COG, VesselType``; the Danish
Maritime Authority uses ``# Timestamp, MMSI, Latitude, Longitude, SOG,
COG, Ship type`` with ``dd/mm/yyyy`` timestamps.  :func:`read_csv`
normalises either (and close relatives) into a raw
:class:`repro.minidb.Table` in :mod:`repro.ais.schema` columns, so real
dumps flow through the exact pipeline the synthetic generators feed:
``clean_messages -> segment_trips -> fit``.

The loader is deliberately lenient about *values*: rows without a
parseable vessel id or timestamp are dropped (nothing downstream can use
them), while unparseable coordinates/speeds become NaN for
:func:`repro.core.clean_messages` to discard -- cleaning policy stays in
one place.  It is strict about *structure*: missing required columns
raise :class:`AISFormatError` naming what could not be mapped.
"""

import csv
import io
import os
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.ais import schema
from repro.minidb import Table

__all__ = [
    "AISFormatError",
    "CsvFollower",
    "read_csv",
    "read_csv_chunks",
    "read_parquet",
]

#: Default rows per chunk for :func:`read_csv_chunks` (~tens of MB of
#: parsed arrays; month-scale dumps stream in hundreds of chunks).
DEFAULT_CHUNK_ROWS = 250_000


class AISFormatError(ValueError):
    """An AIS dump's structure cannot be mapped onto the schema."""


#: lowercased source header -> canonical schema column.
COLUMN_ALIASES = {
    # vessel id
    "mmsi": schema.VESSEL_ID,
    "vessel_id": schema.VESSEL_ID,
    "userid": schema.VESSEL_ID,
    "sourcemmsi": schema.VESSEL_ID,
    # timestamp
    "t": schema.T,
    "timestamp": schema.T,
    "# timestamp": schema.T,
    "basedatetime": schema.T,
    "time": schema.T,
    "epoch": schema.T,
    # position
    "lat": schema.LAT,
    "latitude": schema.LAT,
    "lon": schema.LON,
    "lng": schema.LON,
    "long": schema.LON,
    "longitude": schema.LON,
    # kinematics
    "sog": schema.SOG,
    "speed": schema.SOG,
    "speedoverground": schema.SOG,
    "cog": schema.COG,
    "course": schema.COG,
    "courseoverground": schema.COG,
    # class
    "vessel_type": schema.VESSEL_TYPE,
    "vesseltype": schema.VESSEL_TYPE,
    "ship type": schema.VESSEL_TYPE,
    "ship_type": schema.VESSEL_TYPE,
    "shiptype": schema.VESSEL_TYPE,
}

#: Columns a dump must provide; the rest default (SOG/COG 0, type unknown).
REQUIRED_COLUMNS = (schema.VESSEL_ID, schema.T, schema.LAT, schema.LON)

_TIME_FORMATS = (
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%d %H:%M:%S",
    "%d/%m/%Y %H:%M:%S",
    "%m/%d/%Y %H:%M:%S",
)


def _parse_time(value):
    """One timestamp string to epoch seconds, or None."""
    value = str(value).strip()
    if not value:
        return None
    try:
        return float(value)
    except ValueError:
        pass
    for fmt in _TIME_FORMATS:
        try:
            parsed = datetime.strptime(value, fmt)
        except ValueError:
            continue
        return parsed.replace(tzinfo=timezone.utc).timestamp()
    return None


def _map_header(names, source):
    mapping = {}
    for index, name in enumerate(names):
        canonical = COLUMN_ALIASES.get(str(name).strip().lower())
        if canonical is not None and canonical not in mapping:
            mapping[canonical] = index
    missing = [c for c in REQUIRED_COLUMNS if c not in mapping]
    if missing:
        raise AISFormatError(
            f"{source}: cannot map required columns {missing} "
            f"from headers {list(names)}"
        )
    return mapping


def _to_float(values):
    """Column to float64 with unparseable entries as NaN."""
    arr = np.asarray(values)
    try:
        return arr.astype(np.float64)
    except ValueError:
        pass
    out = np.full(len(arr), np.nan)
    for i, value in enumerate(arr):
        try:
            out[i] = float(value)
        except (TypeError, ValueError):
            pass
    return out


def _to_epoch(values):
    """Column to epoch seconds (numeric, datetime64, or string formats)."""
    arr = np.asarray(values)
    if arr.dtype.kind == "M":
        stamped = arr.astype("datetime64[ns]")
        out = stamped.astype(np.int64) / 1e9
        out[np.isnat(stamped)] = np.nan  # NaT casts to int64-min, not NaN
        return out
    if arr.dtype.kind in "fiu":
        return arr.astype(np.float64)
    out = np.full(len(arr), np.nan)
    for i, value in enumerate(arr):
        parsed = _parse_time(value)
        if parsed is not None:
            out[i] = parsed
    return out


def _from_named_columns(named, source):
    """Alias-map and coerce ``{header: array}`` into a raw schema table."""
    mapping = _map_header(list(named), source)
    by_header = list(named.values())
    column = {key: np.asarray(by_header[idx]) for key, idx in mapping.items()}

    vessel = _to_float(column[schema.VESSEL_ID])
    t = _to_epoch(column[schema.T])
    keep = np.isfinite(vessel) & np.isfinite(t)

    n = int(keep.sum())
    out = {
        schema.VESSEL_ID: vessel[keep].astype(np.int64),
        schema.T: t[keep],
        schema.LAT: _to_float(column[schema.LAT])[keep],
        schema.LON: _to_float(column[schema.LON])[keep],
    }
    for key in (schema.SOG, schema.COG):
        out[key] = _to_float(column[key])[keep] if key in column else np.zeros(n)
    if schema.VESSEL_TYPE in column:
        # dtype=str sizes to the longest label; a fixed width would
        # silently truncate real-world type names.
        types = np.asarray(column[schema.VESSEL_TYPE], dtype=np.str_)
        types = np.char.lower(np.char.strip(types))[keep]
        out[schema.VESSEL_TYPE] = np.where(types == "", "unknown", types)
    else:
        out[schema.VESSEL_TYPE] = np.full(n, "unknown")
    return Table({name: out[name] for name in schema.RAW_COLUMNS})


def _rows_to_table(header, cells, source):
    named = {
        name: np.array([row[i] for row in cells], dtype="U64")
        for i, name in enumerate(header)
    }
    return _from_named_columns(named, source)


def read_csv(path, delimiter=","):
    """Load a public AIS dump CSV into a raw schema :class:`Table`.

    Headers are matched case-insensitively against :data:`COLUMN_ALIASES`;
    rows whose field count disagrees with the header are skipped.  The
    result feeds straight into :func:`repro.core.clean_messages`.
    """
    path = Path(path)
    with open(path, newline="", encoding="utf-8-sig") as handle:
        rows = csv.reader(handle, delimiter=delimiter)
        header = next(rows, None)
        if not header:
            raise AISFormatError(f"{path}: empty file, no header row")
        width = len(header)
        cells = [row for row in rows if len(row) == width]
    return _rows_to_table(header, cells, str(path))


def read_csv_chunks(path, chunk_rows=DEFAULT_CHUNK_ROWS, delimiter=","):
    """Stream a public AIS dump CSV as bounded-memory schema tables.

    An iterator of :class:`repro.minidb.Table` chunks of at most
    *chunk_rows* source rows each -- the whole dump is never materialised,
    so month-scale archives fit in constant memory.  Each chunk gets the
    same alias mapping and value coercion as :func:`read_csv`;
    concatenating every chunk reproduces ``read_csv(path)`` exactly.
    Pipe chunks through :func:`repro.core.clean_messages`, a
    :class:`repro.core.StreamingSegmenter` and
    :meth:`repro.core.HabitImputer.fit_partial` for a fixed-memory fit.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
    path = Path(path)
    with open(path, newline="", encoding="utf-8-sig") as handle:
        rows = csv.reader(handle, delimiter=delimiter)
        header = next(rows, None)
        if not header:
            raise AISFormatError(f"{path}: empty file, no header row")
        # Map (and so validate) the header up front: a structurally broken
        # dump fails on the first chunk, not somewhere mid-stream.
        _map_header(header, str(path))
        width = len(header)
        buffer = []
        for row in rows:
            if len(row) != width:
                continue
            buffer.append(row)
            if len(buffer) >= chunk_rows:
                yield _rows_to_table(header, buffer, str(path))
                buffer = []
        if buffer:
            yield _rows_to_table(header, buffer, str(path))


class CsvFollower:
    """Incremental reader over a *growing* AIS dump (``tail -f`` for CSVs).

    :func:`read_csv_chunks` reads to end-of-file and stops;
    a live-refresh daemon instead needs to pick up rows appended after
    the last read.  A follower remembers its byte offset into the file
    and each :meth:`poll` parses only what arrived since -- through the
    same alias mapping and value coercion as :func:`read_csv`, so
    concatenating every polled chunk reproduces ``read_csv(path)`` over
    the rows seen so far.

    Append semantics:

    - Only *complete* lines are consumed: a write caught mid-line stays
      unread until its terminating newline lands, so a torn row is never
      parsed as data.  The feed must be line-oriented: one row per
      physical line, no quoted fields containing embedded newlines (a
      quoting dialect no public AIS dump uses; such rows would be split
      at the raw newline and dropped by the field-count filter).
    - The header is read (and validated against
      :data:`REQUIRED_COLUMNS`) on the first poll that sees it; polls
      before any data simply return nothing.
    - Truncating or rotating the file underneath a follower raises
      :class:`AISFormatError` -- the offset no longer names real bytes,
      and silently rereading a rotated file would double-ingest.

    This is the ingestion half of the service's ``--follow`` mode; see
    :class:`repro.service.follow.FollowDaemon` for the full loop.
    """

    #: Upper bound on bytes read per :meth:`poll` -- keeps the peak
    #: memory of catching up on a large backlog at one slice, not the
    #: whole file; the daemon simply polls again for the rest.
    MAX_POLL_BYTES = 32 * 1024 * 1024

    def __init__(self, path, chunk_rows=DEFAULT_CHUNK_ROWS, delimiter=","):
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        self.path = Path(path)
        self.chunk_rows = int(chunk_rows)
        self.delimiter = delimiter
        self._offset = 0
        self._header = None
        self._inode = None  # identity of the file the offset belongs to
        #: Source rows consumed so far (complete data lines, pre-coercion).
        self.rows_read = 0

    def poll(self):
        """Parse rows appended since the last poll; returns a list of Tables.

        Each table holds at most ``chunk_rows`` source rows, and one
        poll reads at most :data:`MAX_POLL_BYTES` from the file (a large
        backlog drains over successive polls, so memory stays bounded
        regardless of how far behind the follower is).  Returns ``[]``
        when nothing complete has arrived (including before the header
        line lands).  Safe to call on a path that does not exist yet --
        that also returns ``[]``.
        """
        try:
            with open(self.path, "rb") as handle:
                stat = os.fstat(handle.fileno())
                # The offset only means anything on the file it was read
                # from: a create-mode rotation swaps the inode, and a
                # fast writer can regrow the replacement past the offset
                # before the next poll -- size alone would miss that.
                # Identity is only enforced once bytes were consumed
                # (offset > 0): before that, a writer atomically
                # publishing the first content over an empty placeholder
                # is a fresh start, not a rotation.
                ident = (stat.st_dev, stat.st_ino)
                if self._offset and self._inode is not None and ident != self._inode:
                    raise AISFormatError(
                        f"{self.path}: file was replaced under the follower "
                        "(inode changed); rotation is not followable -- "
                        "restart the follower"
                    )
                self._inode = ident
                if stat.st_size < self._offset:
                    raise AISFormatError(
                        f"{self.path}: file shrank below the follow offset "
                        f"({stat.st_size} < {self._offset}); truncation/rotation "
                        "is not followable -- restart the follower"
                    )
                handle.seek(self._offset)
                data = handle.read(self.MAX_POLL_BYTES)
        except FileNotFoundError:
            if self._offset:
                raise AISFormatError(
                    f"{self.path}: file disappeared mid-follow"
                ) from None
            return []
        cut = data.rfind(b"\n")
        if cut < 0:
            if len(data) >= self.MAX_POLL_BYTES:
                raise AISFormatError(
                    f"{self.path}: no newline within {self.MAX_POLL_BYTES} "
                    "bytes; not a line-oriented CSV feed"
                )
            return []
        # Parse the slice fully *before* committing the offset: a decode
        # or structure error must leave the follower exactly where it
        # was, so a retry (or an operator fixing the feed) re-reads the
        # same bytes instead of silently skipping the whole slice.
        text = data[: cut + 1].decode("utf-8")
        header = self._header
        if header is None and text.startswith("\ufeff"):
            text = text[1:]  # utf-8-sig BOM, possible only at file start
        rows = list(csv.reader(io.StringIO(text, newline=""), delimiter=self.delimiter))
        if header is None:
            if not rows:
                return []
            # Validate structure on the first sight of the header, like
            # read_csv_chunks: a broken dump fails immediately, not after
            # hours of appends.
            header = rows.pop(0)
            _map_header(header, str(self.path))
        width = len(header)
        cells = [row for row in rows if len(row) == width]
        tables = [
            _rows_to_table(header, cells[i : i + self.chunk_rows], str(self.path))
            for i in range(0, len(cells), self.chunk_rows)
        ]
        self._header = header
        self._offset += cut + 1
        self.rows_read += len(cells)
        return tables

    # -- persistence (daemon restarts must not re-ingest) ------------------

    def state(self):
        """JSON-ready resume point: byte offset, rows read, file identity.

        Persist this after downstream processing succeeds and hand it to
        :meth:`resume` on the next run -- re-polling from byte 0 would
        feed every historical row into the consumer a second time.
        """
        return {
            "offset": self._offset,
            "rows_read": self.rows_read,
            "inode": list(self._inode) if self._inode is not None else None,
        }

    def resume(self, state):
        """Continue a previous follower's position on the same file.

        Re-reads and re-validates the header from the top of the file
        (the offset already points past it), restores the byte offset,
        and pins the recorded file identity -- a dump replaced while the
        follower was down raises :class:`AISFormatError` rather than
        guessing whether re-reading would double-ingest; drop the saved
        state to deliberately start over on the new file.  Returns self.
        """
        offset = int(state["offset"])
        if offset <= 0:
            return self
        try:
            with open(self.path, "rb") as handle:
                stat = os.fstat(handle.fileno())
                header_line = handle.readline(offset)
        except FileNotFoundError:
            raise AISFormatError(
                f"{self.path}: cannot resume, file is gone; drop the saved "
                "follow state to start over"
            ) from None
        recorded = state.get("inode")
        # Across restarts only the inode number is compared: st_dev is
        # not stable across reboots/remounts, and rejecting an intact
        # file would force a destructive re-baseline.  (In-run polls
        # still compare the full (dev, ino) pair -- devices cannot
        # change under a live process without a remount-style rotation.)
        if recorded is not None and recorded[-1] != stat.st_ino:
            raise AISFormatError(
                f"{self.path}: file was replaced while the follower was down; "
                "drop the saved follow state to start over on the new file"
            )
        if stat.st_size < offset:
            raise AISFormatError(
                f"{self.path}: file shrank below the saved offset "
                f"({stat.st_size} < {offset}); drop the saved follow state "
                "to start over"
            )
        header = next(
            csv.reader([header_line.decode("utf-8").lstrip("\ufeff")],
                       delimiter=self.delimiter),
            None,
        )
        if not header:
            raise AISFormatError(f"{self.path}: cannot resume, no header row")
        _map_header(header, str(self.path))
        self._header = header
        self._offset = offset
        self._inode = (stat.st_dev, stat.st_ino)
        self.rows_read = int(state.get("rows_read", 0))
        return self


def read_parquet(path):
    """Load an AIS dump parquet file; requires pandas with a parquet engine.

    The container image may not ship pandas -- this entry point is gated,
    not a hard dependency: without pandas it raises ``RuntimeError``
    pointing at the CSV path instead of failing at import time.
    """
    try:
        import pandas as pd
    except ImportError as exc:
        raise RuntimeError(
            "read_parquet requires pandas (with a parquet engine such as "
            "pyarrow); install them or convert the dump to CSV for read_csv"
        ) from exc
    frame = pd.read_parquet(path)
    named = {str(name): frame[name].to_numpy() for name in frame.columns}
    return _from_named_columns(named, str(path))
