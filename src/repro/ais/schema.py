"""Canonical AIS column names.

Every :class:`repro.minidb.Table` flowing through the pipeline uses these
names; downstream code imports the constants instead of repeating string
literals.  ``TRIP_ID`` is added by :func:`repro.core.segment_trips`; the
raw feed carries the remaining columns.
"""

#: Vessel identifier (MMSI-like integer).
VESSEL_ID = "vessel_id"

#: Unix-style timestamp in seconds (float64).
T = "t"

#: Latitude in decimal degrees (WGS84).
LAT = "lat"

#: Longitude in decimal degrees (WGS84).
LON = "lon"

#: Speed over ground in knots.
SOG = "sog"

#: Course over ground in degrees [0, 360).
COG = "cog"

#: Vessel type label (e.g. ``"cargo"``, ``"fishing"``).
VESSEL_TYPE = "vessel_type"

#: Trip identifier assigned by segmentation (int64, globally unique).
TRIP_ID = "trip_id"

#: Columns expected in a raw (pre-segmentation) AIS table.
RAW_COLUMNS = (VESSEL_ID, T, LAT, LON, SOG, COG, VESSEL_TYPE)

#: Columns of a segmented trip table.
TRIP_COLUMNS = RAW_COLUMNS + (TRIP_ID,)
