"""AIS data model: the canonical column schema plus real-data loaders.

:mod:`repro.ais.schema` fixes the column names every layer shares;
:mod:`repro.ais.reader` maps public AIS dumps (MarineCadastre- and
Danish-Maritime-Authority-style CSV, parquet when pandas is available)
onto that schema, so the synthetic generators are one backend among
several.  :func:`read_csv_chunks` streams month-scale dumps as
bounded-memory chunks for the incremental fit path, and
:class:`CsvFollower` tails a still-growing dump for the live-refresh
serving daemon.
"""

from repro.ais import schema
from repro.ais.reader import (
    AISFormatError,
    CsvFollower,
    read_csv,
    read_csv_chunks,
    read_parquet,
)

__all__ = [
    "AISFormatError",
    "CsvFollower",
    "read_csv",
    "read_csv_chunks",
    "read_parquet",
    "schema",
]
