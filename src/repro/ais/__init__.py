"""AIS data model: the canonical column schema shared by every layer.

Kept separate from the generators so a future real-data loader (the
ROADMAP's next open item) can target the same schema.
"""

from repro.ais import schema

__all__ = ["schema"]
