"""Fit-once entry points that populate the serving registry.

This module is the bridge between the experiment harness (which knows
how to prepare datasets) and :mod:`repro.service` (which serves fitted
models): :func:`fit_and_save` is what ``python -m repro.service --fit``
runs, and :func:`dataset_fitter` builds the fit-on-miss callback a
:class:`repro.service.registry.ModelRegistry` can fall back to.
"""

import time
from dataclasses import dataclass
from pathlib import Path

from repro.core import HabitConfig, HabitImputer, TypedHabitImputer
from repro.experiments import common
from repro.service.registry import ModelRegistry

__all__ = ["FitReport", "dataset_fitter", "fit_and_save", "fit_habit"]


@dataclass(frozen=True)
class FitReport:
    """What one fit-and-save produced."""

    model_id: str
    path: Path
    dataset: str
    storage_bytes: int
    fit_seconds: float
    train_rows: int


def fit_habit(dataset, config=None, scale=1.0, seed=0, cache_dir=None, typed=False):
    """Prepare *dataset* and fit an imputer on its train split.

    With *typed*, a :class:`TypedHabitImputer` (one graph per vessel
    class plus a global fallback) is fitted instead of the plain model.
    """
    config = config or HabitConfig()
    prepared = common.prepare(dataset, scale=scale, cache_dir=cache_dir, seed=seed)
    cls = TypedHabitImputer if typed else HabitImputer
    imputer = cls(config).fit_from_trips(prepared.train)
    return imputer, prepared


def fit_and_save(
    dataset,
    config=None,
    registry_dir="models",
    scale=1.0,
    seed=0,
    cache_dir=None,
    typed=False,
):
    """Fit *dataset* and publish the model into *registry_dir*.

    Returns a :class:`FitReport`; the published ``.npz`` is immediately
    resolvable by any registry pointed at the same directory.
    """
    started = time.perf_counter()
    imputer, prepared = fit_habit(
        dataset, config=config, scale=scale, seed=seed, cache_dir=cache_dir, typed=typed
    )
    model_id, path = ModelRegistry(registry_dir).publish(dataset, imputer)
    return FitReport(
        model_id=model_id,
        path=path,
        dataset=dataset,
        storage_bytes=imputer.storage_size_bytes(),
        fit_seconds=time.perf_counter() - started,
        train_rows=prepared.train.num_rows,
    )


def dataset_fitter(scale=1.0, seed=0, cache_dir=None):
    """A ``fitter(dataset, config, typed=False)`` fit-on-miss callback.

    The registry passes ``typed=True`` when a typed model misses, so one
    callback serves both model kinds.
    """

    def fit(dataset, config, typed=False):
        imputer, _ = fit_habit(
            dataset,
            config=config,
            scale=scale,
            seed=seed,
            cache_dir=cache_dir,
            typed=typed,
        )
        return imputer

    return fit
