"""Experiment harness: dataset preparation shared by benchmarks and tests.

:mod:`repro.experiments.common` turns a named synthetic dataset into the
paper's experimental setup -- cleaned and segmented trips, a train/test
trip split, and ground-truthed evaluation gaps -- with on-disk caching so
benchmark sessions pay generation cost once.
"""

from repro.experiments import common

__all__ = ["common"]
