"""Dataset preparation: generate -> clean -> segment -> split -> gaps.

:func:`prepare` is the single entry point the benchmark suite and tests
use.  It builds (or loads from cache) a synthetic dataset, runs the
cleaning and segmentation stages, splits *trips* (not rows) into train
and test, and exposes :meth:`PreparedDataset.gaps`: synthetic evaluation
gaps cut from held-out test trips, keeping the hidden positions as ground
truth.
"""

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.ais import schema
from repro.core.annotate import clean_messages
from repro.core.segmentation import segment_trips
from repro.minidb import Table
from repro.sim.datasets import DatasetBundle, build_dataset

__all__ = [
    "GTI_DOWNSAMPLE_S",
    "Gap",
    "GapSweepCell",
    "PreparedDataset",
    "gap_sweep",
    "prepare",
]

#: Temporal downsampling used when fitting the GTI baseline (seconds).
GTI_DOWNSAMPLE_S = 60.0

#: Fraction of trips held out for evaluation.
TEST_FRACTION = 0.15

#: Seconds of context kept on each side of an evaluation gap.
GAP_LEAD_S = 900.0


@dataclass(frozen=True)
class Gap:
    """One evaluation gap: visible endpoints plus hidden ground truth."""

    start: tuple
    end: tuple
    truth_lats: np.ndarray
    truth_lngs: np.ndarray
    duration_s: float
    trip_id: int


@dataclass(frozen=True)
class PreparedDataset:
    """A dataset ready for experiments."""

    name: str
    scale: float
    seed: int
    bundle: DatasetBundle
    trips: Table
    train: Table
    test: Table

    def gaps(self, duration_s, lead_s=GAP_LEAD_S, max_per_trip=1):
        """Cut ground-truthed gaps of *duration_s* from the test trips.

        A gap starts *lead_s* seconds into a trip and must leave *lead_s*
        of tail context; trips too short for that are skipped.  The
        returned :class:`Gap` keeps the hidden span (boundary points
        included) as truth.
        """
        out = []
        trips = self.test
        t_all = np.asarray(trips.column(schema.T), dtype=np.float64)
        lat_all = np.asarray(trips.column(schema.LAT), dtype=np.float64)
        lng_all = np.asarray(trips.column(schema.LON), dtype=np.float64)
        trip_ids = np.asarray(trips.column(schema.TRIP_ID), dtype=np.int64)
        for trip_id in np.unique(trip_ids):
            rows = np.nonzero(trip_ids == trip_id)[0]
            order = rows[np.argsort(t_all[rows], kind="stable")]
            t = t_all[order]
            if len(t) < 4:
                continue
            made = 0
            cursor = t[0] + lead_s
            while made < max_per_trip and cursor + duration_s + lead_s <= t[-1]:
                i = int(np.searchsorted(t, cursor, side="right")) - 1
                j = int(np.searchsorted(t, cursor + duration_s, side="left"))
                if i < 1 or j > len(t) - 2 or j - i < 2:
                    break
                sel = order[i : j + 1]
                out.append(
                    Gap(
                        start=(float(lat_all[order[i]]), float(lng_all[order[i]])),
                        end=(float(lat_all[order[j]]), float(lng_all[order[j]])),
                        truth_lats=lat_all[sel],
                        truth_lngs=lng_all[sel],
                        duration_s=float(t[j] - t[i]),
                        trip_id=int(trip_id),
                    )
                )
                made += 1
                cursor = t[j] + lead_s
        return out


@dataclass(frozen=True)
class GapSweepCell:
    """One (duration, density) cell of a gap sweep."""

    duration_s: float
    max_per_trip: int
    gaps: list

    @property
    def num_gaps(self):
        """Number of evaluation gaps in this cell."""
        return len(self.gaps)


def gap_sweep(dataset, durations_s, densities=(1,), lead_s=GAP_LEAD_S):
    """Yield evaluation gaps across a duration x density grid.

    One harness run can then cover the paper's whole gap-duration axis
    (Figure 7) -- and how results move with gap *density* (gaps cut per
    test trip) -- instead of calling :meth:`PreparedDataset.gaps` once
    per configuration.  Yields a :class:`GapSweepCell` per combination,
    durations outermost, so consumers can stream cells without holding
    the full sweep in memory.
    """
    for duration_s in durations_s:
        for density in densities:
            yield GapSweepCell(
                duration_s=float(duration_s),
                max_per_trip=int(density),
                gaps=dataset.gaps(duration_s, lead_s=lead_s, max_per_trip=density),
            )


def _cache_path(cache_dir, name, scale, seed):
    return Path(cache_dir) / f"{name.lower()}_s{scale:g}_seed{seed}.npz"


def _save_tables(path, raw, trips):
    payload = {f"raw_{k}": v for k, v in raw.to_dict().items()}
    payload.update({f"trips_{k}": v for k, v in trips.to_dict().items()})
    np.savez(path, **payload)


def _load_tables(path):
    with np.load(path, allow_pickle=False) as data:
        raw = Table(
            {k[len("raw_") :]: data[k] for k in data.files if k.startswith("raw_")}
        )
        trips = Table(
            {k[len("trips_") :]: data[k] for k in data.files if k.startswith("trips_")}
        )
    return raw, trips


def _split_trips(trips, seed):
    """Deterministic train/test split by trip id (never by row)."""
    trip_ids = np.asarray(trips.column(schema.TRIP_ID), dtype=np.int64)
    unique_ids = np.unique(trip_ids)
    rng = np.random.default_rng(seed + 7_919)
    shuffled = rng.permutation(unique_ids)
    num_test = max(int(round(len(unique_ids) * TEST_FRACTION)), 1)
    test_ids = set(shuffled[:num_test].tolist())
    test_mask = np.isin(trip_ids, list(test_ids))
    return trips.filter(~test_mask), trips.filter(test_mask)


def prepare(name, scale=1.0, cache_dir=None, seed=0):
    """Prepare the named dataset for experiments.

    With *cache_dir*, the generated raw table and segmented trips are
    cached in one ``.npz`` keyed by ``(name, scale, seed)``; later calls
    load instead of regenerating.
    """
    cache_file = None
    if cache_dir is not None:
        cache_file = _cache_path(cache_dir, name, scale, seed)
    if cache_file is not None and cache_file.exists():
        raw, trips = _load_tables(cache_file)
        bundle = DatasetBundle(name=name, table=raw, scale=scale, seed=seed)
    else:
        bundle = build_dataset(name, scale=scale, seed=seed)
        trips = segment_trips(clean_messages(bundle.table))
        if cache_file is not None:
            cache_file.parent.mkdir(parents=True, exist_ok=True)
            _save_tables(cache_file, bundle.table, trips)
    train, test = _split_trips(trips, seed)
    return PreparedDataset(
        name=name,
        scale=scale,
        seed=seed,
        bundle=bundle,
        trips=trips,
        train=train,
        test=test,
    )
