"""Minimal GeoJSON writers (no external dependencies).

Builders return plain dicts in RFC 7946 shape; :func:`write_geojson`
serialises any of them to disk and returns the path.
"""

import json
from pathlib import Path

import numpy as np

__all__ = [
    "feature_collection",
    "linestring_feature",
    "point_feature",
    "write_geojson",
]


def _coords(lats, lngs):
    lats = np.asarray(lats, dtype=np.float64)
    lngs = np.asarray(lngs, dtype=np.float64)
    return [[float(lng), float(lat)] for lat, lng in zip(lats, lngs)]


def linestring_feature(lats, lngs, properties=None):
    """A LineString feature from parallel lat/lng arrays."""
    return {
        "type": "Feature",
        "geometry": {"type": "LineString", "coordinates": _coords(lats, lngs)},
        "properties": dict(properties or {}),
    }


def point_feature(lat, lng, properties=None):
    """A single Point feature."""
    return {
        "type": "Feature",
        "geometry": {"type": "Point", "coordinates": [float(lng), float(lat)]},
        "properties": dict(properties or {}),
    }


def feature_collection(features):
    """Wrap features into a FeatureCollection."""
    return {"type": "FeatureCollection", "features": list(features)}


def write_geojson(obj, path):
    """Serialise a GeoJSON dict to *path*; returns the :class:`Path`."""
    path = Path(path)
    path.write_text(json.dumps(obj))
    return path
