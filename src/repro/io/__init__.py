"""Export helpers (GeoJSON).

Imputed and ground-truth paths are exported as GeoJSON feature collections
so the paper's example figures (Figure 6) can be reproduced in any map
viewer.
"""

from repro.io.geojson import (
    feature_collection,
    linestring_feature,
    point_feature,
    write_geojson,
)

__all__ = [
    "feature_collection",
    "linestring_feature",
    "point_feature",
    "write_geojson",
]
