"""A miniature columnar table engine over NumPy arrays.

``minidb`` stands in for the analytical database the paper drives its
pipeline with (DuckDB-style CTEs): a :class:`Table` holds named columns as
flat arrays, :meth:`Table.group_by` runs sort-based aggregation kernels
(count, median, distinct, HyperLogLog approx-distinct), and
:meth:`Table.lag` is the window function behind transition extraction.
Everything is vectorised -- there are no per-row Python loops -- so the
200k-row benchmark workloads complete in milliseconds.

Submodules:

- :mod:`repro.minidb.table` -- the :class:`Table` and group-by machinery.
- :mod:`repro.minidb.agg` -- aggregate specifications (``agg.count()``,
  ``agg.median("sog")``, ``agg.approx_count_distinct("vessel_id")``, ...).
- :mod:`repro.minidb.hll` -- HyperLogLog sketches, standalone and grouped.
"""

from repro.minidb import agg
from repro.minidb.table import Table, factorize

__all__ = ["Table", "agg", "factorize"]
