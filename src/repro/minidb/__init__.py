"""A miniature columnar table engine over NumPy arrays.

``minidb`` stands in for the analytical database the paper drives its
pipeline with (DuckDB-style CTEs): a :class:`Table` holds named columns as
flat arrays, :meth:`Table.group_by` runs sort-based aggregation kernels
(count, median, distinct, HyperLogLog approx-distinct), and
:meth:`Table.lag` is the window function behind transition extraction.
Everything is vectorised -- there are no per-row Python loops -- so the
200k-row benchmark workloads complete in milliseconds.

Aggregation runs eagerly (``group_by(...).agg(...)``) or as mergeable
partial states (``group_by(...).partial(...)`` + :func:`merge_states` +
``state.finalize()``) so shards and streamed chunks combine into the same
result as one in-memory pass -- exactly for counts/distincts/HLL, within
t-digest tolerance for medians.

Submodules:

- :mod:`repro.minidb.table` -- the :class:`Table` and group-by machinery.
- :mod:`repro.minidb.agg` -- aggregate specifications (``agg.count()``,
  ``agg.median("sog")``, ``agg.approx_count_distinct("vessel_id")``, ...).
- :mod:`repro.minidb.hll` -- HyperLogLog sketches, standalone and grouped.
- :mod:`repro.minidb.tdigest` -- mergeable quantile sketches.
- :mod:`repro.minidb.partial` -- the partial-aggregate states behind
  the shard-and-merge path.
"""

from repro.minidb import agg
from repro.minidb.partial import GroupState, merge_states
from repro.minidb.table import Table, factorize
from repro.minidb.tdigest import GroupedTDigest, TDigest

__all__ = [
    "GroupState",
    "GroupedTDigest",
    "TDigest",
    "Table",
    "agg",
    "factorize",
    "merge_states",
]
