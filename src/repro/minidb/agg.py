"""Aggregate specifications for :meth:`repro.minidb.Table.group_by`.

Each helper returns an :class:`AggSpec` naming a kernel and an input column;
``.alias(name)`` renames the output column.  The mix mirrors the paper's
per-cell CTE: ``count``, ``approx_count_distinct`` (HyperLogLog), and
``median`` over position/speed/course columns.
"""

from dataclasses import dataclass, replace

__all__ = [
    "AggSpec",
    "approx_count_distinct",
    "count",
    "count_distinct",
    "first",
    "max",
    "mean",
    "median",
    "min",
    "sum",
]


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: *kind* kernel applied to *column*, emitted as *name*."""

    kind: str
    column: str | None
    name: str

    def alias(self, name):
        """Rename the output column."""
        return replace(self, name=name)


def count():
    """Rows per group."""
    return AggSpec("count", None, "count")


def median(column):
    """Exact per-group median of a numeric column."""
    return AggSpec("median", column, f"median_{column}")


def mean(column):
    """Per-group arithmetic mean."""
    return AggSpec("mean", column, f"mean_{column}")


def sum(column):  # noqa: A001 - mirrors SQL naming on purpose
    """Per-group sum."""
    return AggSpec("sum", column, f"sum_{column}")


def min(column):  # noqa: A001 - mirrors SQL naming on purpose
    """Per-group minimum."""
    return AggSpec("min", column, f"min_{column}")


def max(column):  # noqa: A001 - mirrors SQL naming on purpose
    """Per-group maximum."""
    return AggSpec("max", column, f"max_{column}")


def first(column):
    """First value per group in table order."""
    return AggSpec("first", column, f"first_{column}")


def count_distinct(column):
    """Exact per-group distinct count (the HLL ablation baseline)."""
    return AggSpec("count_distinct", column, f"distinct_{column}")


def approx_count_distinct(column):
    """HyperLogLog per-group distinct estimate (the paper's default)."""
    return AggSpec("approx_count_distinct", column, f"approx_distinct_{column}")
