"""Mergeable partial group-by states (the shard-and-merge aggregation path).

The eager :meth:`repro.minidb.Table.group_by(...).agg(...)
<repro.minidb.table.GroupBy.agg>` path needs every row in memory at once.
:meth:`~repro.minidb.table.GroupBy.partial` instead produces a
:class:`GroupState` -- a compact, serialisable summary of the same
aggregates over *one shard or chunk* of the rows -- and
:func:`merge_states` combines any number of states into one, however the
rows were partitioned.  ``state.finalize()`` renders the merged state as
the same table ``agg`` would have produced.

Equivalence contract (pinned by tests):

- ``count`` / ``count_distinct`` / ``min`` / ``max`` / ``first`` and the
  HyperLogLog ``approx_count_distinct`` are **exactly** equal to the
  eager one-shot result, bit for bit, for any partition of the rows.
- ``sum`` / ``mean`` agree up to float summation order.
- ``median`` is held as a mergeable t-digest
  (:mod:`repro.minidb.tdigest`), so it is approximate: the returned value
  lies within a rank error of about ``pi / delta`` of the exact median
  (exact when no centroids collided, i.e. small groups).

States carry their group *keys by value*, not by code -- group codes are
local to each shard and are re-factorised on merge -- and serialise to a
flat ``{name: array}`` payload (:meth:`GroupState.payload` /
:meth:`GroupState.from_payload`) so fit states can ride inside model
files.
"""

import json

import numpy as np

from repro.minidb.hll import (
    DEFAULT_P,
    estimate_from_register_pairs,
    grouped_register_pairs,
    merge_register_pairs,
)
from repro.minidb.tdigest import DEFAULT_DELTA, GroupedTDigest

__all__ = ["GroupState", "merge_states"]

#: Aggregate kinds with a mergeable state (every kind in ``minidb.agg``).
MERGEABLE_KINDS = frozenset(
    {
        "count",
        "sum",
        "mean",
        "min",
        "max",
        "first",
        "median",
        "count_distinct",
        "approx_count_distinct",
    }
)


def _unique_pairs(codes, values):
    """Deduplicate (group code, value) pairs; the exact-distinct state.

    Returns the pairs sorted by (code, value), which both the build and
    merge paths rely on for deterministic, order-identical states.
    """
    order = np.lexsort((values, codes))
    g, v = codes[order], values[order]
    fresh = np.ones(len(g), dtype=bool)
    fresh[1:] = (g[1:] != g[:-1]) | (v[1:] != v[:-1])
    return g[fresh], v[fresh]


class GroupState:
    """Partial aggregates for one shard, keyed by group-key values."""

    def __init__(self, key_names, key_columns, specs, counts, data):
        self.key_names = tuple(key_names)
        self.key_columns = dict(key_columns)
        self.specs = tuple(specs)
        self.counts = np.asarray(counts, dtype=np.int64)
        self.data = dict(data)

    @property
    def num_groups(self):
        """Groups summarised by this state."""
        return len(self.counts)

    def __repr__(self):
        names = ", ".join(s.name for s in self.specs)
        return f"GroupState({self.num_groups} groups: {names})"

    # -- construction ------------------------------------------------------

    @classmethod
    def from_table(cls, table, key_names, specs):
        """Build the partial state one shard of rows contributes.

        This is the kernel behind
        :meth:`repro.minidb.table.GroupBy.partial`.
        """
        # Local import: table.py lazily imports this module for .partial().
        from repro.minidb.table import _factorize_keys, _run_agg

        unknown = [s.kind for s in specs if s.kind not in MERGEABLE_KINDS]
        if unknown:
            raise ValueError(f"aggregate kinds {unknown} have no mergeable state")
        codes, key_columns = _factorize_keys(table, key_names)
        num_groups = len(next(iter(key_columns.values()))) if key_columns else 0
        counts = np.bincount(codes, minlength=num_groups).astype(np.int64)
        sorted_cache = {}
        data = {}
        for spec in specs:
            kind = spec.kind
            if kind == "count":
                state = None
            elif kind in ("sum", "mean"):
                values = table.column(spec.column)
                state = {"sum": np.bincount(codes, weights=values, minlength=num_groups)}
            elif kind in ("min", "max", "first"):
                state = {"values": _run_agg(table, spec, codes, num_groups, counts, sorted_cache)}
            elif kind == "median":
                state = {
                    "digest": GroupedTDigest.from_values(
                        codes, table.column(spec.column), num_groups, DEFAULT_DELTA
                    )
                }
            elif kind == "count_distinct":
                pair_codes, pair_values = _unique_pairs(codes, table.column(spec.column))
                state = {"codes": pair_codes, "values": pair_values}
            else:  # approx_count_distinct
                keys, rho = grouped_register_pairs(codes, table.column(spec.column))
                state = {"keys": keys, "rho": rho, "p": DEFAULT_P}
            data[spec.name] = state
        return cls(key_names, key_columns, specs, counts, data)

    # -- finalisation ------------------------------------------------------

    def finalize(self):
        """Render the state as the table ``group_by(...).agg(...)`` returns."""
        from repro.minidb.table import Table

        out = dict(self.key_columns)
        counts = self.counts
        for spec in self.specs:
            kind = spec.kind
            state = self.data[spec.name]
            if kind == "count":
                column = counts.copy()
            elif kind == "sum":
                column = state["sum"].copy()
            elif kind == "mean":
                column = state["sum"] / np.maximum(counts, 1)
            elif kind in ("min", "max", "first"):
                column = state["values"]
            elif kind == "median":
                column = state["digest"].medians()
            elif kind == "count_distinct":
                column = np.bincount(
                    state["codes"], minlength=self.num_groups
                ).astype(np.int64)
            else:  # approx_count_distinct
                column = estimate_from_register_pairs(
                    state["keys"], state["rho"], self.num_groups, state["p"]
                )
            out[spec.name] = column
        return Table(out)

    # -- serialisation -----------------------------------------------------

    def payload(self, prefix=""):
        """Flat ``{name: array}`` view for ``np.savez``-style persistence."""
        manifest = {
            "key_names": list(self.key_names),
            "specs": [
                {"kind": s.kind, "column": s.column, "name": s.name} for s in self.specs
            ],
        }
        out = {prefix + "manifest": np.array([json.dumps(manifest)])}
        for name in self.key_names:
            out[f"{prefix}key_{name}"] = self.key_columns[name]
        out[prefix + "counts"] = self.counts
        for i, spec in enumerate(self.specs):
            state = self.data[spec.name]
            tag = f"{prefix}s{i}_"
            if spec.kind == "count":
                continue
            if spec.kind in ("sum", "mean"):
                out[tag + "sum"] = state["sum"]
            elif spec.kind in ("min", "max", "first"):
                out[tag + "values"] = state["values"]
            elif spec.kind == "median":
                digest = state["digest"]
                out[tag + "codes"] = digest.codes
                out[tag + "means"] = digest.means
                out[tag + "weights"] = digest.weights
                out[tag + "delta"] = np.array([digest.delta], dtype=np.int64)
            elif spec.kind == "count_distinct":
                out[tag + "codes"] = state["codes"]
                out[tag + "values"] = state["values"]
            else:  # approx_count_distinct
                out[tag + "keys"] = state["keys"]
                out[tag + "rho"] = state["rho"]
                out[tag + "p"] = np.array([state["p"]], dtype=np.int64)
        return out

    @classmethod
    def from_payload(cls, data, prefix=""):
        """Rebuild a state from a :meth:`payload` mapping (dict or npz)."""
        from repro.minidb.agg import AggSpec

        manifest = json.loads(str(np.asarray(data[prefix + "manifest"])[0]))
        key_names = tuple(manifest["key_names"])
        specs = tuple(
            AggSpec(s["kind"], s["column"], s["name"]) for s in manifest["specs"]
        )
        key_columns = {name: np.asarray(data[f"{prefix}key_{name}"]) for name in key_names}
        counts = np.asarray(data[prefix + "counts"])
        num_groups = len(counts)
        state_data = {}
        for i, spec in enumerate(specs):
            tag = f"{prefix}s{i}_"
            if spec.kind == "count":
                state = None
            elif spec.kind in ("sum", "mean"):
                state = {"sum": np.asarray(data[tag + "sum"])}
            elif spec.kind in ("min", "max", "first"):
                state = {"values": np.asarray(data[tag + "values"])}
            elif spec.kind == "median":
                state = {
                    "digest": GroupedTDigest(
                        np.asarray(data[tag + "codes"]),
                        np.asarray(data[tag + "means"]),
                        np.asarray(data[tag + "weights"]),
                        num_groups,
                        int(np.asarray(data[tag + "delta"])[0]),
                    )
                }
            elif spec.kind == "count_distinct":
                state = {
                    "codes": np.asarray(data[tag + "codes"]),
                    "values": np.asarray(data[tag + "values"]),
                }
            else:
                state = {
                    "keys": np.asarray(data[tag + "keys"]),
                    "rho": np.asarray(data[tag + "rho"]),
                    "p": int(np.asarray(data[tag + "p"])[0]),
                }
            state_data[spec.name] = state
        return cls(key_names, key_columns, specs, counts, state_data)


def merge_states(states):
    """Merge :class:`GroupState` shards into one state over the union of groups.

    All states must share key names and aggregate specs.  ``first``
    resolves ties by argument order (the earliest state owning a group
    wins), matching a concatenation of the shards in that order.
    """
    states = [s for s in states if s is not None]
    if not states:
        raise ValueError("merge_states needs at least one state")
    head = states[0]
    for other in states[1:]:
        if other.key_names != head.key_names or [
            (s.kind, s.column, s.name) for s in other.specs
        ] != [(s.kind, s.column, s.name) for s in head.specs]:
            raise ValueError("cannot merge states with different keys or aggregates")
    if len(states) == 1:
        return head

    from repro.minidb.table import Table, _factorize_keys

    # Re-factorise the union of group keys; `maps[i]` sends state i's
    # local group index to the merged (key-sorted) group index.
    stacked = Table(
        {
            name: np.concatenate([s.key_columns[name] for s in states])
            for name in head.key_names
        }
    )
    codes, key_columns = _factorize_keys(stacked, head.key_names)
    num_groups = len(next(iter(key_columns.values()))) if key_columns else 0
    maps = []
    offset = 0
    for state in states:
        maps.append(codes[offset : offset + state.num_groups])
        offset += state.num_groups

    counts = np.zeros(num_groups, dtype=np.int64)
    for state, mapping in zip(states, maps):
        np.add.at(counts, mapping, state.counts)

    data = {}
    for spec in head.specs:
        kind = spec.kind
        parts = [s.data[spec.name] for s in states]
        if kind == "count":
            state = None
        elif kind in ("sum", "mean"):
            total = np.zeros(num_groups, dtype=np.float64)
            for part, mapping in zip(parts, maps):
                np.add.at(total, mapping, part["sum"])
            state = {"sum": total}
        elif kind in ("min", "max", "first"):
            state = {"values": _merge_extrema(kind, parts, maps, num_groups)}
        elif kind == "median":
            state = {
                "digest": GroupedTDigest.merged(
                    [p["digest"] for p in parts], maps, num_groups
                )
            }
        elif kind == "count_distinct":
            pair_codes, pair_values = _unique_pairs(
                np.concatenate([m[p["codes"]] for p, m in zip(parts, maps)]),
                np.concatenate([p["values"] for p in parts]),
            )
            state = {"codes": pair_codes, "values": pair_values}
        else:  # approx_count_distinct
            p_bits = parts[0]["p"]
            if any(part["p"] != p_bits for part in parts):
                raise ValueError("cannot merge HLL states of different precision")
            m = 1 << p_bits
            keys = np.concatenate(
                [
                    mapping[part["keys"] // m] * m + part["keys"] % m
                    for part, mapping in zip(parts, maps)
                ]
            )
            rho = np.concatenate([part["rho"] for part in parts])
            merged_keys, merged_rho = merge_register_pairs(keys, rho)
            state = {"keys": merged_keys, "rho": merged_rho, "p": p_bits}
        data[spec.name] = state
    return GroupState(head.key_names, key_columns, head.specs, counts, data)


def _merge_extrema(kind, parts, maps, num_groups):
    """Merge per-group min/max/first values across states."""
    codes = np.concatenate([m for m in maps])
    values = np.concatenate([p["values"] for p in parts])
    if kind == "first":
        # Earliest state owning the group wins: sort by (group, state index).
        state_idx = np.concatenate(
            [np.full(len(m), i, dtype=np.int64) for i, m in enumerate(maps)]
        )
        order = np.lexsort((state_idx, codes))
    else:
        order = np.lexsort((values, codes))
    g, v = codes[order], values[order]
    starts = np.ones(len(g), dtype=bool)
    starts[1:] = g[1:] != g[:-1]
    if kind == "max":
        ends = np.ones(len(g), dtype=bool)
        ends[:-1] = g[:-1] != g[1:]
        return v[ends]
    return v[starts]
