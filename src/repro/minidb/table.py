"""The columnar :class:`Table` and its sort-based aggregation kernels.

A table is an ordered mapping of column name to equal-length 1-D NumPy
array.  Tables are immutable in style: every operation returns a new table
sharing the untouched column arrays.  Group-by works by factorising the key
column(s) to dense codes, then running one vectorised kernel per aggregate
(``bincount`` for counts/sums, a single ``lexsort`` shared by the
order-statistic kernels, sparse HyperLogLog for approximate distincts).
"""

import numpy as np

from repro.minidb import agg as agg_mod
from repro.minidb.hll import grouped_approx_count_distinct

__all__ = ["Table", "GroupBy", "factorize"]


def factorize(values):
    """Map values to dense int64 codes; returns ``(codes, uniques)``."""
    uniques, codes = np.unique(np.asarray(values), return_inverse=True)
    return codes.astype(np.int64), uniques


class Table:
    """An immutable-style columnar table over NumPy arrays."""

    def __init__(self, columns):
        data = {}
        length = None
        for name, values in columns.items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be 1-D, got shape {arr.shape}")
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise ValueError(
                    f"column {name!r} has {len(arr)} rows, expected {length}"
                )
            data[name] = arr
        self._data = data
        self._length = 0 if length is None else length

    # -- basic access -----------------------------------------------------

    @property
    def num_rows(self):
        """Number of rows."""
        return self._length

    @property
    def column_names(self):
        """Column names in insertion order."""
        return list(self._data)

    def __len__(self):
        return self._length

    def __contains__(self, name):
        return name in self._data

    def __getitem__(self, name):
        return self._data[name]

    def column(self, name):
        """The backing array of a column."""
        return self._data[name]

    def to_dict(self):
        """Shallow copy as a plain ``{name: array}`` dict."""
        return dict(self._data)

    def __repr__(self):
        cols = ", ".join(self._data)
        return f"Table({self._length} rows: {cols})"

    # -- row/column algebra ----------------------------------------------

    def with_columns(self, **named):
        """New table with columns added or replaced."""
        data = dict(self._data)
        for name, values in named.items():
            data[name] = np.asarray(values)
        return Table(data)

    def drop(self, *names):
        """New table without the given columns."""
        return Table({k: v for k, v in self._data.items() if k not in names})

    def select(self, *names):
        """New table with only the given columns, in the given order."""
        return Table({name: self._data[name] for name in names})

    def filter(self, mask):
        """New table with rows where *mask* is true."""
        mask = np.asarray(mask)
        return Table({k: v[mask] for k, v in self._data.items()})

    def take(self, indices):
        """New table with rows gathered by integer index."""
        indices = np.asarray(indices)
        return Table({k: v[indices] for k, v in self._data.items()})

    def head(self, n):
        """First *n* rows."""
        return Table({k: v[:n] for k, v in self._data.items()})

    def sort_by(self, *names):
        """New table sorted by the given columns (first name is primary)."""
        keys = tuple(self._data[name] for name in reversed(names))
        return self.take(np.lexsort(keys))

    @classmethod
    def concat(cls, tables):
        """Stack tables with identical column sets."""
        tables = list(tables)
        if not tables:
            return cls({})
        names = tables[0].column_names
        return cls(
            {name: np.concatenate([t.column(name) for t in tables]) for name in names}
        )

    # -- analytics --------------------------------------------------------

    def group_by(self, *names):
        """Start a grouped aggregation keyed by one or more columns."""
        return GroupBy(self, names)

    def lag(self, value_column, partition_column, order_column, offset=1, default=0):
        """SQL-style LAG/LEAD window function.

        Returns, for each row, the value of *value_column* ``offset`` rows
        earlier (``offset > 0``) or later (``offset < 0``) within its
        partition ordered by *order_column*; *default* where no such row
        exists.  The result is aligned with the table's current row order.
        """
        if offset == 0:
            return self._data[value_column].copy()
        part_codes, _ = factorize(self._data[partition_column])
        order = np.lexsort((self._data[order_column], part_codes))
        values = self._data[value_column][order]
        parts = part_codes[order]
        k = abs(offset)
        shifted = np.empty_like(values)
        fill = np.asarray(default, dtype=values.dtype)
        if offset > 0:
            shifted[k:] = values[:-k]
            shifted[:k] = fill
            same = np.zeros(len(values), dtype=bool)
            same[k:] = parts[k:] == parts[:-k]
        else:
            shifted[:-k] = values[k:]
            shifted[-k:] = fill
            same = np.zeros(len(values), dtype=bool)
            same[:-k] = parts[:-k] == parts[k:]
        shifted = np.where(same, shifted, fill)
        out = np.empty_like(shifted)
        out[order] = shifted
        return out


class GroupBy:
    """Deferred grouped aggregation; finalised by :meth:`agg`."""

    def __init__(self, table, key_names):
        self._table = table
        self._key_names = key_names

    def agg(self, *specs):
        """Run the aggregate specs; returns a table of key + aggregate columns."""
        table = self._table
        codes, key_columns = _factorize_keys(table, self._key_names)
        num_groups = len(next(iter(key_columns.values()))) if key_columns else 0
        out = dict(key_columns)
        counts = np.bincount(codes, minlength=num_groups)
        sorted_cache = {}
        for spec in specs:
            out[spec.name] = _run_agg(
                table, spec, codes, num_groups, counts, sorted_cache
            )
        return Table(out)

    def partial(self, *specs):
        """Partial-aggregate this shard into a mergeable state.

        Returns a :class:`repro.minidb.partial.GroupState`; combine shard
        states with :func:`repro.minidb.merge_states` and render the final
        table with ``state.finalize()``.  Medians become t-digest
        approximations on this path; every other kernel merges exactly.
        """
        # Imported lazily: partial.py builds its states with this module's
        # kernels, so a top-level import would be circular.
        from repro.minidb.partial import GroupState

        return GroupState.from_table(self._table, self._key_names, specs)


def _factorize_keys(table, key_names):
    """Combine one or more key columns into dense group codes."""
    codes = None
    raw_codes = []
    for name in key_names:
        col_codes, _ = factorize(table.column(name))
        raw_codes.append(col_codes)
        if codes is None:
            codes = col_codes
        else:
            width = int(col_codes.max()) + 1 if len(col_codes) else 1
            codes = codes * width + col_codes
    if codes is None or len(codes) == 0:
        return np.zeros(0, dtype=np.int64), {
            name: table.column(name)[:0] for name in key_names
        }
    # Compress combined codes to a dense range and pick one representative
    # row per group for the key columns.
    _, first_rows, dense = np.unique(codes, return_index=True, return_inverse=True)
    key_columns = {name: table.column(name)[first_rows] for name in key_names}
    return dense.astype(np.int64), key_columns


def _grouped_order(codes, values, sorted_cache, column_key):
    """Rows lex-sorted by (group, value), cached per source column."""
    if column_key not in sorted_cache:
        order = np.lexsort((values, codes))
        sorted_cache[column_key] = (codes[order], values[order])
    return sorted_cache[column_key]


def _run_agg(table, spec, codes, num_groups, counts, sorted_cache):
    kind = spec.kind
    if kind == "count":
        return counts.astype(np.int64)
    values = table.column(spec.column)
    if kind == "sum":
        return np.bincount(codes, weights=values, minlength=num_groups)
    if kind == "mean":
        sums = np.bincount(codes, weights=values, minlength=num_groups)
        return sums / np.maximum(counts, 1)
    if kind == "first":
        first_idx = np.full(num_groups, -1, dtype=np.int64)
        # Reverse scatter: earlier rows overwrite later ones.
        first_idx[codes[::-1]] = np.arange(len(codes) - 1, -1, -1)
        return values[first_idx]
    if kind in ("median", "min", "max"):
        g, v = _grouped_order(codes, values, sorted_cache, spec.column)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        if kind == "min":
            return v[offsets]
        if kind == "max":
            return v[offsets + counts - 1]
        lo = v[offsets + (counts - 1) // 2]
        hi = v[offsets + counts // 2]
        return (lo + hi) / 2.0
    if kind == "count_distinct":
        g, v = _grouped_order(codes, values, sorted_cache, spec.column)
        fresh = np.ones(len(g), dtype=bool)
        fresh[1:] = (g[1:] != g[:-1]) | (v[1:] != v[:-1])
        return np.bincount(g[fresh], minlength=num_groups).astype(np.int64)
    if kind == "approx_count_distinct":
        return grouped_approx_count_distinct(codes, num_groups, values)
    raise ValueError(f"unknown aggregate kind {spec.kind!r}")


# Re-export the spec helpers so ``from repro.minidb import agg`` works both as
# a module (``agg.count()``) and for type access (``agg.AggSpec``).
AggSpec = agg_mod.AggSpec
