"""Mergeable quantile sketches (merging t-digest).

Exact medians need a full sort of every group's values, which is the one
kernel in :mod:`repro.minidb` that cannot be split across shards and
recombined.  The t-digest closes that gap: values are compressed into
per-group centroids ``(mean, weight)`` bucketed by a quantile scale
function, and two digests merge by concatenating centroids and
re-compressing.  Two shapes are provided, mirroring :mod:`repro.minidb.hll`:

- :class:`TDigest` -- a single sketch with ``add_array`` / ``merge`` /
  ``quantile``.
- :class:`GroupedTDigest` -- one digest per group-by group, stored as flat
  ``(code, mean, weight)`` arrays so building, merging and querying stay
  vectorised across hundreds of thousands of groups.

Accuracy: compression assigns each centroid to one of ``delta`` buckets of
the t-digest ``k1`` scale ``k(q) = delta * (asin(2q - 1) / pi + 1/2)``,
which is steepest at the tails and flattest at the median, where one
bucket spans about ``pi / delta`` of the rank range (~2.5 % at the default
``delta = 128``).  Quantile queries interpolate between centroid rank
midpoints, so any returned quantile lies within a few bucket widths of
the exact one; groups small enough that no centroids collide reproduce
exact sample quantiles (unit-weight centroids interpolate to the same
``(lo + hi) / 2`` median the eager kernel computes).
"""

import numpy as np

__all__ = ["DEFAULT_DELTA", "GroupedTDigest", "TDigest"]

#: Default compression: up to ``delta`` centroids per group, median rank
#: error on the order of ``pi / (2 * delta)`` (~1.2 %).
DEFAULT_DELTA = 128


def _compress(codes, means, weights, delta):
    """Re-cluster centroids into at most *delta* scale buckets per group.

    Returns ``(codes, means, weights)`` sorted by ``(code, mean)`` -- the
    canonical centroid order every other kernel relies on.
    """
    n = len(codes)
    if n == 0:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
            np.zeros(0, dtype=np.float64),
        )
    order = np.lexsort((means, codes))
    codes = codes[order]
    means = means[order]
    weights = weights[order]
    cumw = np.cumsum(weights)
    starts = np.ones(n, dtype=bool)
    starts[1:] = codes[1:] != codes[:-1]
    # Cumulative weight at each group's start, forward-filled to every
    # centroid, turns the global cumsum into a per-group one.
    start_idx = np.maximum.accumulate(np.where(starts, np.arange(n), 0))
    base = (cumw - weights)[start_idx]
    totals = np.bincount(codes, weights=weights, minlength=int(codes[-1]) + 1)
    q_mid = ((cumw - weights) - base + 0.5 * weights) / totals[codes]
    scale = (np.arcsin(2.0 * q_mid - 1.0) / np.pi + 0.5) * delta
    bucket = np.minimum(scale.astype(np.int64), delta - 1)
    key = codes * delta + bucket  # non-decreasing: q_mid grows within a group
    fresh = np.ones(n, dtype=bool)
    fresh[1:] = key[1:] != key[:-1]
    idx = np.flatnonzero(fresh)
    new_weights = np.add.reduceat(weights, idx)
    new_means = np.add.reduceat(weights * means, idx) / new_weights
    return codes[idx], new_means, new_weights


class GroupedTDigest:
    """One mergeable quantile sketch per group, in flat arrays.

    ``codes`` assigns each centroid to a group in ``[0, num_groups)``;
    centroids are kept sorted by ``(code, mean)``.  Instances are
    immutable in style: construction and :meth:`merged` always return
    freshly compressed arrays.
    """

    def __init__(self, codes, means, weights, num_groups, delta=DEFAULT_DELTA):
        self.codes = np.asarray(codes, dtype=np.int64)
        self.means = np.asarray(means, dtype=np.float64)
        self.weights = np.asarray(weights, dtype=np.float64)
        self.num_groups = int(num_groups)
        self.delta = int(delta)

    def __len__(self):
        return len(self.codes)

    @classmethod
    def from_values(cls, codes, values, num_groups, delta=DEFAULT_DELTA):
        """Build (and compress) a digest from per-row group codes and values."""
        codes = np.asarray(codes, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        c, m, w = _compress(codes, values, np.ones(len(values)), delta)
        return cls(c, m, w, num_groups, delta)

    @classmethod
    def merged(cls, digests, code_maps, num_groups):
        """Union digests whose group codes are remapped by *code_maps*.

        ``code_maps[i][g]`` is the merged group index of digest *i*'s
        group ``g``.  The result uses the first digest's ``delta``.
        """
        digests = list(digests)
        if not digests:
            return cls.from_values([], [], num_groups)
        delta = digests[0].delta
        codes = np.concatenate(
            [np.asarray(m, dtype=np.int64)[d.codes] for d, m in zip(digests, code_maps)]
        )
        means = np.concatenate([d.means for d in digests])
        weights = np.concatenate([d.weights for d in digests])
        return cls(*_compress(codes, means, weights, delta), num_groups, delta)

    def quantiles(self, q):
        """Per-group quantile estimates; NaN for groups with no centroids."""
        out = np.full(self.num_groups, np.nan)
        n = len(self.codes)
        if n == 0:
            return out
        codes, means, weights = self.codes, self.means, self.weights
        cumw = np.cumsum(weights)
        group_range = np.arange(self.num_groups)
        starts = np.searchsorted(codes, group_range, side="left")
        ends = np.searchsorted(codes, group_range, side="right")
        present = ends > starts
        if not np.any(present):
            return out
        starts = starts[present]
        ends = ends[present]
        base = np.where(starts > 0, cumw[starts - 1], 0.0)
        totals = cumw[ends - 1] - base
        target = base + q * totals
        # Interpolate between centroid rank midpoints (classic t-digest
        # query); mids increase globally, so one searchsorted serves all
        # groups at once, clamped back into each group's centroid range.
        mid = cumw - 0.5 * weights
        j = np.searchsorted(mid, target, side="left")
        lo = np.clip(j - 1, starts, ends - 1)
        hi = np.clip(j, starts, ends - 1)
        m_lo, m_hi = mid[lo], mid[hi]
        span = m_hi - m_lo
        frac = np.where(span > 0.0, (target - m_lo) / np.where(span > 0, span, 1.0), 0.0)
        frac = np.clip(frac, 0.0, 1.0)
        out[present] = means[lo] + frac * (means[hi] - means[lo])
        return out

    def medians(self):
        """Per-group median estimates."""
        return self.quantiles(0.5)


class TDigest:
    """A single mergeable quantile sketch (one-group :class:`GroupedTDigest`)."""

    def __init__(self, delta=DEFAULT_DELTA):
        self.delta = int(delta)
        self._digest = GroupedTDigest.from_values([], [], 1, delta)

    def __len__(self):
        return len(self._digest)

    @property
    def total_weight(self):
        """Number of values added (sum of centroid weights)."""
        return float(self._digest.weights.sum())

    def add(self, value):
        """Add a single value."""
        return self.add_array(np.asarray([value], dtype=np.float64))

    def add_array(self, values):
        """Bulk insert a 1-D array of values; returns self."""
        values = np.asarray(values, dtype=np.float64)
        codes = np.concatenate(
            [self._digest.codes, np.zeros(len(values), dtype=np.int64)]
        )
        means = np.concatenate([self._digest.means, values])
        weights = np.concatenate([self._digest.weights, np.ones(len(values))])
        self._digest = GroupedTDigest(
            *_compress(codes, means, weights, self.delta), 1, self.delta
        )
        return self

    def merge(self, other):
        """Union with another digest; returns self (keeps this delta)."""
        self._digest = GroupedTDigest.merged(
            [self._digest, other._digest], [np.zeros(1, np.int64)] * 2, 1
        )
        return self

    def quantile(self, q):
        """Estimated q-quantile of everything added; NaN when empty."""
        return float(self._digest.quantiles(q)[0])

    def median(self):
        """Estimated median."""
        return self.quantile(0.5)
