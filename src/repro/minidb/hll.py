"""HyperLogLog cardinality sketches.

Two shapes are provided:

- :class:`HyperLogLog` -- a single dense sketch with vectorised
  :meth:`~HyperLogLog.add_array` ingestion, used for whole-column distinct
  estimates and for the substrate benchmark.
- :func:`grouped_approx_count_distinct` -- a *sparse* grouped estimator used
  by ``approx_count_distinct`` inside group-by.  It never materialises a
  ``groups x registers`` matrix (200k near-singleton groups would need
  gigabytes); instead it sorts ``(group, register)`` pairs and reduces with
  ``bincount``, so memory stays O(rows).

Both use the classic Flajolet et al. estimator with the small-range
(linear counting) correction.
"""

import numpy as np

__all__ = [
    "HyperLogLog",
    "estimate_from_register_pairs",
    "grouped_approx_count_distinct",
    "grouped_register_pairs",
    "hash_array",
    "merge_register_pairs",
]

#: Default precision: 2**12 registers, ~1.6% relative standard error.
DEFAULT_P = 12


def _splitmix64(x):
    """SplitMix64 finaliser over a uint64 array (wrapping arithmetic)."""
    x = x + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> 30)) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> 27)) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> 31)


def hash_array(values):
    """Hash an arbitrary 1-D array to uint64 (vectorised for numeric dtypes)."""
    values = np.asarray(values)
    if values.dtype.kind in "iub":
        raw = values.astype(np.uint64, copy=False)
    elif values.dtype.kind == "f":
        raw = values.astype(np.float64, copy=False).view(np.uint64)
    else:
        # Object/str fallback: per-element Python hash (stable within a run).
        raw = np.array([hash(v) for v in values.tolist()], dtype=np.int64).astype(
            np.uint64
        )
    return _splitmix64(raw)


def _alpha(m):
    if m >= 128:
        return 0.7213 / (1.0 + 1.079 / m)
    if m == 64:
        return 0.709
    if m == 32:
        return 0.697
    return 0.673


def _register_parts(hashes, p):
    """Split hashes into register indices and rank-of-first-one values.

    The low ``64 - p`` bits drive the rank.  With ``p >= 11`` those fit a
    float64 mantissa exactly, so ``frexp`` gives exact bit lengths.
    """
    q = 64 - p
    idx = (hashes >> np.uint64(q)).astype(np.int64)
    low = (hashes & np.uint64((1 << q) - 1)).astype(np.float64)
    _, exponent = np.frexp(low)
    rho = np.where(low == 0.0, q + 1, q + 1 - exponent).astype(np.uint8)
    return idx, rho


def _estimate(m, sum_pow, zeros):
    """Raw HLL estimate with the linear-counting small-range correction."""
    est = _alpha(m) * m * m / sum_pow
    small = (est <= 2.5 * m) & (zeros > 0)
    with np.errstate(divide="ignore"):
        linear = m * np.log(np.where(zeros > 0, m / np.maximum(zeros, 1e-300), 1.0))
    return np.where(small, linear, est)


class HyperLogLog:
    """Dense HyperLogLog sketch with ``2**p`` uint8 registers."""

    def __init__(self, p=DEFAULT_P):
        if not 5 <= p <= 16:
            raise ValueError("p must be in [5, 16]")
        self.p = p
        self.m = 1 << p
        self.registers = np.zeros(self.m, dtype=np.uint8)

    def add(self, value):
        """Add a single value."""
        self.add_array(np.asarray([value]))

    def add_array(self, values):
        """Vectorised bulk insert of a 1-D array of values."""
        idx, rho = _register_parts(hash_array(values), self.p)
        np.maximum.at(self.registers, idx, rho)
        return self

    def merge(self, other):
        """Union this sketch with another of the same precision, in place."""
        if other.p != self.p:
            raise ValueError("cannot merge sketches of different precision")
        np.maximum(self.registers, other.registers, out=self.registers)
        return self

    def cardinality(self):
        """Estimated number of distinct values added."""
        powers = np.ldexp(1.0, -self.registers.astype(np.int64))
        zeros = int(np.count_nonzero(self.registers == 0))
        return float(_estimate(self.m, powers.sum(), np.asarray(zeros)))


def merge_register_pairs(keys, rho):
    """Max-reduce sparse ``(register key, rank)`` pairs onto unique keys.

    The sparse pair representation *is* the mergeable HLL state: states
    union by concatenating their pairs and re-reducing, and the reduced
    pairs are identical whether the rows arrived in one pass or many --
    the property the shard-and-merge fit relies on for exact equivalence.
    Returns ``(keys, rho)`` sorted by key.
    """
    keys = np.asarray(keys, dtype=np.int64)
    rho = np.asarray(rho, dtype=np.int64)
    # Sort by (key, rho); the last row of each key run carries the max rank.
    order = np.lexsort((rho, keys))
    sorted_keys = keys[order]
    sorted_rho = rho[order]
    last = np.ones(len(sorted_keys), dtype=bool)
    last[:-1] = sorted_keys[:-1] != sorted_keys[1:]
    return sorted_keys[last], sorted_rho[last]


def grouped_register_pairs(codes, values, p=DEFAULT_P):
    """Sparse per-group HLL state: ``(group * m + register, max rank)`` pairs."""
    codes = np.asarray(codes, dtype=np.int64)
    m = 1 << p
    idx, rho = _register_parts(hash_array(values), p)
    return merge_register_pairs(codes * m + idx, rho.astype(np.int64))


def estimate_from_register_pairs(keys, rho, num_groups, p=DEFAULT_P):
    """Per-group cardinality estimates from reduced register pairs."""
    m = 1 << p
    group_of_reg = keys // m
    sum_pow = np.bincount(
        group_of_reg, weights=np.ldexp(1.0, -rho), minlength=num_groups
    )
    occupied = np.bincount(group_of_reg, minlength=num_groups)
    zeros = m - occupied
    sum_pow = sum_pow + zeros  # absent registers contribute 2**0 each
    return _estimate(m, sum_pow, zeros)


def grouped_approx_count_distinct(codes, num_groups, values, p=DEFAULT_P):
    """Per-group HLL distinct estimates without dense register matrices.

    ``codes`` assigns each row to a group in ``[0, num_groups)``.  Returns a
    float64 array of estimates, one per group.
    """
    keys, rho = grouped_register_pairs(codes, values, p)
    return estimate_from_register_pairs(keys, rho, num_groups, p)
