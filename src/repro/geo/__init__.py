"""Planar geometry helpers: projection, simplification, turn statistics.

Positions are projected to local equirectangular metres (good to well under
a percent at trajectory scale) so every routine works in metric units:

- :func:`rdp_simplify` -- Ramer-Douglas-Peucker with a metre tolerance,
  the paper's post-imputation smoother (Table 3).
- :func:`vw_simplify` -- Visvalingam-Whyatt by effective triangle area,
  the ablation alternative.
- :class:`BudgetCompressor` / :func:`compress_to_budget` -- online
  SQUISH-style compression under a hard point budget, reporting achieved
  SED instead of taking an error threshold.
- :func:`turn_statistics` -- vertex counts and heading-change profile used
  to judge simplified paths.
"""

from repro.geo.budget import BudgetCompressor, BudgetResult, compress_to_budget
from repro.geo.proj import bearing_deg, latlng_to_xy_m, path_length_m
from repro.geo.simplify import rdp_simplify, vw_simplify
from repro.geo.turns import TurnStatistics, turn_statistics

__all__ = [
    "BudgetCompressor",
    "BudgetResult",
    "TurnStatistics",
    "bearing_deg",
    "compress_to_budget",
    "latlng_to_xy_m",
    "path_length_m",
    "rdp_simplify",
    "turn_statistics",
    "vw_simplify",
]
