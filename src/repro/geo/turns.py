"""Turn statistics over a polyline (Table 3's shape diagnostics)."""

from dataclasses import dataclass

import numpy as np

from repro.geo.proj import bearing_deg

__all__ = ["TurnStatistics", "turn_statistics"]


@dataclass(frozen=True)
class TurnStatistics:
    """Vertex count and heading-change profile of a path."""

    num_positions: int
    turns_over_45deg: int
    mean_abs_turn_deg: float
    max_abs_turn_deg: float
    total_abs_turn_deg: float


def turn_statistics(lats, lngs):
    """Per-vertex heading changes, wrapped to [-180, 180] degrees."""
    lats = np.asarray(lats, dtype=np.float64)
    n = len(lats)
    if n < 3:
        return TurnStatistics(n, 0, 0.0, 0.0, 0.0)
    bearings = bearing_deg(lats, lngs)
    turns = np.diff(bearings)
    turns = np.mod(turns + 180.0, 360.0) - 180.0
    abs_turns = np.abs(turns)
    return TurnStatistics(
        num_positions=n,
        turns_over_45deg=int(np.count_nonzero(abs_turns > 45.0)),
        mean_abs_turn_deg=float(abs_turns.mean()),
        max_abs_turn_deg=float(abs_turns.max()),
        total_abs_turn_deg=float(abs_turns.sum()),
    )
