"""Polyline simplification: Ramer-Douglas-Peucker and Visvalingam-Whyatt.

Both keep the endpoints, take metre-denominated thresholds, and return
``(lats, lngs)`` arrays.  RDP runs an explicit stack with vectorised
point-to-segment distances per span; VW maintains a heap of effective
triangle areas over a doubly-linked vertex list.
"""

import heapq

import numpy as np

from repro.geo.proj import latlng_to_xy_m

__all__ = ["rdp_simplify", "vw_simplify"]


def _point_segment_distance(px, py, ax, ay, bx, by):
    """Distances from points (px, py) to the segment (a, b), vectorised."""
    dx = bx - ax
    dy = by - ay
    seg_len2 = dx * dx + dy * dy
    if seg_len2 == 0.0:
        return np.hypot(px - ax, py - ay)
    t = np.clip(((px - ax) * dx + (py - ay) * dy) / seg_len2, 0.0, 1.0)
    return np.hypot(px - (ax + t * dx), py - (ay + t * dy))


def rdp_simplify(lats, lngs, tolerance_m):
    """Ramer-Douglas-Peucker simplification with a metre tolerance."""
    lats = np.asarray(lats, dtype=np.float64)
    lngs = np.asarray(lngs, dtype=np.float64)
    n = len(lats)
    if n <= 2 or tolerance_m <= 0.0:
        return lats.copy(), lngs.copy()
    x, y = latlng_to_xy_m(lats, lngs)
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[-1] = True
    stack = [(0, n - 1)]
    while stack:
        i, j = stack.pop()
        if j - i < 2:
            continue
        inner = slice(i + 1, j)
        dists = _point_segment_distance(
            x[inner], y[inner], x[i], y[i], x[j], y[j]
        )
        k = int(np.argmax(dists))
        if dists[k] > tolerance_m:
            split = i + 1 + k
            keep[split] = True
            stack.append((i, split))
            stack.append((split, j))
    return lats[keep], lngs[keep]


def _triangle_area(x, y, i, j, k):
    return 0.5 * abs(
        (x[j] - x[i]) * (y[k] - y[i]) - (x[k] - x[i]) * (y[j] - y[i])
    )


def vw_simplify(lats, lngs, min_area_m2):
    """Visvalingam-Whyatt simplification by effective triangle area (m^2).

    Vertices whose effective area is below *min_area_m2* are removed in
    increasing order of area; removing a vertex re-scores its neighbours.
    """
    lats = np.asarray(lats, dtype=np.float64)
    lngs = np.asarray(lngs, dtype=np.float64)
    n = len(lats)
    if n <= 2 or min_area_m2 <= 0.0:
        return lats.copy(), lngs.copy()
    x, y = latlng_to_xy_m(lats, lngs)
    prev = np.arange(n) - 1
    nxt = np.arange(n) + 1
    alive = np.ones(n, dtype=bool)
    version = np.zeros(n, dtype=np.int64)
    heap = []
    for i in range(1, n - 1):
        heapq.heappush(heap, (_triangle_area(x, y, i - 1, i, i + 1), i, 0))
    while heap:
        area, i, ver = heapq.heappop(heap)
        if not alive[i] or ver != version[i]:
            continue
        if area >= min_area_m2:
            break
        alive[i] = False
        p, q = prev[i], nxt[i]
        nxt[p], prev[q] = q, p
        for j in (p, q):
            if 0 < j < n - 1 and alive[j]:
                version[j] += 1
                heapq.heappush(
                    heap, (_triangle_area(x, y, prev[j], j, nxt[j]), j, version[j])
                )
    return lats[alive], lngs[alive]
