"""Polyline simplification: Ramer-Douglas-Peucker and Visvalingam-Whyatt.

Both keep the endpoints, take metre-denominated thresholds, and return
``(lats, lngs)`` arrays.  RDP runs an explicit stack with vectorised
point-to-segment distances per span; VW maintains a heap of effective
triangle areas over a doubly-linked vertex list.
"""

import heapq

import numpy as np

from repro.geo.proj import latlng_to_xy_m

__all__ = ["rdp_keep_indices", "rdp_simplify", "vw_simplify"]


def _point_segment_distance(px, py, ax, ay, bx, by):
    """Distances from points (px, py) to the segment (a, b), vectorised."""
    dx = bx - ax
    dy = by - ay
    seg_len2 = dx * dx + dy * dy
    if seg_len2 == 0.0:
        return np.hypot(px - ax, py - ay)
    t = np.clip(((px - ax) * dx + (py - ay) * dy) / seg_len2, 0.0, 1.0)
    return np.hypot(px - (ax + t * dx), py - (ay + t * dy))


def rdp_simplify(lats, lngs, tolerance_m):
    """Ramer-Douglas-Peucker simplification with a metre tolerance."""
    lats = np.asarray(lats, dtype=np.float64)
    lngs = np.asarray(lngs, dtype=np.float64)
    n = len(lats)
    if n <= 2 or tolerance_m <= 0.0:
        return lats.copy(), lngs.copy()
    x, y = latlng_to_xy_m(lats, lngs)
    kept_idx = rdp_keep_indices(x, y, tolerance_m)
    return lats[kept_idx], lngs[kept_idx]


def rdp_keep_indices(x, y, tolerance_m):
    """RDP keep-set over pre-projected coordinates; returns kept indices.

    The projection-free kernel behind :func:`rdp_simplify`, exposed so
    the imputation hot path can project a polyline once and share the
    coordinates between simplification and resampling.

    The span scan runs in scalar Python over coordinate lists: RDP sits
    on the per-query imputation hot path where spans are a few dozen
    points, and at that size per-call NumPy dispatch overhead dwarfs the
    arithmetic (the vectorised variant spent ~10x longer in
    ``np.clip``/``np.argmax`` bookkeeping than in actual math).  Squared
    distances avoid the hypot per point, and a vectorised pre-pass drops
    interior points lying within 0.1 mm of their neighbours' chord --
    degenerate vertices RDP could never retain at metre tolerances, but
    which hex-centre polylines produce in straight runs and which the
    scan would otherwise re-visit at every recursion level.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n = len(x)
    if n <= 2:
        return np.arange(n)
    orig = None
    if n > 3:
        cx = x[2:] - x[:-2]
        cy = y[2:] - y[:-2]
        ex = x[1:-1] - x[:-2]
        ey = y[1:-1] - y[:-2]
        chord2 = cx * cx + cy * cy
        cross = cx * ey - cy * ex
        dot = ex * cx + ey * cy
        # Distance-to-line equals distance-to-segment only for points
        # projecting inside the chord; out-and-back spikes (collinear
        # but beyond an endpoint, or over a degenerate chord) must
        # survive for the exact scan below to judge.
        collinear = (
            (chord2 > 0.0)
            & (dot >= 0.0)
            & (dot <= chord2)
            & (np.abs(cross) <= 1e-4 * np.sqrt(chord2))
        )
        if collinear.any():
            mask = np.concatenate(([True], ~collinear, [True]))
            orig = np.flatnonzero(mask)
            x = x[mask]
            y = y[mask]
            n = len(x)
    xs = x.tolist()
    ys = y.tolist()
    tol2 = float(tolerance_m) * float(tolerance_m)
    keep = bytearray(n)
    keep[0] = keep[n - 1] = 1
    stack = [(0, n - 1)]
    while stack:
        i, j = stack.pop()
        if j - i < 2:
            continue
        ax = xs[i]
        ay = ys[i]
        dx = xs[j] - ax
        dy = ys[j] - ay
        seg2 = dx * dx + dy * dy
        best = tol2
        arg = -1
        if seg2 == 0.0:
            for k in range(i + 1, j):
                ex = xs[k] - ax
                ey = ys[k] - ay
                d2 = ex * ex + ey * ey
                if d2 > best:
                    best = d2
                    arg = k
        else:
            inv = 1.0 / seg2
            bx = xs[j]
            by = ys[j]
            for k in range(i + 1, j):
                ex = xs[k] - ax
                ey = ys[k] - ay
                t = (ex * dx + ey * dy) * inv
                if t <= 0.0:
                    d2 = ex * ex + ey * ey
                elif t >= 1.0:
                    fx = xs[k] - bx
                    fy = ys[k] - by
                    d2 = fx * fx + fy * fy
                else:
                    fx = ex - t * dx
                    fy = ey - t * dy
                    d2 = fx * fx + fy * fy
                if d2 > best:
                    best = d2
                    arg = k
        if arg >= 0:
            keep[arg] = 1
            stack.append((i, arg))
            stack.append((arg, j))
    kept = np.frombuffer(bytes(keep), dtype=np.uint8).astype(bool)
    return orig[kept] if orig is not None else np.flatnonzero(kept)


def _triangle_area(x, y, i, j, k):
    return 0.5 * abs(
        (x[j] - x[i]) * (y[k] - y[i]) - (x[k] - x[i]) * (y[j] - y[i])
    )


def vw_simplify(lats, lngs, min_area_m2):
    """Visvalingam-Whyatt simplification by effective triangle area (m^2).

    Vertices whose effective area is below *min_area_m2* are removed in
    increasing order of area; removing a vertex re-scores its neighbours.
    """
    lats = np.asarray(lats, dtype=np.float64)
    lngs = np.asarray(lngs, dtype=np.float64)
    n = len(lats)
    if n <= 2 or min_area_m2 <= 0.0:
        return lats.copy(), lngs.copy()
    x, y = latlng_to_xy_m(lats, lngs)
    prev = np.arange(n) - 1
    nxt = np.arange(n) + 1
    alive = np.ones(n, dtype=bool)
    version = np.zeros(n, dtype=np.int64)
    heap = []
    for i in range(1, n - 1):
        heapq.heappush(heap, (_triangle_area(x, y, i - 1, i, i + 1), i, 0))
    while heap:
        area, i, ver = heapq.heappop(heap)
        if not alive[i] or ver != version[i]:
            continue
        if area >= min_area_m2:
            break
        alive[i] = False
        p, q = prev[i], nxt[i]
        nxt[p], prev[q] = q, p
        for j in (p, q):
            if 0 < j < n - 1 and alive[j]:
                version[j] += 1
                heapq.heappush(
                    heap, (_triangle_area(x, y, prev[j], j, nxt[j]), j, version[j])
                )
    return lats[alive], lngs[alive]
