"""Budget-constrained polyline compression (online SQUISH-style).

Fixed-threshold simplifiers (:func:`repro.geo.simplify.rdp_simplify`,
:func:`repro.geo.simplify.vw_simplify`) answer "drop everything below
error epsilon" -- the right tool when the caller knows an error bound but
not a size.  Serving and streaming ingest face the opposite constraint:
a hard *point budget* (response size, per-vessel buffer memory) with no
good epsilon known up front.  :class:`BudgetCompressor` inverts the
contract: ingest points one at a time, never retain more than
``max_points`` between pushes, and report the error you achieved instead
of the error you asked for.

The algorithm is SQUISH-E's budgeted half (Muckell et al.): a min-heap
over synchronized-Euclidean-distance (SED) contributions of interior
points on a doubly-linked vertex list.  When the buffer exceeds the
budget, the cheapest interior point is dropped and its priority is
*added* to both surviving neighbours' accumulated error before they are
re-scored.  That additive accumulation is what makes the reported error
sound: dropping ``m`` between ``u`` and ``v`` displaces the synchronized
position of any previously dropped point covered by ``(u, m)`` or
``(m, v)`` by at most ``SED(m; u, v)`` (the sync-map difference between
the old and new chords is affine in the sync parameter per piece, so it
is maximised at a piece endpoint), hence every dropped point's true SED
against the *final* polyline stays bounded by the accumulated error of a
surviving neighbour.  ``max_sed_m`` is the max of those accumulators --
an upper bound, never an undercount.

SED itself is the classic Trajcevski/Potamias error measure: the
distance from a dropped point to its time-interpolated position on the
chord between the surviving neighbours.  Without timestamps the ingest
index serves as the sync parameter, which degrades gracefully to
evenly-parameterised interpolation.

:func:`compress_to_budget` is the offline twin for batch paths: it runs
the same online pass (kept indices are identical by construction -- the
property suite pins this), then replaces the online error *bounds* with
the exactly recomputed SED of every dropped point against the output.
"""

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = ["BudgetCompressor", "BudgetResult", "compress_to_budget"]


@dataclass(frozen=True)
class BudgetResult:
    """Outcome of a budget compression pass.

    ``indices`` index the *pushed sequence* (strictly increasing; always
    includes the first and last pushed point).  ``max_sed_m`` and
    ``mean_sed_m`` are sound upper bounds on the SED of dropped points
    when produced by the online compressor, and exact recomputed values
    when produced by :func:`compress_to_budget`.
    """

    indices: np.ndarray
    points_in: int
    points_out: int
    max_sed_m: float
    mean_sed_m: float

    @property
    def points_dropped(self):
        return self.points_in - self.points_out


class BudgetCompressor:
    """Online polyline compressor under a hard point budget.

    Push points one at a time with :meth:`push`; between pushes the
    buffer never holds more than *max_points* of them.  :meth:`result`
    is a merge-free streaming finalize: it snapshots the current kept
    subsequence without disturbing the buffer, so a live ingest loop can
    keep pushing afterwards.

    >>> comp = BudgetCompressor(max_points=3)
    >>> for i, (px, py) in enumerate([(0, 0), (1, 50), (2, 0), (3, 60), (4, 0)]):
    ...     comp.push(px, py)
    >>> res = comp.result()
    >>> (res.points_in, res.points_out)
    (5, 3)
    """

    def __init__(self, max_points):
        if isinstance(max_points, bool) or not isinstance(max_points, int):
            raise TypeError(f"max_points must be an int, got {max_points!r}")
        if max_points < 2:
            raise ValueError(f"max_points must be >= 2, got {max_points}")
        self.max_points = max_points
        self._count = 0  # points pushed so far; also the next ingest index
        self._head = None
        self._tail = None
        # Buffered points, keyed by ingest index.  Dicts keep memory
        # proportional to the live buffer (evicted keys are deleted),
        # unlike the dense arrays vw_simplify can afford offline.
        self._x = {}
        self._y = {}
        self._t = {}
        self._prev = {}
        self._next = {}
        self._err = {}  # accumulated SED bound per buffered point
        self._version = {}
        self._heap = []  # lazy entries: (priority, ingest index, version)
        self._dropped = 0
        self._dropped_sed_sum = 0.0

    def __len__(self):
        return len(self._x)

    def _sed(self, idx):
        """SED of buffered interior point *idx* against its neighbours' chord."""
        u = self._prev[idx]
        v = self._next[idx]
        span = self._t[v] - self._t[u]
        if span > 0.0:
            frac = (self._t[idx] - self._t[u]) / span
            frac = 0.0 if frac < 0.0 else (1.0 if frac > 1.0 else frac)
        else:
            frac = 0.5
        sx = self._x[u] + frac * (self._x[v] - self._x[u])
        sy = self._y[u] + frac * (self._y[v] - self._y[u])
        dx = self._x[idx] - sx
        dy = self._y[idx] - sy
        return (dx * dx + dy * dy) ** 0.5

    def _score(self, idx):
        """(Re-)score an interior point and push a fresh heap entry."""
        self._version[idx] += 1
        priority = self._err[idx] + self._sed(idx)
        heapq.heappush(self._heap, (priority, idx, self._version[idx]))

    def push(self, x, y, t=None):
        """Ingest one point; evict the cheapest interior point if over budget."""
        idx = self._count
        self._count += 1
        self._x[idx] = float(x)
        self._y[idx] = float(y)
        self._t[idx] = float(idx) if t is None else float(t)
        self._prev[idx] = self._tail
        self._next[idx] = None
        self._err[idx] = 0.0
        self._version[idx] = 0
        if self._head is None:
            self._head = idx
        else:
            self._next[self._tail] = idx
        old_tail = self._tail
        self._tail = idx
        # The previous tail just became interior: it gains a priority.
        if old_tail is not None and self._prev[old_tail] is not None:
            self._score(old_tail)
        if len(self._x) > self.max_points:
            self._evict()

    def _evict(self):
        while True:
            priority, idx, version = heapq.heappop(self._heap)
            if idx in self._version and version == self._version[idx]:
                break
        u = self._prev[idx]
        v = self._next[idx]
        self._next[u] = v
        self._prev[v] = u
        for table in (
            self._x,
            self._y,
            self._t,
            self._prev,
            self._next,
            self._err,
            self._version,
        ):
            del table[idx]
        # Additive error accumulation (SQUISH-E): the evicted point's
        # priority already bounds the SED of everything it was covering;
        # handing it to both neighbours keeps the invariant that every
        # dropped point's true SED is bounded by a survivor's accumulator.
        self._err[u] += priority
        self._err[v] += priority
        self._dropped += 1
        self._dropped_sed_sum += priority
        if self._prev[u] is not None:
            self._score(u)
        if self._next[v] is not None:
            self._score(v)

    def result(self):
        """Snapshot the kept subsequence; the buffer stays live for more pushes."""
        indices = np.empty(len(self._x), dtype=np.int64)
        idx = self._head
        pos = 0
        while idx is not None:
            indices[pos] = idx
            pos += 1
            idx = self._next[idx]
        if self._dropped:
            max_sed = max(self._err.values())
            mean_sed = self._dropped_sed_sum / self._dropped
        else:
            max_sed = 0.0
            mean_sed = 0.0
        return BudgetResult(
            indices=indices,
            points_in=self._count,
            points_out=len(indices),
            max_sed_m=float(max_sed),
            mean_sed_m=float(mean_sed),
        )


def _exact_dropped_sed(x, y, t, kept):
    """Exact SED of every dropped point against the kept polyline."""
    n = len(x)
    mask = np.zeros(n, dtype=bool)
    mask[kept] = True
    dropped = np.flatnonzero(~mask)
    if len(dropped) == 0:
        return np.empty(0, dtype=np.float64)
    # Each dropped point lies strictly between two consecutive kept
    # indices; searchsorted finds its covering chord.
    seg = np.searchsorted(kept, dropped) - 1
    u = kept[seg]
    v = kept[seg + 1]
    span = t[v] - t[u]
    with np.errstate(divide="ignore", invalid="ignore"):
        frac = np.where(span > 0.0, (t[dropped] - t[u]) / np.where(span > 0.0, span, 1.0), 0.5)
    frac = np.clip(frac, 0.0, 1.0)
    sx = x[u] + frac * (x[v] - x[u])
    sy = y[u] + frac * (y[v] - y[u])
    return np.hypot(x[dropped] - sx, y[dropped] - sy)


def compress_to_budget(x, y, max_points, t=None):
    """Offline twin of :class:`BudgetCompressor` for batch polylines.

    Runs the same online pass point by point (the kept subsequence is
    identical to streaming ingest by construction), then replaces the
    online error *bounds* with the exact SED of each dropped point
    recomputed against the output polyline.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if t is not None:
        t = np.asarray(t, dtype=np.float64)
        if t.shape != x.shape:
            raise ValueError("t must match x/y in length")
    comp = BudgetCompressor(max_points)
    for i in range(len(x)):
        comp.push(x[i], y[i], None if t is None else t[i])
    res = comp.result()
    if res.points_dropped == 0:
        return res
    sync = np.arange(len(x), dtype=np.float64) if t is None else t
    sed = _exact_dropped_sed(x, y, sync, res.indices)
    return BudgetResult(
        indices=res.indices,
        points_in=res.points_in,
        points_out=res.points_out,
        max_sed_m=float(sed.max()),
        mean_sed_m=float(sed.mean()),
    )
