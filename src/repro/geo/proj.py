"""Local equirectangular projection and bearings (vectorised)."""

import numpy as np

from repro.hexgrid.cells import M_PER_DEG

__all__ = ["M_PER_DEG", "bearing_deg", "latlng_to_xy_m", "path_length_m"]


def latlng_to_xy_m(lats, lngs, lat0=None):
    """Project to metres on a plane tangent near *lat0* (default: mean lat).

    Adequate for trajectory-scale geometry; all simplifiers and metrics in
    this package operate on these coordinates.
    """
    lats = np.asarray(lats, dtype=np.float64)
    lngs = np.asarray(lngs, dtype=np.float64)
    if lat0 is None:
        lat0 = float(lats.mean()) if lats.size else 0.0
    x = lngs * M_PER_DEG * np.cos(np.radians(lat0))
    y = lats * M_PER_DEG
    return x, y


def path_length_m(lats, lngs):
    """Total polyline length in metres."""
    x, y = latlng_to_xy_m(lats, lngs)
    return float(np.hypot(np.diff(x), np.diff(y)).sum())


def bearing_deg(lats, lngs):
    """Bearing of each segment in degrees [0, 360); length ``n - 1``."""
    x, y = latlng_to_xy_m(lats, lngs)
    angles = np.degrees(np.arctan2(np.diff(x), np.diff(y)))
    return np.mod(angles, 360.0)
