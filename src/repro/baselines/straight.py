"""The straight-line (SLI) baseline imputer."""

from repro.core.path import straight_line_path

__all__ = ["StraightLineImputer"]


class StraightLineImputer:
    """Linear interpolation between gap endpoints; needs no fitting."""

    def __init__(self, step_m=250.0):
        self.step_m = step_m

    def fit_from_trips(self, trips):
        """No-op, for interface parity with the learned imputers."""
        return self

    def impute(self, start, end):
        """Straight path between ``(lat, lng)`` endpoints."""
        return straight_line_path(start, end, step_m=self.step_m)

    def storage_size_bytes(self):
        """SLI keeps no model."""
        return 0
