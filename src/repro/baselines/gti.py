"""GTI: graph-based trajectory imputation over a point graph.

The historical stream is downsampled per trip (``downsample_s``), then
every retained position becomes a graph node after merging: positions are
quantised to an ``rd_deg`` lat/lng lattice and co-located reports collapse
into one node at their mean position.  Edges connect nodes observed
consecutively within a trip, weighted by metric length.  Queries snap the
gap endpoints to the nearest node (``rm_m`` is the intended matching
radius; beyond it the nearest node is still used so queries always
answer) and route with plain Dijkstra -- no admissible heuristic exists on
an irregular point graph, which is exactly why GTI pays an
order-of-magnitude latency penalty versus HABIT's cell A*.
"""

import heapq
from dataclasses import dataclass

import numpy as np

from repro.ais import schema
from repro.core.path import ImputedPath, resample_polyline, straight_line_path
from repro.geo.proj import latlng_to_xy_m
from repro.minidb import factorize

__all__ = ["GTIConfig", "GTIImputer"]


@dataclass(frozen=True)
class GTIConfig:
    """GTI knobs: merge lattice, snap radius, temporal downsampling."""

    rm_m: float = 250.0
    rd_deg: float = 5e-4
    downsample_s: float = 60.0
    resample_m: float = 250.0


def _downsample(trips, interval_s):
    """Keep the first report of each per-trip time bucket (vectorised)."""
    ordered = trips.sort_by(schema.TRIP_ID, schema.T)
    trip = np.asarray(ordered.column(schema.TRIP_ID), dtype=np.int64)
    t = np.asarray(ordered.column(schema.T), dtype=np.float64)
    if len(t) == 0:
        return ordered
    trip_codes, _ = factorize(trip)
    t0 = np.zeros(trip_codes.max() + 1 if len(trip_codes) else 0)
    first = np.ones(len(t), dtype=bool)
    first[1:] = trip_codes[1:] != trip_codes[:-1]
    t0[trip_codes[first]] = t[first]
    bucket = np.floor((t - t0[trip_codes]) / max(interval_s, 1e-9)).astype(np.int64)
    keep = np.ones(len(t), dtype=bool)
    keep[1:] = (trip_codes[1:] != trip_codes[:-1]) | (bucket[1:] != bucket[:-1])
    return ordered.filter(keep)


class GTIImputer:
    """Dijkstra router over a merged point graph of historical positions."""

    def __init__(self, config=None):
        self.config = config or GTIConfig()
        self.node_lats = None
        self.node_lngs = None
        self.edge_src = None
        self.edge_dst = None
        self.edge_cost = None
        self.adjacency = None

    # -- fitting ----------------------------------------------------------

    def fit_from_trips(self, trips):
        """Build the point graph from a segmented trip table; returns self."""
        config = self.config
        sampled = _downsample(trips, config.downsample_s)
        lat = np.asarray(sampled.column(schema.LAT), dtype=np.float64)
        lon = np.asarray(sampled.column(schema.LON), dtype=np.float64)
        trip = np.asarray(sampled.column(schema.TRIP_ID), dtype=np.int64)

        # Merge positions on the rd_deg lattice.
        qlat = np.round(lat / config.rd_deg).astype(np.int64)
        qlng = np.round(lon / config.rd_deg).astype(np.int64)
        lattice = qlat * np.int64(2**31) + qlng
        codes, _ = factorize(lattice)
        num_nodes = int(codes.max()) + 1 if len(codes) else 0
        counts = np.bincount(codes, minlength=num_nodes).astype(np.float64)
        counts = np.maximum(counts, 1.0)
        self.node_lats = np.bincount(codes, weights=lat, minlength=num_nodes) / counts
        self.node_lngs = np.bincount(codes, weights=lon, minlength=num_nodes) / counts

        # Directed edges between consecutive samples of the same trip.
        same_trip = trip[1:] == trip[:-1]
        src = codes[:-1][same_trip]
        dst = codes[1:][same_trip]
        moved = src != dst
        src, dst = src[moved], dst[moved]
        pair = src * np.int64(max(num_nodes, 1)) + dst
        uniq_pair, pair_counts = np.unique(pair, return_counts=True)
        self.edge_src = (uniq_pair // max(num_nodes, 1)).astype(np.int64)
        self.edge_dst = (uniq_pair % max(num_nodes, 1)).astype(np.int64)
        x, y = latlng_to_xy_m(self.node_lats, self.node_lngs)
        self.edge_cost = np.hypot(
            x[self.edge_src] - x[self.edge_dst], y[self.edge_src] - y[self.edge_dst]
        )
        self.edge_counts = pair_counts.astype(np.int64)
        self.adjacency = {}
        for s, d, c in zip(self.edge_src, self.edge_dst, self.edge_cost):
            self.adjacency.setdefault(int(s), []).append((int(d), float(c)))
        return self

    def _require_fitted(self):
        if self.adjacency is None:
            raise RuntimeError("GTIImputer.impute called before fit_from_trips")

    # -- querying ---------------------------------------------------------

    @property
    def num_nodes(self):
        """Number of merged point nodes."""
        self._require_fitted()
        return len(self.node_lats)

    @property
    def num_edges(self):
        """Number of directed edges."""
        self._require_fitted()
        return len(self.edge_src)

    def storage_size_bytes(self):
        """Model footprint: node coordinates plus the edge arrays."""
        self._require_fitted()
        return int(
            self.node_lats.nbytes
            + self.node_lngs.nbytes
            + self.edge_src.nbytes
            + self.edge_dst.nbytes
            + self.edge_cost.nbytes
            + self.edge_counts.nbytes
        )

    def _snap(self, lat, lng):
        x, y = latlng_to_xy_m(self.node_lats, self.node_lngs, lat0=lat)
        px, py = latlng_to_xy_m(np.asarray([lat]), np.asarray([lng]), lat0=lat)
        return int(np.argmin(np.hypot(x - px[0], y - py[0])))

    def _dijkstra(self, src, dst):
        frontier = [(0.0, src)]
        dist = {src: 0.0}
        came_from = {}
        closed = set()
        while frontier:
            d, node = heapq.heappop(frontier)
            if node == dst:
                path = [node]
                while node in came_from:
                    node = came_from[node]
                    path.append(node)
                path.reverse()
                return path
            if node in closed:
                continue
            closed.add(node)
            for neighbour, cost in self.adjacency.get(node, ()):
                if neighbour in closed:
                    continue
                tentative = d + cost
                if tentative < dist.get(neighbour, np.inf):
                    dist[neighbour] = tentative
                    came_from[neighbour] = node
                    heapq.heappush(frontier, (tentative, neighbour))
        return None

    def impute(self, start, end):
        """Route between ``(lat, lng)`` endpoints over the point graph."""
        self._require_fitted()
        if self.num_nodes == 0:
            return straight_line_path(start, end, method="fallback")
        src = self._snap(float(start[0]), float(start[1]))
        dst = self._snap(float(end[0]), float(end[1]))
        node_path = self._dijkstra(src, dst)
        if node_path is None:
            return straight_line_path(start, end, method="fallback")
        lats = np.empty(len(node_path) + 2)
        lngs = np.empty(len(node_path) + 2)
        lats[0], lngs[0] = float(start[0]), float(start[1])
        lats[-1], lngs[-1] = float(end[0]), float(end[1])
        lats[1:-1] = self.node_lats[node_path]
        lngs[1:-1] = self.node_lngs[node_path]
        if self.config.resample_m > 0.0:
            lats, lngs = resample_polyline(lats, lngs, self.config.resample_m)
        return ImputedPath(lats=lats, lngs=lngs, method="dijkstra")
