"""Baseline imputers the paper compares HABIT against.

- :class:`StraightLineImputer` (SLI): linear interpolation between the gap
  endpoints -- the no-knowledge floor.
- :class:`GTIImputer`: graph-based trajectory imputation over a *point*
  graph of downsampled historical positions, routed with Dijkstra.  It
  carries an order of magnitude more nodes than HABIT's cell graph, which
  is the storage/latency contrast in Tables 2 and 4.
"""

from repro.baselines.gti import GTIConfig, GTIImputer
from repro.baselines.straight import StraightLineImputer

__all__ = ["GTIConfig", "GTIImputer", "StraightLineImputer"]
