"""Axial hex-cell math: packing, indexing, distances and rings.

All bulk entry points accept and return NumPy arrays and never loop in
Python; the scalar wrappers exist for the A* inner loop where cells are
touched one at a time.
"""

import math

import numpy as np

#: Metres per degree of latitude (and of longitude at the equator).
M_PER_DEG = 111_320.0

#: Resolution-0 hex edge length in metres (H3-like); each finer resolution
#: divides the edge by sqrt(7) (aperture-7 progression).
EDGE0_M = 1_107_712.591

_SQRT3 = math.sqrt(3.0)
_SQRT7 = math.sqrt(7.0)

# int64 cell id layout: | res (4 bits) << 56 | q+OFFSET (28 bits) << 28 | r+OFFSET |
_OFFSET = 1 << 27
_FIELD_MASK = (1 << 28) - 1
_MAX_RES = 15


def cell_edge_length_m(resolution):
    """Hex edge length in metres at *resolution*."""
    return EDGE0_M / (_SQRT7**resolution)


def _check_resolution(resolution):
    if not 0 <= resolution <= _MAX_RES:
        raise ValueError(f"resolution must be in [0, {_MAX_RES}], got {resolution}")


def _pack(resolution, q, r):
    """Pack axial coordinates into int64 cell ids (array-safe)."""
    return (
        (np.int64(resolution) << 56)
        | ((q.astype(np.int64) + _OFFSET) << 28)
        | (r.astype(np.int64) + _OFFSET)
    )


def _unpack(cells):
    """Inverse of :func:`_pack`; returns ``(resolution, q, r)`` arrays."""
    cells = np.asarray(cells, dtype=np.int64)
    res = cells >> 56
    q = ((cells >> 28) & _FIELD_MASK) - _OFFSET
    r = (cells & _FIELD_MASK) - _OFFSET
    return res, q, r


def cell_resolution(cell):
    """Resolution encoded in a cell id (works on scalars and arrays)."""
    return np.asarray(cell, dtype=np.int64) >> 56


def cell_axial_array(cells):
    """Vectorised axial unpack: packed cell ids to ``(q, r)`` int64 arrays.

    The bulk twin of the bit-shift inside :func:`grid_distance`; search
    engines precompute per-node ``(q, r)`` with this once so per-query
    heuristics become two integer subtractions on arrays instead of a
    scalar bit-unpack per edge relaxation.
    """
    cells = np.asarray(cells, dtype=np.int64)
    q = ((cells >> 28) & _FIELD_MASK) - _OFFSET
    r = (cells & _FIELD_MASK) - _OFFSET
    return q, r


def _project(lats, lngs):
    """Equirectangular forward projection to metres."""
    lats = np.asarray(lats, dtype=np.float64)
    lngs = np.asarray(lngs, dtype=np.float64)
    y = lats * M_PER_DEG
    x = lngs * M_PER_DEG * np.cos(np.radians(lats))
    return x, y


def _unproject(x, y):
    """Inverse of :func:`_project`."""
    lats = y / M_PER_DEG
    lngs = x / (M_PER_DEG * np.cos(np.radians(lats)))
    return lats, lngs


def _axial_round(qf, rf):
    """Round fractional axial coordinates to the containing hex (cube round)."""
    sf = -qf - rf
    q = np.round(qf)
    r = np.round(rf)
    s = np.round(sf)
    dq = np.abs(q - qf)
    dr = np.abs(r - rf)
    ds = np.abs(s - sf)
    fix_q = (dq > dr) & (dq > ds)
    fix_r = ~fix_q & (dr > ds)
    q = np.where(fix_q, -r - s, q)
    r = np.where(fix_r, -q - s, r)
    return q.astype(np.int64), r.astype(np.int64)


def latlng_to_cell_array(lats, lngs, resolution):
    """Index positions into hex cells; the bulk kernel behind every fit.

    Returns an ``int64`` array of packed cell ids.
    """
    _check_resolution(resolution)
    size = cell_edge_length_m(resolution)
    x, y = _project(lats, lngs)
    qf = (_SQRT3 / 3.0 * x - y / 3.0) / size
    rf = (2.0 / 3.0 * y) / size
    q, r = _axial_round(qf, rf)
    return _pack(resolution, q, r)


def latlng_to_cell(lat, lng, resolution):
    """Scalar version of :func:`latlng_to_cell_array`.

    Pure ``math``-module arithmetic (no array round trip) because this
    sits on the per-query serve path; mirrors the array kernel operation
    for operation so both index identically (pinned by the scalar/array
    parity tests).
    """
    _check_resolution(resolution)
    size = EDGE0_M / (_SQRT7**resolution)
    lat = float(lat)
    y = lat * M_PER_DEG
    x = float(lng) * M_PER_DEG * math.cos(math.radians(lat))
    qf = (_SQRT3 / 3.0 * x - y / 3.0) / size
    rf = (2.0 / 3.0 * y) / size
    sf = -qf - rf
    q = round(qf)
    r = round(rf)
    s = round(sf)
    dq = abs(q - qf)
    dr = abs(r - rf)
    ds = abs(s - sf)
    if dq > dr and dq > ds:
        q = -r - s
    elif dr > ds:
        r = -q - s
    return (resolution << 56) | ((int(q) + _OFFSET) << 28) | (int(r) + _OFFSET)


def cell_to_latlng_array(cells):
    """Cell centres as ``(lats, lngs)`` arrays."""
    res, q, r = _unpack(cells)
    size = EDGE0_M / (_SQRT7 ** res.astype(np.float64))
    x = size * _SQRT3 * (q + r / 2.0)
    y = size * 1.5 * r
    return _unproject(x, y)


def cell_to_latlng(cell):
    """Scalar cell centre as a ``(lat, lng)`` tuple."""
    lats, lngs = cell_to_latlng_array(np.int64(cell))
    return float(lats), float(lngs)


def grid_distance_array(cells_a, cells_b):
    """Hex grid distance (number of cell steps) between paired cells.

    Both inputs must share a resolution; broadcasting against a scalar cell
    is supported (used by the nearest-node full scan).
    """
    res_a, qa, ra = _unpack(cells_a)
    res_b, qb, rb = _unpack(cells_b)
    if np.any(res_a != res_b):
        raise ValueError("grid_distance requires cells of equal resolution")
    dq = qa - qb
    dr = ra - rb
    return (np.abs(dq) + np.abs(dr) + np.abs(dq + dr)) // 2


def grid_distance(cell_a, cell_b):
    """Scalar hex grid distance (A* heuristic hot path; no array overhead)."""
    qa = ((cell_a >> 28) & _FIELD_MASK) - _OFFSET
    ra = (cell_a & _FIELD_MASK) - _OFFSET
    qb = ((cell_b >> 28) & _FIELD_MASK) - _OFFSET
    rb = (cell_b & _FIELD_MASK) - _OFFSET
    dq = qa - qb
    dr = ra - rb
    return (abs(dq) + abs(dr) + abs(dq + dr)) // 2


#: Axial neighbour directions, pointy-top orientation.
_DIRECTIONS = ((1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1))


def ring(cell, k):
    """Cells exactly *k* grid steps from *cell* (the hex ring walk).

    ``ring(cell, 0)`` is ``[cell]``.  Used by endpoint snapping to expand
    outwards until a graph node is hit.
    """
    if k < 0:
        raise ValueError("ring radius must be non-negative")
    res = int(cell >> 56)
    q = ((cell >> 28) & _FIELD_MASK) - _OFFSET
    r = (cell & _FIELD_MASK) - _OFFSET
    if k == 0:
        return [cell]
    out = []
    # Start k steps along direction 4 (-1, +1), then walk the six sides.
    cq, cr = q + _DIRECTIONS[4][0] * k, r + _DIRECTIONS[4][1] * k
    base = np.int64(res) << 56
    for side in range(6):
        dq, dr = _DIRECTIONS[side]
        for _ in range(k):
            out.append(int(base | ((cq + _OFFSET) << 28) | (cr + _OFFSET)))
            cq += dq
            cr += dr
    return out
