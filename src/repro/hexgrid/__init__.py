"""Hexagonal spatial index (H3-flavoured, dependency-free).

Cells are pointy-top hexagons laid out in axial coordinates ``(q, r)`` on an
equirectangular projection of WGS84.  A cell id packs ``(resolution, q, r)``
into a single ``int64``, so whole trajectories can be indexed, compared and
differenced as flat NumPy arrays.  Edge lengths follow the H3 aperture-7
progression (resolution 9 is roughly a 174 m edge), which keeps the paper's
resolution sweep (6..10) directly comparable.

Scalar helpers (:func:`latlng_to_cell`, :func:`cell_to_latlng`,
:func:`grid_distance`, :func:`ring`) serve the pathfinding hot loop; the
``*_array`` variants are the bulk kernels used for dataset indexing.
"""

from repro.hexgrid.cells import (
    EDGE0_M,
    cell_axial_array,
    cell_edge_length_m,
    cell_resolution,
    cell_to_latlng,
    cell_to_latlng_array,
    grid_distance,
    grid_distance_array,
    latlng_to_cell,
    latlng_to_cell_array,
    ring,
)

__all__ = [
    "EDGE0_M",
    "cell_axial_array",
    "cell_edge_length_m",
    "cell_resolution",
    "cell_to_latlng",
    "cell_to_latlng_array",
    "grid_distance",
    "grid_distance_array",
    "latlng_to_cell",
    "latlng_to_cell_array",
    "ring",
]
