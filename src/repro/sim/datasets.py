"""Procedural AIS dataset generation for the DAN / KIEL / SAR areas.

:func:`build_dataset` samples trips over the fixed lanes in
:mod:`repro.sim.routes`: each trip picks a lane (and direction) by traffic
weight, cruises it with a smoothly varying speed profile and lateral
corridor noise, and reports at a jittered AIS cadence.  Vessels make one
or two voyages each, so per-cell distinct-vessel statistics are
non-trivial.  The output is a raw AIS table in the canonical
:mod:`repro.ais.schema` columns.
"""

from dataclasses import dataclass

import numpy as np

from repro.ais import schema
from repro.geo.proj import M_PER_DEG
from repro.minidb import Table
from repro.sim.routes import DATASETS

__all__ = ["DatasetBundle", "build_dataset"]

#: Mean seconds between AIS reports.
REPORT_INTERVAL_S = 30.0

#: Standard deviation of the lateral corridor-noise random walk, metres
#: per report (reflected at +-60 m, so tracks stay in a ~120 m corridor).
LATERAL_STEP_M = 4.0
LATERAL_LIMIT_M = 60.0


@dataclass(frozen=True)
class DatasetBundle:
    """A generated dataset: the raw AIS table plus provenance."""

    name: str
    table: Table
    scale: float
    seed: int

    @property
    def num_positions(self):
        """Total AIS reports in the bundle."""
        return self.table.num_rows


def _route_geometry(waypoints):
    """Waypoint arrays plus cumulative chord length in metres."""
    pts = np.asarray(waypoints, dtype=np.float64)
    lats, lngs = pts[:, 0], pts[:, 1]
    dy = np.diff(lats) * M_PER_DEG
    dx = np.diff(lngs) * M_PER_DEG * np.cos(np.radians(lats[:-1]))
    cum = np.concatenate(([0.0], np.cumsum(np.hypot(dx, dy))))
    return lats, lngs, cum


def _sample_trip(rng, route, trip_seconds_offset):
    """One trip's AIS reports along *route*; returns a column dict."""
    lats_w, lngs_w, cum = _route_geometry(route.waypoints)
    if rng.random() < 0.5:  # half the traffic runs the lane in reverse
        lats_w, lngs_w = lats_w[::-1], lngs_w[::-1]
        cum = cum[-1] - cum[::-1]
    length_m = float(cum[-1])
    base_speed = rng.uniform(route.speed_lo_mps, route.speed_hi_mps)
    duration_s = length_m / base_speed
    num_reports = max(int(duration_s / REPORT_INTERVAL_S), 2)

    t = np.arange(num_reports) * REPORT_INTERVAL_S
    t = t + rng.uniform(-2.0, 2.0, num_reports)
    t[0] = 0.0
    # Smooth speed profile: base plus a slow AR(1) wander.
    wander = np.cumsum(rng.normal(0.0, 0.02, num_reports))
    speed = np.clip(base_speed * (1.0 + 0.05 * np.tanh(wander)), 0.5, None)
    along = np.clip(np.cumsum(speed * REPORT_INTERVAL_S), 0.0, length_m)

    lat = np.interp(along, cum, lats_w)
    lng = np.interp(along, cum, lngs_w)

    # Lateral corridor noise: reflected random walk across-track.
    lateral = np.cumsum(rng.normal(0.0, LATERAL_STEP_M, num_reports))
    lateral = LATERAL_LIMIT_M * np.tanh(lateral / LATERAL_LIMIT_M)
    dlat = np.gradient(lat) * M_PER_DEG
    dlng = np.gradient(lng) * M_PER_DEG * np.cos(np.radians(lat))
    norm = np.maximum(np.hypot(dlat, dlng), 1e-9)
    nx, ny = -dlng / norm, dlat / norm  # unit normal in (east, north) metres
    lat = lat + (lateral * ny) / M_PER_DEG
    lng = lng + (lateral * nx) / (M_PER_DEG * np.cos(np.radians(lat)))

    dy = np.diff(lat) * M_PER_DEG
    dx = np.diff(lng) * M_PER_DEG * np.cos(np.radians(lat[:-1]))
    seg_bearing = np.mod(np.degrees(np.arctan2(dx, dy)), 360.0)
    cog = np.concatenate((seg_bearing, seg_bearing[-1:]))
    cog = np.mod(cog + rng.normal(0.0, 1.5, num_reports), 360.0)
    sog = speed * 1.94384 + rng.normal(0.0, 0.2, num_reports)

    return {
        schema.T: trip_seconds_offset + t,
        schema.LAT: lat,
        schema.LON: lng,
        schema.SOG: np.clip(sog, 0.0, None),
        schema.COG: cog,
    }


def build_dataset(name, scale=1.0, seed=0):
    """Generate the named dataset at *scale*; deterministic per seed.

    ``scale`` multiplies the area's base trip count (Table 1 uses 1.0;
    the benchmark suite uses small fractions).
    """
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; have {sorted(DATASETS)}")
    base_trips, routes = DATASETS[name]
    num_trips = max(int(round(base_trips * scale)), 4)
    # Stable per-dataset stream: do not use hash(), which is salted per run.
    name_tag = sum(ord(ch) * (i + 1) for i, ch in enumerate(name))
    rng = np.random.default_rng(seed * 65_536 + name_tag)

    weights = np.asarray([r.weight for r in routes], dtype=np.float64)
    weights = weights / weights.sum()
    route_choice = rng.choice(len(routes), size=num_trips, p=weights)

    # Two voyages per vessel on average; voyages of one vessel are spaced
    # by hours so segmentation recovers them as separate trips.
    num_vessels = max(num_trips // 2, 1)
    vessel_of_trip = rng.integers(0, num_vessels, num_trips)
    vessel_clock = np.zeros(num_vessels)

    columns = []
    for i in range(num_trips):
        route = routes[route_choice[i]]
        vessel = int(vessel_of_trip[i])
        start_s = vessel_clock[vessel] + rng.uniform(0.0, 6 * 3600.0)
        trip = _sample_trip(rng, route, start_s)
        n = len(trip[schema.T])
        vessel_clock[vessel] = float(trip[schema.T][-1]) + rng.uniform(
            2 * 3600.0, 12 * 3600.0
        )
        trip[schema.VESSEL_ID] = np.full(n, 1000 + vessel, dtype=np.int64)
        trip[schema.VESSEL_TYPE] = np.full(n, route.vessel_type, dtype="U16")
        columns.append(trip)

    table = Table(
        {
            name_: np.concatenate([c[name_] for c in columns])
            for name_ in schema.RAW_COLUMNS
        }
    )
    return DatasetBundle(name=name, table=table, scale=scale, seed=seed)
