"""Synthetic AIS data: sea-lane route models and dataset generators.

Real AIS feeds are licensed, so the reproduction ships procedural stand-ins
for the paper's three study areas.  :mod:`repro.sim.routes` defines fixed
sea-lane waypoint models per area; :mod:`repro.sim.datasets` samples
vessels along them with realistic speeds, lateral corridor noise, and AIS
report cadence.  Generation is deterministic in ``(name, scale, seed)``.
"""

from repro.sim.datasets import DatasetBundle, build_dataset
from repro.sim.routes import DATASETS, RouteModel

__all__ = ["DATASETS", "DatasetBundle", "RouteModel", "build_dataset"]
