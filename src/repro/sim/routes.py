"""Fixed sea-lane models for the synthetic DAN / KIEL / SAR areas.

Each dataset is a weighted set of :class:`RouteModel` lanes: a waypoint
polyline, the vessel class that plies it, and a cruising-speed band.
Trips sample a lane (optionally reversed), so habitual corridors emerge
across trips exactly as HABIT assumes.  Waypoints are deterministic; only
per-trip noise comes from the generator's RNG.

Areas:

- ``KIEL``: Kiel fjord out through the Great Belt into the Kattegat, plus
  a Fehmarn branch -- a long main corridor so multi-hour gaps fit.
- ``DAN``: wider Danish waters with Skagerrak/North Sea approaches.
- ``SAR``: a mixed-traffic gulf with distinct cargo / passenger lanes and
  slow zig-zag fishing grounds (the typed-imputer testbed).
"""

from dataclasses import dataclass

__all__ = ["DATASETS", "RouteModel"]


@dataclass(frozen=True)
class RouteModel:
    """One sea lane: waypoints, traffic share, class, and speed band."""

    name: str
    waypoints: tuple
    weight: float
    vessel_type: str
    speed_lo_mps: float
    speed_hi_mps: float


_KIEL_MAIN = (
    (54.33, 10.16),
    (54.50, 10.35),
    (54.66, 10.78),
    (54.92, 10.86),
    (55.25, 10.98),
    (55.65, 10.90),
    (55.95, 11.08),
    (56.12, 11.30),
)

_KIEL_FEHMARN = (
    (54.33, 10.16),
    (54.40, 10.55),
    (54.47, 10.95),
    (54.54, 11.30),
)

_DAN_SKAGEN = (
    (57.45, 10.70),
    (57.10, 11.05),
    (56.55, 11.55),
    (56.00, 11.80),
    (55.60, 11.95),
)

_DAN_NORTHSEA = (
    (55.45, 7.70),
    (55.60, 8.00),
    (55.95, 8.25),
    (56.40, 8.15),
    (56.95, 8.35),
)

_DAN_BALTIC = (
    (54.60, 11.90),
    (54.95, 12.10),
    (55.30, 12.40),
    (55.62, 12.55),
)

_SAR_CARGO = (
    (37.45, 23.05),
    (37.60, 23.30),
    (37.80, 23.40),
    (37.94, 23.62),
)

_SAR_PASSENGER = (
    (37.94, 23.55),
    (37.75, 23.42),
    (37.55, 23.45),
    (37.42, 23.30),
    (37.35, 23.10),
)

_SAR_FISHING = (
    (37.52, 23.12),
    (37.58, 23.22),
    (37.51, 23.30),
    (37.60, 23.38),
    (37.52, 23.46),
    (37.62, 23.52),
    (37.55, 23.60),
)

#: name -> (base trip count at scale=1.0, tuple of routes)
DATASETS = {
    "KIEL": (
        600,
        (
            RouteModel("kiel-belt", _KIEL_MAIN, 0.7, "cargo", 8.5, 10.5),
            RouteModel("kiel-fehmarn", _KIEL_FEHMARN, 0.3, "tanker", 7.5, 9.5),
        ),
    ),
    "DAN": (
        2000,
        (
            RouteModel("dan-skagen", _DAN_SKAGEN, 0.45, "cargo", 8.0, 10.5),
            RouteModel("dan-northsea", _DAN_NORTHSEA, 0.35, "tanker", 7.0, 9.5),
            RouteModel("dan-baltic", _DAN_BALTIC, 0.20, "passenger", 9.0, 12.0),
        ),
    ),
    "SAR": (
        3000,
        (
            RouteModel("sar-cargo", _SAR_CARGO, 0.40, "cargo", 7.5, 9.5),
            RouteModel("sar-passenger", _SAR_PASSENGER, 0.35, "passenger", 9.0, 12.0),
            RouteModel("sar-fishing", _SAR_FISHING, 0.25, "fishing", 3.0, 5.0),
        ),
    ),
}
