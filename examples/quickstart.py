"""README quickstart: fit HABIT on a synthetic KIEL sample and impute a gap.

Run from the repository root:

    PYTHONPATH=src python examples/quickstart.py
"""

from repro.core import HabitConfig, HabitImputer
from repro.eval.metrics import dtw_distance_m
from repro.experiments import common

data = common.prepare("KIEL", scale=0.05, cache_dir=".cache/repro")
imputer = HabitImputer(HabitConfig(resolution=9, tolerance_m=100.0))
imputer.fit_from_trips(data.train)
gap = data.gaps(3600.0)[0]
path = imputer.impute(gap.start, gap.end)
dtw = dtw_distance_m(path.lats, path.lngs, gap.truth_lats, gap.truth_lngs)
print(f"imputed {path.num_points} points across a 1-hour gap (DTW {dtw:.0f} m)")
