"""Figure 5 benchmark: full sensitivity evaluation passes (method x gaps),
including the DTW scoring cost that dominates batch evaluation."""

import pytest

from repro.baselines import StraightLineImputer
from repro.eval import evaluate_imputer


@pytest.mark.benchmark(group="fig5-evaluation")
def test_evaluate_habit_over_gaps(benchmark, habit_r9, kiel_gaps):
    result = benchmark.pedantic(
        evaluate_imputer, args=(habit_r9, kiel_gaps, "HABIT"),
        kwargs={"measure_storage": False}, rounds=2, iterations=1,
    )
    benchmark.extra_info["gaps"] = result.num_gaps
    benchmark.extra_info["mean_dtw_m"] = result.mean_dtw_m


@pytest.mark.benchmark(group="fig5-evaluation")
def test_evaluate_sli_over_gaps(benchmark, kiel_gaps):
    result = benchmark.pedantic(
        evaluate_imputer, args=(StraightLineImputer(), kiel_gaps, "SLI"),
        kwargs={"measure_storage": False}, rounds=2, iterations=1,
    )
    benchmark.extra_info["mean_dtw_m"] = result.mean_dtw_m


@pytest.mark.benchmark(group="fig5-evaluation")
def test_evaluate_gti_over_gaps(benchmark, gti_kiel, kiel_gaps):
    result = benchmark.pedantic(
        evaluate_imputer, args=(gti_kiel, kiel_gaps, "GTI"),
        kwargs={"measure_storage": False}, rounds=2, iterations=1,
    )
    benchmark.extra_info["mean_dtw_m"] = result.mean_dtw_m
