"""Shared benchmark fixtures and the machine-readable results emitter.

Benchmarks run on miniature datasets (generated once per session into a
temporary cache) so the whole ``pytest benchmarks/ --benchmark-only`` run
finishes in minutes.  The *relative* numbers -- HABIT vs GTI latency,
resolution scaling, heuristic speedups -- are the reproduction targets;
absolute magnitudes depend on dataset scale.

Benchmark groups listed in ``BENCH_JSON_GROUPS`` additionally emit a
``BENCH_<name>.json`` artefact next to this file at session end (timing
stats + ``extra_info`` per benchmark), so the perf trajectory of the hot
paths is recorded run over run -- CI uploads them, and one
representative run per change is committed.  Runs with
``--benchmark-disable`` skip emission (there are no timings to record).
"""

import json
import platform
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import GTIConfig, GTIImputer
from repro.core import HabitConfig, HabitImputer
from repro.experiments import common

#: benchmark group -> BENCH_<name>.json artefact written at session end.
BENCH_JSON_GROUPS = {
    "table4-latency": "table4",
    "search-variants": "search",
    "batch-kernel": "search",
}


def _stats_dict(bench):
    stats = getattr(bench.stats, "stats", bench.stats)  # Metadata -> Stats
    return {
        "name": bench.name,
        "group": bench.group,
        "mean_us": stats.mean * 1e6,
        "median_us": stats.median * 1e6,
        "min_us": stats.min * 1e6,
        "stddev_us": stats.stddev * 1e6,
        "rounds": stats.rounds,
        "extra_info": dict(bench.extra_info),
    }


def pytest_sessionfinish(session, exitstatus):
    """Write ``BENCH_*.json`` for every registered group that ran."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or getattr(bench_session, "benchmarks", None) is None:
        return
    by_file = {}
    for bench in bench_session.benchmarks:
        name = BENCH_JSON_GROUPS.get(bench.group)
        if name is None or bench.stats is None:
            continue
        by_file.setdefault(name, []).append(_stats_dict(bench))
    here = Path(__file__).resolve().parent
    for name, records in by_file.items():
        payload = {
            "machine": platform.node(),
            "python": platform.python_version(),
            "benchmarks": sorted(records, key=lambda r: r["name"]),
        }
        (here / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

#: Benchmark dataset scales (smaller than experiment scales).
BENCH_SCALES = {"DAN": 0.03, "KIEL": 0.15, "SAR": 0.015}


@pytest.fixture(scope="session")
def bench_cache(tmp_path_factory):
    return str(tmp_path_factory.mktemp("bench_data"))


@pytest.fixture(scope="session")
def kiel(bench_cache):
    return common.prepare("KIEL", scale=BENCH_SCALES["KIEL"], cache_dir=bench_cache)


@pytest.fixture(scope="session")
def sar(bench_cache):
    return common.prepare("SAR", scale=BENCH_SCALES["SAR"], cache_dir=bench_cache)


@pytest.fixture(scope="session")
def dan(bench_cache):
    return common.prepare("DAN", scale=BENCH_SCALES["DAN"], cache_dir=bench_cache)


@pytest.fixture(scope="session")
def kiel_gaps(kiel):
    gaps = kiel.gaps(3600.0)
    assert gaps, "benchmark dataset produced no gaps"
    return gaps


@pytest.fixture(scope="session")
def habit_r9(kiel):
    return HabitImputer(HabitConfig(resolution=9, tolerance_m=100.0)).fit_from_trips(
        kiel.train
    )


@pytest.fixture(scope="session")
def habit_r10(kiel):
    return HabitImputer(HabitConfig(resolution=10, tolerance_m=100.0)).fit_from_trips(
        kiel.train
    )


@pytest.fixture(scope="session")
def gti_kiel(kiel):
    config = GTIConfig(rm_m=250.0, rd_deg=5e-4, downsample_s=common.GTI_DOWNSAMPLE_S)
    return GTIImputer(config).fit_from_trips(kiel.train)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(42)
