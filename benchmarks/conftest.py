"""Shared benchmark fixtures.

Benchmarks run on miniature datasets (generated once per session into a
temporary cache) so the whole ``pytest benchmarks/ --benchmark-only`` run
finishes in minutes.  The *relative* numbers -- HABIT vs GTI latency,
resolution scaling, heuristic speedups -- are the reproduction targets;
absolute magnitudes depend on dataset scale.
"""

import numpy as np
import pytest

from repro.baselines import GTIConfig, GTIImputer
from repro.core import HabitConfig, HabitImputer
from repro.experiments import common

#: Benchmark dataset scales (smaller than experiment scales).
BENCH_SCALES = {"DAN": 0.03, "KIEL": 0.15, "SAR": 0.015}


@pytest.fixture(scope="session")
def bench_cache(tmp_path_factory):
    return str(tmp_path_factory.mktemp("bench_data"))


@pytest.fixture(scope="session")
def kiel(bench_cache):
    return common.prepare("KIEL", scale=BENCH_SCALES["KIEL"], cache_dir=bench_cache)


@pytest.fixture(scope="session")
def sar(bench_cache):
    return common.prepare("SAR", scale=BENCH_SCALES["SAR"], cache_dir=bench_cache)


@pytest.fixture(scope="session")
def dan(bench_cache):
    return common.prepare("DAN", scale=BENCH_SCALES["DAN"], cache_dir=bench_cache)


@pytest.fixture(scope="session")
def kiel_gaps(kiel):
    gaps = kiel.gaps(3600.0)
    assert gaps, "benchmark dataset produced no gaps"
    return gaps


@pytest.fixture(scope="session")
def habit_r9(kiel):
    return HabitImputer(HabitConfig(resolution=9, tolerance_m=100.0)).fit_from_trips(
        kiel.train
    )


@pytest.fixture(scope="session")
def habit_r10(kiel):
    return HabitImputer(HabitConfig(resolution=10, tolerance_m=100.0)).fit_from_trips(
        kiel.train
    )


@pytest.fixture(scope="session")
def gti_kiel(kiel):
    config = GTIConfig(rm_m=250.0, rd_deg=5e-4, downsample_s=common.GTI_DOWNSAMPLE_S)
    return GTIImputer(config).fit_from_trips(kiel.train)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(42)
