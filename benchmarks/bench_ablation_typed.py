"""Ablation: global graph vs vessel-type-aware graphs (future-work
extension).  On mixed-traffic data (SAR) the typed variant routes each
query on its class's motion patterns at the cost of extra graphs."""

import pytest

from repro.core import HabitConfig, HabitImputer
from repro.core.typed import TypedHabitImputer


@pytest.fixture(scope="module")
def sar_gaps(sar):
    gaps = sar.gaps(3600.0)
    assert gaps
    return gaps


@pytest.fixture(scope="module")
def global_imputer(sar):
    return HabitImputer(HabitConfig(resolution=8)).fit_from_trips(sar.train)


@pytest.fixture(scope="module")
def typed_imputer(sar):
    return TypedHabitImputer(
        HabitConfig(resolution=8), min_group_rows=200
    ).fit_from_trips(sar.train)


@pytest.mark.benchmark(group="ablation-typed")
def test_global_impute(benchmark, global_imputer, sar_gaps):
    gap = sar_gaps[0]
    result = benchmark(global_imputer.impute, gap.start, gap.end)
    assert result is not None


@pytest.mark.benchmark(group="ablation-typed")
def test_typed_impute(benchmark, typed_imputer, sar_gaps):
    gap = sar_gaps[0]
    result = benchmark(typed_imputer.impute, gap.start, gap.end, "fishing")
    assert result is not None
    benchmark.extra_info["groups"] = ",".join(typed_imputer.fitted_groups)
    benchmark.extra_info["model_mb"] = typed_imputer.storage_size_bytes() / 1e6
