"""Ablation: HyperLogLog vs exact distinct counting in graph statistics.

DuckDB's approx_count_distinct (HLL) is what the paper uses; the exact
variant is the accuracy/speed trade-off baseline.
"""

import pytest

from repro.core import HabitConfig, compute_statistics


@pytest.mark.benchmark(group="ablation-hll")
@pytest.mark.parametrize("approx", [True, False], ids=["hll", "exact"])
def test_statistics_distinct_mode(benchmark, kiel, approx):
    config = HabitConfig(resolution=9, approx_distinct=approx)
    cell_stats, transition_stats = benchmark.pedantic(
        compute_statistics, args=(kiel.train, config), rounds=3, iterations=1
    )
    benchmark.extra_info["cells"] = cell_stats.num_rows
    benchmark.extra_info["transitions"] = transition_stats.num_rows
