"""Table 4 benchmark: per-query imputation latency, HABIT vs GTI.

The reproduction target is the *ratio*: GTI (full Dijkstra over a point
graph) is roughly an order of magnitude slower per query than HABIT
(A* over the compressed cell graph), and finer HABIT resolutions cost more.
"""

import pytest


def _round_robin(imputer, gaps):
    state = {"i": 0}

    def one_query():
        gap = gaps[state["i"] % len(gaps)]
        state["i"] += 1
        return imputer.impute(gap.start, gap.end)

    return one_query


@pytest.mark.benchmark(group="table4-latency")
def test_habit_r9_latency(benchmark, habit_r9, kiel_gaps):
    result = benchmark(_round_robin(habit_r9, kiel_gaps))
    assert result is not None


@pytest.mark.benchmark(group="table4-latency")
def test_habit_r10_latency(benchmark, habit_r10, kiel_gaps):
    result = benchmark(_round_robin(habit_r10, kiel_gaps))
    assert result is not None


@pytest.mark.benchmark(group="table4-latency")
def test_gti_latency(benchmark, gti_kiel, kiel_gaps):
    result = benchmark(_round_robin(gti_kiel, kiel_gaps))
    assert result is not None
