"""Service-layer benchmark: registry cold start vs warm-cache throughput.

Cold start is the full fit-once path (empty registry directory, the
first request pays fit-and-save through the registry's fit-on-miss
callback); disk load resolves a published model from ``.npz``; warm
serves from the in-memory LRU.  The reproduction target is the serving
story: warm-cache throughput must be at least 10x cold start, which is
what makes fit-once/serve-many worth a registry at all.
"""

import itertools
import time

import pytest

from repro.core import HabitImputer
from repro.service import BatchImputationEngine, GapRequest, ModelRegistry


def _requests(gaps, n):
    return [
        GapRequest(
            dataset="KIEL",
            start=gaps[i % len(gaps)].start,
            end=gaps[i % len(gaps)].end,
            request_id=f"r{i}",
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def train_fitter(kiel):
    return lambda dataset, config: HabitImputer(config).fit_from_trips(kiel.train)


@pytest.fixture(scope="module")
def warm_engine(habit_r9, tmp_path_factory):
    registry = ModelRegistry(tmp_path_factory.mktemp("svc_warm"))
    registry.publish("KIEL", habit_r9)
    return BatchImputationEngine(registry, max_workers=4), habit_r9.config


@pytest.mark.benchmark(group="service-cache")
def test_cold_start_request(benchmark, train_fitter, habit_r9, kiel_gaps, tmp_path):
    """One request against an empty registry: pays fit-and-save."""
    counter = itertools.count()
    requests = _requests(kiel_gaps, 1)

    def cold():
        registry = ModelRegistry(tmp_path / f"cold{next(counter)}", fitter=train_fitter)
        return BatchImputationEngine(registry, max_workers=1).run(
            requests, habit_r9.config
        )

    results = benchmark(cold)
    assert results[0].provenance.cache == "fit"


@pytest.mark.benchmark(group="service-cache")
def test_disk_load_request(benchmark, warm_engine, kiel_gaps):
    """One request with the model on disk but evicted from memory."""
    engine, config = warm_engine
    requests = _requests(kiel_gaps, 1)

    def load():
        engine.registry.evict_all()
        return engine.run(requests, config)

    results = benchmark(load)
    assert results[0].provenance.cache == "load"


@pytest.mark.benchmark(group="service-cache")
def test_warm_cache_request(benchmark, warm_engine, kiel_gaps):
    """One request served entirely from the in-memory cache."""
    engine, config = warm_engine
    requests = _requests(kiel_gaps, 1)
    engine.run(requests, config)  # prime

    results = benchmark(engine.run, requests, config)
    assert results[0].provenance.cache == "hit"


@pytest.mark.benchmark(group="service-throughput")
def test_warm_batch_throughput(benchmark, warm_engine, kiel_gaps):
    """A 64-gap batch on a warm model, fanned over the thread pool."""
    engine, config = warm_engine
    requests = _requests(kiel_gaps, 64)
    engine.run(requests[:1], config)  # prime

    results = benchmark(engine.run, requests, config)
    assert len(results) == 64
    assert all(r.provenance.cache == "hit" for r in results)
    stats = getattr(benchmark, "stats", None)
    if stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["requests_per_s"] = len(requests) / stats.stats.mean


@pytest.mark.benchmark(group="service-executor")
def test_process_pool_batch(benchmark, warm_engine, kiel_gaps):
    """The same 64-gap batch fanned over worker processes.

    Workers resolve the model from the registry directory once per
    process, then batches reuse warm workers -- the relevant regime for
    a long-lived daemon.  Thread-vs-process result equality is asserted
    (the perf trade-off itself is hardware-dependent: processes win only
    when searches are long enough to out-earn the serialisation tax).
    """
    from repro.service import BatchImputationEngine

    thread_engine, config = warm_engine
    requests = _requests(kiel_gaps, 64)
    with BatchImputationEngine(
        thread_engine.registry, max_workers=4, executor="process"
    ) as engine:
        first = engine.run(requests, config)  # prime pool + worker caches
        assert all(r.provenance.executor == "process" for r in first)
        expected = thread_engine.run(requests, config)
        for mine, theirs in zip(first, expected):
            assert mine.provenance.model_id == theirs.provenance.model_id
            assert mine.provenance.method == theirs.provenance.method
            assert mine.num_points == theirs.num_points
        results = benchmark(engine.run, requests, config)
    assert len(results) == 64


def test_warm_throughput_at_least_10x_cold(train_fitter, habit_r9, kiel_gaps, tmp_path):
    """Acceptance: warm-cache throughput >= 10x cold start, measured directly."""
    started = time.perf_counter()
    registry = ModelRegistry(tmp_path / "ratio", fitter=train_fitter)
    engine = BatchImputationEngine(registry, max_workers=4)
    (first,) = engine.run(_requests(kiel_gaps, 1), habit_r9.config)
    cold_s = time.perf_counter() - started
    assert first.provenance.cache == "fit"

    requests = _requests(kiel_gaps, 64)
    started = time.perf_counter()
    results = engine.run(requests, habit_r9.config)
    warm_s = time.perf_counter() - started
    assert all(r.provenance.cache == "hit" for r in results)

    cold_rps = 1.0 / cold_s
    warm_rps = len(requests) / warm_s
    print(
        f"\nservice throughput: cold {cold_rps:.2f} req/s, "
        f"warm {warm_rps:.1f} req/s ({warm_rps / cold_rps:.0f}x)"
    )
    assert warm_rps >= 10.0 * cold_rps
