"""Service-layer benchmark: registry cold start vs warm-cache throughput.

Cold start is the full fit-once path (empty registry directory, the
first request pays fit-and-save through the registry's fit-on-miss
callback); disk load resolves a published model from ``.npz``; warm
serves from the in-memory LRU.  The reproduction target is the serving
story: warm-cache throughput must be at least 10x cold start, which is
what makes fit-once/serve-many worth a registry at all.

Two of the tests below are the service-latency trajectory: the p50/p95/
p99 quantiles of the ``repro_impute_seconds`` request-latency histogram
across (thread | process executor) x (cold | warm path cache) are
written to ``BENCH_service.json`` (committed from a representative run,
uploaded by CI), and the metrics layer itself must cost < 5 % on the
warm path.  Both run under ``--benchmark-disable`` -- they measure
through the metrics histograms, not pytest-benchmark timers.
"""

import itertools
import json
import platform
import time
from pathlib import Path

import pytest

from repro.core import HabitImputer
from repro.obs import METRICS, MetricsRegistry, diff_snapshots
from repro.service import BatchImputationEngine, GapRequest, ModelRegistry


def _requests(gaps, n):
    return [
        GapRequest(
            dataset="KIEL",
            start=gaps[i % len(gaps)].start,
            end=gaps[i % len(gaps)].end,
            request_id=f"r{i}",
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def train_fitter(kiel):
    return lambda dataset, config: HabitImputer(config).fit_from_trips(kiel.train)


@pytest.fixture(scope="module")
def warm_engine(habit_r9, tmp_path_factory):
    registry = ModelRegistry(tmp_path_factory.mktemp("svc_warm"))
    registry.publish("KIEL", habit_r9)
    return BatchImputationEngine(registry, max_workers=4), habit_r9.config


@pytest.mark.benchmark(group="service-cache")
def test_cold_start_request(benchmark, train_fitter, habit_r9, kiel_gaps, tmp_path):
    """One request against an empty registry: pays fit-and-save."""
    counter = itertools.count()
    requests = _requests(kiel_gaps, 1)

    def cold():
        registry = ModelRegistry(tmp_path / f"cold{next(counter)}", fitter=train_fitter)
        return BatchImputationEngine(registry, max_workers=1).run(
            requests, habit_r9.config
        )

    results = benchmark(cold)
    assert results[0].provenance.cache == "fit"


@pytest.mark.benchmark(group="service-cache")
def test_disk_load_request(benchmark, warm_engine, kiel_gaps):
    """One request with the model on disk but evicted from memory."""
    engine, config = warm_engine
    requests = _requests(kiel_gaps, 1)

    def load():
        engine.registry.evict_all()
        return engine.run(requests, config)

    results = benchmark(load)
    assert results[0].provenance.cache == "load"


@pytest.mark.benchmark(group="service-cache")
def test_warm_cache_request(benchmark, warm_engine, kiel_gaps):
    """One request served entirely from the in-memory cache."""
    engine, config = warm_engine
    requests = _requests(kiel_gaps, 1)
    engine.run(requests, config)  # prime

    results = benchmark(engine.run, requests, config)
    assert results[0].provenance.cache == "hit"


@pytest.mark.benchmark(group="service-throughput")
def test_warm_batch_throughput(benchmark, warm_engine, kiel_gaps):
    """A 64-gap batch on a warm model, fanned over the thread pool."""
    engine, config = warm_engine
    requests = _requests(kiel_gaps, 64)
    engine.run(requests[:1], config)  # prime

    results = benchmark(engine.run, requests, config)
    assert len(results) == 64
    assert all(r.provenance.cache == "hit" for r in results)
    stats = getattr(benchmark, "stats", None)
    if stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["requests_per_s"] = len(requests) / stats.stats.mean


@pytest.mark.benchmark(group="service-executor")
def test_process_pool_batch(benchmark, warm_engine, kiel_gaps):
    """The same 64-gap batch fanned over worker processes.

    Workers resolve the model from the registry directory once per
    process, then batches reuse warm workers -- the relevant regime for
    a long-lived daemon.  Thread-vs-process result equality is asserted
    (the perf trade-off itself is hardware-dependent: processes win only
    when searches are long enough to out-earn the serialisation tax).
    """
    from repro.service import BatchImputationEngine

    thread_engine, config = warm_engine
    requests = _requests(kiel_gaps, 64)
    with BatchImputationEngine(
        thread_engine.registry, max_workers=4, executor="process"
    ) as engine:
        first = engine.run(requests, config)  # prime pool + worker caches
        assert all(r.provenance.executor == "process" for r in first)
        expected = thread_engine.run(requests, config)
        for mine, theirs in zip(first, expected):
            assert mine.provenance.model_id == theirs.provenance.model_id
            assert mine.provenance.method == theirs.provenance.method
            assert mine.num_points == theirs.num_points
        results = benchmark(engine.run, requests, config)
    assert len(results) == 64


def test_warm_throughput_at_least_10x_cold(train_fitter, habit_r9, kiel_gaps, tmp_path):
    """Acceptance: warm-cache throughput >= 10x cold start, measured directly."""
    started = time.perf_counter()
    registry = ModelRegistry(tmp_path / "ratio", fitter=train_fitter)
    engine = BatchImputationEngine(registry, max_workers=4)
    (first,) = engine.run(_requests(kiel_gaps, 1), habit_r9.config)
    cold_s = time.perf_counter() - started
    assert first.provenance.cache == "fit"

    requests = _requests(kiel_gaps, 64)
    started = time.perf_counter()
    results = engine.run(requests, habit_r9.config)
    warm_s = time.perf_counter() - started
    assert all(r.provenance.cache == "hit" for r in results)

    cold_rps = 1.0 / cold_s
    warm_rps = len(requests) / warm_s
    print(
        f"\nservice throughput: cold {cold_rps:.2f} req/s, "
        f"warm {warm_rps:.1f} req/s ({warm_rps / cold_rps:.0f}x)"
    )
    assert warm_rps >= 10.0 * cold_rps


def _impute_quantiles(delta, executor):
    """p50/p95/p99 (in us) of ``repro_impute_seconds`` from a snapshot delta.

    The delta is absorbed into a scratch registry -- the same merge the
    parent applies to process-pool worker deltas -- so the quantiles
    cover exactly the requests between the two snapshots, regardless of
    what earlier tests left in the global registry.
    """
    scratch = MetricsRegistry()
    scratch.absorb(delta)
    hist = scratch.get("repro_impute_seconds")
    summary = hist.summary((executor,))
    return {
        "requests": summary["count"],
        "p50_us": round(summary["p50"] * 1e6, 1),
        "p95_us": round(summary["p95"] * 1e6, 1),
        "p99_us": round(summary["p99"] * 1e6, 1),
    }


def test_latency_quantile_artifact(warm_engine, kiel_gaps):
    """Write BENCH_service.json from the request-latency histogram.

    Four scenarios -- (thread | process executor) x (cold | warm path
    cache) -- each read back as p50/p95/p99 of ``repro_impute_seconds``.
    Runs under --benchmark-disable (CI's smoke), so the artifact is
    written directly rather than through the conftest group emitter.
    """
    thread_engine, config = warm_engine
    requests = _requests(kiel_gaps, 64)
    scenarios = {}

    # Thread, cold path cache: a fresh engine per round pays the full
    # snap + search per request (model stays warm in the registry LRU).
    before = METRICS.snapshot()
    for _ in range(3):
        BatchImputationEngine(thread_engine.registry, max_workers=4).run(
            requests, config
        )
    delta = diff_snapshots(METRICS.snapshot(), before)
    scenarios["thread_cold_cache"] = _impute_quantiles(delta, "thread")

    # Thread, warm path cache.
    thread_engine.run(requests, config)  # prime
    before = METRICS.snapshot()
    for _ in range(5):
        thread_engine.run(requests, config)
    delta = diff_snapshots(METRICS.snapshot(), before)
    scenarios["thread_warm_cache"] = _impute_quantiles(delta, "thread")

    with BatchImputationEngine(
        thread_engine.registry, max_workers=4, executor="process"
    ) as engine:
        # Process, cold: first batch pays pool spin-up, per-worker model
        # load, and cold path caches; the timings arrive in the parent
        # via the worker metric deltas.
        before = METRICS.snapshot()
        engine.run(requests, config)
        delta = diff_snapshots(METRICS.snapshot(), before)
        scenarios["process_cold_cache"] = _impute_quantiles(delta, "process")

        # Process, warm: same pool, warm worker caches.
        before = METRICS.snapshot()
        for _ in range(5):
            engine.run(requests, config)
        delta = diff_snapshots(METRICS.snapshot(), before)
        scenarios["process_warm_cache"] = _impute_quantiles(delta, "process")

    for name, stats in scenarios.items():
        assert stats["requests"] > 0, name
        assert stats["p50_us"] <= stats["p95_us"] <= stats["p99_us"], name
    # Warm-vs-cold p50s can land in the same log-spaced bucket, so the
    # robust ordering claim is median-vs-tail, not median-vs-median.
    assert scenarios["thread_warm_cache"]["p50_us"] < (
        scenarios["thread_cold_cache"]["p95_us"]
    )

    payload = {
        "machine": platform.machine(),
        "python": platform.python_version(),
        "batch_requests": 64,
        "source": "repro_impute_seconds histogram (snapshot deltas)",
        "scenarios": scenarios,
    }
    out = Path(__file__).parent / "BENCH_service.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nservice latency quantiles -> {out}")
    for name in sorted(scenarios):
        s = scenarios[name]
        print(
            f"  {name}: p50 {s['p50_us']:.0f}us  p95 {s['p95_us']:.0f}us  "
            f"p99 {s['p99_us']:.0f}us  ({s['requests']} requests)"
        )


def test_metrics_overhead_bounded_warm_path(warm_engine, kiel_gaps):
    """Acceptance: metrics collection costs < 15 us/request warm.

    Measured as min-of-samples over repeated warm 64-gap batches with
    the process-wide switch on vs off (min is robust to scheduler
    noise); up to three attempts before failing, since a single CI
    machine hiccup should not flunk the gate.

    The bound is absolute, not relative: this gate shipped as "< 5 %
    of the warm path" when a warm hit still re-rendered its path
    (~300 us/request), but the rendered-path memo dropped warm hits
    to ~20 us/request, so the same ~3-6 us of histogram/counter work
    per request would read as 15-30 % while costing exactly what it
    always did. Per-request microseconds are the honest unit.
    """
    engine, config = warm_engine
    requests = _requests(kiel_gaps, 64)
    engine.run(requests, config)  # prime

    def best_of(samples, rounds):
        times = []
        for _ in range(samples):
            started = time.perf_counter()
            for _ in range(rounds):
                engine.run(requests, config)
            times.append((time.perf_counter() - started) / rounds)
        return min(times)

    was_enabled = METRICS.enabled
    overhead_us = None
    try:
        for _ in range(3):
            METRICS.set_enabled(True)
            best_of(1, 2)  # warm-up
            with_metrics = best_of(6, 3)
            METRICS.set_enabled(False)
            best_of(1, 2)
            without_metrics = best_of(6, 3)
            overhead_us = (with_metrics - without_metrics) / len(requests) * 1e6
            if overhead_us < 15.0:
                break
    finally:
        METRICS.set_enabled(was_enabled)
    print(
        f"\nwarm-path metrics overhead: {overhead_us:+.2f}us/request "
        f"(on {with_metrics * 1e3:.2f}ms vs off {without_metrics * 1e3:.2f}ms "
        f"per 64-gap batch)"
    )
    assert overhead_us < 15.0
