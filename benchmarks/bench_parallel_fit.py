"""Parallel fit benchmark: sharded partial -> merge vs the one-shot pass.

Runs on DAN -- the largest synthetic dataset -- at a scale big enough
that the statistics pass dominates process-pool overhead.  The headline
assertion: with 4 shards fanned over a process pool, the sharded fit
must beat one-shot ``compute_statistics`` by >= 1.5x wall-clock.  That
requires real cores, so the assertion is skipped (never faked) on
single-CPU machines; the merge-equivalence checks run everywhere.
"""

import os
import time

import numpy as np
import pytest

from repro.core import (
    HabitConfig,
    compute_statistics,
    compute_statistics_sharded,
)
from repro.experiments import common

#: Scale for the speedup measurement: large enough that one-shot fitting
#: takes O(seconds), so pool spawn + state IPC amortise.
SPEEDUP_SCALE = 1.0

NUM_SHARDS = 4

#: The asserted floor for sharded-vs-one-shot wall clock at 4 shards.
MIN_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def dan_full(bench_cache):
    return common.prepare("DAN", scale=SPEEDUP_SCALE, cache_dir=bench_cache)


@pytest.fixture(scope="module")
def fit_config():
    return HabitConfig(resolution=9)


def _best_of(fn, repeats=2):
    best = np.inf
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_sharded_fit_matches_one_shot_exactly(dan, fit_config):
    """Counts/transitions/HLL must be bit-equal however the trips shard."""
    cell_stats, transition_stats = compute_statistics(dan.train, fit_config)
    cell_sh, transition_sh = compute_statistics_sharded(
        dan.train, fit_config, num_shards=NUM_SHARDS, mode="serial"
    )
    assert np.array_equal(cell_stats["cell"], cell_sh["cell"])
    assert np.array_equal(cell_stats["count"], cell_sh["count"])
    assert np.array_equal(cell_stats["vessels"], cell_sh["vessels"])
    assert np.array_equal(transition_stats["cell"], transition_sh["cell"])
    assert np.array_equal(transition_stats["transitions"], transition_sh["transitions"])
    assert np.array_equal(transition_stats["vessels"], transition_sh["vessels"])
    # Medians are t-digest estimates: within a fraction of a cell edge.
    for column in ("median_lat", "median_lon"):
        delta_m = np.abs(cell_stats[column] - cell_sh[column]).max() * 111_320.0
        assert delta_m < 50.0, f"{column} drifted {delta_m:.1f} m"


def test_sharded_fit_speedup(dan_full, fit_config):
    """>= 1.5x at 4 shards over a process pool (needs real cores)."""
    cpus = os.cpu_count() or 1
    one_shot_s, _ = _best_of(lambda: compute_statistics(dan_full.train, fit_config))
    sharded_s, _ = _best_of(
        lambda: compute_statistics_sharded(
            dan_full.train, fit_config, num_shards=NUM_SHARDS, mode="process"
        )
    )
    speedup = one_shot_s / sharded_s
    print(
        f"\none-shot {one_shot_s:.2f}s vs sharded({NUM_SHARDS}) {sharded_s:.2f}s "
        f"-> {speedup:.2f}x on {cpus} cpu(s)"
    )
    if cpus < 2:
        pytest.skip(
            f"speedup {speedup:.2f}x measured, but the >= {MIN_SPEEDUP}x "
            f"assertion needs >= 2 CPUs (have {cpus})"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"sharded fit only {speedup:.2f}x faster than one-shot "
        f"(one-shot {one_shot_s:.2f}s, sharded {sharded_s:.2f}s)"
    )


@pytest.mark.benchmark(group="parallel-fit")
def test_one_shot_statistics(benchmark, dan, fit_config):
    benchmark.pedantic(
        compute_statistics, args=(dan.train, fit_config), rounds=3, iterations=1
    )


@pytest.mark.benchmark(group="parallel-fit")
@pytest.mark.parametrize("num_shards", [2, 4])
def test_sharded_statistics_serial(benchmark, dan, fit_config, num_shards):
    """Sharded path overhead without parallelism (merge cost visibility)."""
    benchmark.pedantic(
        compute_statistics_sharded,
        args=(dan.train, fit_config),
        kwargs={"num_shards": num_shards, "mode": "serial"},
        rounds=3,
        iterations=1,
    )
