"""Figure 4 benchmark: tolerance sweep -- imputation latency and accuracy
must stay flat in t (the paper's finding)."""

import pytest

from repro.core import HabitConfig, HabitImputer
from repro.eval.metrics import dtw_distance_m


@pytest.mark.benchmark(group="fig4-tolerance")
@pytest.mark.parametrize("tolerance", [0.0, 100.0, 250.0, 500.0, 1000.0])
def test_tolerance_sweep(benchmark, kiel, kiel_gaps, tolerance):
    imputer = HabitImputer(
        HabitConfig(resolution=9, tolerance_m=tolerance)
    ).fit_from_trips(kiel.train)
    gap = kiel_gaps[0]

    result = benchmark(imputer.impute, gap.start, gap.end)
    benchmark.extra_info["dtw_m"] = float(
        dtw_distance_m(result.lats, result.lngs, gap.truth_lats, gap.truth_lngs)
    )
    benchmark.extra_info["points"] = result.num_points
