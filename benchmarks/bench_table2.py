"""Table 2 benchmark: model build + serialization size (HABIT vs GTI).

The size ratio (GTI an order of magnitude or more above HABIT) is the
paper's storage story; sizes land in ``extra_info`` of each benchmark.
"""

import pytest

from repro.baselines import GTIConfig, GTIImputer
from repro.core import HabitConfig, HabitImputer
from repro.experiments import common


@pytest.mark.benchmark(group="table2-build")
@pytest.mark.parametrize("resolution", [6, 8, 9, 10])
def test_habit_build_size(benchmark, kiel, resolution):
    def build():
        return HabitImputer(HabitConfig(resolution=resolution)).fit_from_trips(
            kiel.train
        )

    imputer = benchmark.pedantic(build, rounds=2, iterations=1)
    benchmark.extra_info["model_mb"] = imputer.storage_size_bytes() / 1e6
    benchmark.extra_info["nodes"] = imputer.graph.num_nodes


@pytest.mark.benchmark(group="table2-build")
def test_gti_build_size(benchmark, kiel):
    config = GTIConfig(rm_m=250.0, rd_deg=5e-4, downsample_s=common.GTI_DOWNSAMPLE_S)

    def build():
        return GTIImputer(config).fit_from_trips(kiel.train)

    imputer = benchmark.pedantic(build, rounds=2, iterations=1)
    benchmark.extra_info["model_mb"] = imputer.storage_size_bytes() / 1e6
    benchmark.extra_info["nodes"] = imputer.num_nodes


@pytest.mark.benchmark(group="table2-serialize")
def test_habit_save(benchmark, habit_r9, tmp_path):
    path = tmp_path / "model.npz"
    benchmark(habit_r9.save, path)
    benchmark.extra_info["model_mb"] = path.stat().st_size / 1e6
