"""Figure 6 benchmark: example-case export (impute all methods + GeoJSON)."""

import pytest

from repro.baselines import StraightLineImputer
from repro.io import feature_collection, linestring_feature, write_geojson


@pytest.mark.benchmark(group="fig6-export")
def test_export_case(benchmark, habit_r9, gti_kiel, kiel_gaps, tmp_path):
    sli = StraightLineImputer()
    gap = kiel_gaps[0]

    def export():
        features = [
            linestring_feature(gap.truth_lats, gap.truth_lngs, {"name": "original"})
        ]
        for name, imputer in (("HABIT", habit_r9), ("GTI", gti_kiel), ("SLI", sli)):
            result = imputer.impute(gap.start, gap.end)
            features.append(
                linestring_feature(result.lats, result.lngs, {"name": name})
            )
        return write_geojson(
            feature_collection(features), tmp_path / "case.geojson"
        )

    path = benchmark(export)
    assert path.exists()
