"""Search-variant benchmark: the CSR query engine on KIEL r9/r10.

Times ``CellGraph.find_path`` for every search variant -- Dijkstra, A*
(grid heuristic), bidirectional A* (balanced grid potentials), ALT
(landmark heuristic) and CH (contraction hierarchy, the serving
default) -- over the same snapped gap endpoints, and records
mean expanded-node counts in ``extra_info`` so heuristic quality is
visible next to wall-clock numbers.  ``test_variants_agree_on_cost`` is
the correctness gate CI runs even with timing disabled: all variants
must return equal-cost paths (and agree on unreachable pairs).

Results land in ``BENCH_search.json`` via the conftest emitter.
"""

import pytest

from repro.core.graph import SEARCH_METHODS
from repro.hexgrid import latlng_to_cell


def _snapped_pairs(imputer, gaps):
    graph = imputer.graph
    resolution = imputer.config.resolution
    pairs = []
    for gap in gaps:
        src = graph.nearest_node(latlng_to_cell(gap.start[0], gap.start[1], resolution))
        dst = graph.nearest_node(latlng_to_cell(gap.end[0], gap.end[1], resolution))
        pairs.append((src, dst))
    return pairs


@pytest.fixture(scope="module", params=[9, 10], ids=["r9", "r10"])
def search_case(request, habit_r9, habit_r10, kiel_gaps):
    imputer = habit_r9 if request.param == 9 else habit_r10
    imputer.graph.ensure_landmarks(imputer.config.num_landmarks)
    imputer.graph.ensure_ch()
    return imputer.graph, _snapped_pairs(imputer, kiel_gaps)


@pytest.mark.benchmark(group="search-variants")
@pytest.mark.parametrize("method", SEARCH_METHODS)
def test_search_variant_latency(benchmark, search_case, method):
    graph, pairs = search_case
    state = {"i": 0}

    def one_query():
        src, dst = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return graph.find_path(src, dst, method)

    result = benchmark(one_query)
    assert result is not None
    expanded = [graph.find_path(src, dst, method).expanded for src, dst in pairs]
    benchmark.extra_info["mean_expanded"] = sum(expanded) / len(expanded)
    benchmark.extra_info["num_nodes"] = graph.num_nodes
    benchmark.extra_info["num_edges"] = graph.num_edges


def test_variants_agree_on_cost(search_case):
    """Every variant returns an equal-cost path for every gap pair."""
    graph, pairs = search_case
    for src, dst in pairs:
        results = {m: graph.find_path(src, dst, m) for m in SEARCH_METHODS}
        reachable = {m: r is not None for m, r in results.items()}
        assert len(set(reachable.values())) == 1, reachable
        if results["dijkstra"] is None:
            continue
        oracle = results["dijkstra"].cost
        for method, result in results.items():
            assert result.cost == pytest.approx(oracle, rel=1e-9), (
                f"{method} returned cost {result.cost}, dijkstra {oracle} "
                f"for pair {(src, dst)}"
            )
