"""Search-variant benchmark: the CSR query engine on KIEL r9/r10.

Times ``CellGraph.find_path`` for every search variant -- Dijkstra, A*
(grid heuristic), bidirectional A* (balanced grid potentials), ALT
(landmark heuristic) and CH (contraction hierarchy, the serving
default) -- over the same snapped gap endpoints, and records
mean expanded-node counts in ``extra_info`` so heuristic quality is
visible next to wall-clock numbers.  ``test_variants_agree_on_cost`` is
the correctness gate CI runs even with timing disabled: all variants
must return equal-cost paths (and agree on unreachable pairs).

The ``batch-kernel`` group times ``CellGraph.find_paths_batch`` -- the
vectorised NumPy sweep (:mod:`repro.core.kernel`) -- at batch sizes
1/8/64/256 on the r10 graph (``per_query_us`` in ``extra_info`` is the
apples-to-apples number against the scalar ``r10-ch`` row), plus the
``compute_ch`` preprocessing build.
``test_batch64_beats_scalar_ch_per_query`` is the regression gate: the
batched per-query mean must stay below the scalar CH loop's, so the
kernel speedup is a CI-checked artefact, not prose.

Results land in ``BENCH_search.json`` via the conftest emitter.
"""

import random
import time

import pytest

from repro.core.graph import SEARCH_METHODS, CellGraph
from repro.hexgrid import latlng_to_cell


def _snapped_pairs(imputer, gaps):
    graph = imputer.graph
    resolution = imputer.config.resolution
    pairs = []
    for gap in gaps:
        src = graph.nearest_node(latlng_to_cell(gap.start[0], gap.start[1], resolution))
        dst = graph.nearest_node(latlng_to_cell(gap.end[0], gap.end[1], resolution))
        pairs.append((src, dst))
    return pairs


@pytest.fixture(scope="module", params=[9, 10], ids=["r9", "r10"])
def search_case(request, habit_r9, habit_r10, kiel_gaps):
    imputer = habit_r9 if request.param == 9 else habit_r10
    imputer.graph.ensure_landmarks(imputer.config.num_landmarks)
    imputer.graph.ensure_ch()
    return imputer.graph, _snapped_pairs(imputer, kiel_gaps)


@pytest.mark.benchmark(group="search-variants")
@pytest.mark.parametrize("method", SEARCH_METHODS)
def test_search_variant_latency(benchmark, search_case, method):
    graph, pairs = search_case
    state = {"i": 0}

    def one_query():
        src, dst = pairs[state["i"] % len(pairs)]
        state["i"] += 1
        return graph.find_path(src, dst, method)

    result = benchmark(one_query)
    assert result is not None
    expanded = [graph.find_path(src, dst, method).expanded for src, dst in pairs]
    benchmark.extra_info["mean_expanded"] = sum(expanded) / len(expanded)
    benchmark.extra_info["num_nodes"] = graph.num_nodes
    benchmark.extra_info["num_edges"] = graph.num_edges


@pytest.fixture(scope="module")
def batch_case(habit_r10):
    """The r10 graph plus 256 seeded node pairs (hub-heavy, like serving)."""
    graph = habit_r10.graph
    graph.ensure_ch()
    rng = random.Random(1234)
    cells = graph.cells.tolist()
    pairs = [(rng.choice(cells), rng.choice(cells)) for _ in range(256)]
    graph.find_paths_batch(pairs[:8])  # build + warm the kernel tables
    return graph, pairs


@pytest.mark.benchmark(group="batch-kernel")
@pytest.mark.parametrize("batch_size", [1, 8, 64, 256])
def test_batch_kernel_per_query_latency(benchmark, batch_case, batch_size):
    graph, pairs = batch_case
    state = {"i": 0}

    def one_batch():
        lo = state["i"] % (len(pairs) - batch_size + 1)
        state["i"] += batch_size
        return graph.find_paths_batch(pairs[lo : lo + batch_size])

    results = benchmark(one_batch)
    assert len(results) == batch_size
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["num_nodes"] = graph.num_nodes
    if benchmark.stats is not None:  # absent under --benchmark-disable
        stats = getattr(benchmark.stats, "stats", benchmark.stats)
        benchmark.extra_info["per_query_us"] = stats.mean * 1e6 / batch_size


@pytest.mark.benchmark(group="batch-kernel")
def test_compute_ch_build_latency(benchmark, habit_r10):
    """CH preprocessing at r10: the vectorised witness pipeline under
    ``compute_ch`` (PR-6 pure-Python baseline: ~0.9s on the committed
    artefact's machine)."""
    g = habit_r10.graph

    def build():
        fresh = CellGraph(
            g.cells, g.lats, g.lngs, g.edge_src, g.edge_dst, g.edge_cost,
            g.edge_count,
        )
        fresh.compute_ch()
        return fresh

    fresh = benchmark(build)
    benchmark.extra_info["num_nodes"] = fresh.num_nodes
    benchmark.extra_info["up_edges"] = len(fresh.ch_up_indices)
    benchmark.extra_info["down_edges"] = len(fresh.ch_down_indices)


def test_batch64_beats_scalar_ch_per_query(batch_case):
    """Regression gate: batch-64 per-query mean < scalar CH per-query
    mean on identical pairs.  Min-of-samples with retries, like the
    metrics-overhead gate, so one scheduler hiccup cannot flunk it."""
    graph, pairs = batch_case
    subset = pairs[:64]
    for src, dst in subset[:8]:
        graph.find_path(src, dst, "ch")  # warm scalar mirrors

    def best_scalar(samples):
        times = []
        for _ in range(samples):
            started = time.perf_counter()
            for src, dst in subset:
                graph.find_path(src, dst, "ch")
            times.append((time.perf_counter() - started) / len(subset))
        return min(times)

    def best_batch(samples):
        times = []
        for _ in range(samples):
            started = time.perf_counter()
            graph.find_paths_batch(subset)
            times.append((time.perf_counter() - started) / len(subset))
        return min(times)

    ratio = None
    for _ in range(3):
        scalar_us = best_scalar(5) * 1e6
        batch_us = best_batch(5) * 1e6
        ratio = scalar_us / batch_us
        if ratio > 1.0:
            break
    print(
        f"\nbatch-64 {batch_us:.1f}us/query vs scalar CH {scalar_us:.1f}us/query "
        f"({ratio:.2f}x)"
    )
    assert ratio > 1.0, (
        f"batch kernel lost to the scalar loop: {batch_us:.1f}us vs "
        f"{scalar_us:.1f}us per query"
    )


def test_variants_agree_on_cost(search_case):
    """Every variant returns an equal-cost path for every gap pair."""
    graph, pairs = search_case
    for src, dst in pairs:
        results = {m: graph.find_path(src, dst, m) for m in SEARCH_METHODS}
        reachable = {m: r is not None for m, r in results.items()}
        assert len(set(reachable.values())) == 1, reachable
        if results["dijkstra"] is None:
            continue
        oracle = results["dijkstra"].cost
        for method, result in results.items():
            assert result.cost == pytest.approx(oracle, rel=1e-9), (
                f"{method} returned cost {result.cost}, dijkstra {oracle} "
                f"for pair {(src, dst)}"
            )
