"""Ablation: endpoint-snapping ring limit.

Snapping expands hex rings around the endpoint cell until a graph node is
found; small limits fall back to the vectorised full scan sooner.
"""

import pytest

from repro.hexgrid import latlng_to_cell


@pytest.mark.benchmark(group="ablation-snap")
@pytest.mark.parametrize("max_ring", [2, 6, 12, 24])
def test_snap_ring_limit(benchmark, habit_r9, max_ring):
    graph = habit_r9.graph
    # An off-lane point a few km from the corridor.
    cell = latlng_to_cell(56.2, 11.8, habit_r9.config.resolution)
    node = benchmark(graph.nearest_node, cell, max_ring)
    assert node is not None


@pytest.mark.benchmark(group="ablation-snap")
def test_snap_hit_is_instant(benchmark, habit_r9):
    graph = habit_r9.graph
    node = next(iter(graph.node_attrs))
    assert benchmark(graph.nearest_node, node) == node
