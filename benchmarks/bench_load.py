"""Closed-loop load benchmark: the micro-batching dispatcher under fire.

PR 8 made one *batch* cheap (one kernel sweep answers 64 gaps); this
suite measures the regime PR 8 could not touch -- many concurrent
*singleton* requests, each on its own handler thread, the shape real
HTTP traffic has.  N closed-loop clients (send, wait for the response,
send again -- no open-loop request pileup) hammer a thread-mode
:class:`repro.service.BatchImputationEngine` whose shared
:class:`repro.service.dispatch.BatchDispatcher` fuses concurrent
cache-missed searches into one kernel call per window.

The sweep crosses client counts (1 / 4 / 16 / 64, trimmed via
``REPRO_BENCH_LOAD_CLIENTS`` for CI's quick pass) with three traffic
tiers:

- ``cold`` -- every request is a distinct never-seen route: the pure
  search regime, where the dispatcher's cross-request fusion either
  pays off or gets out of the way.
- ``warm`` -- a primed route pool: the route cache plus rendered-path
  memo regime, where the dispatcher must add nothing (requests never
  reach it).
- ``coalesced`` -- all clients demand the *same* fresh route each
  round (lockstep barrier): the cross-request dedup regime, where one
  search answers the whole window and the ``cross_batch`` provenance
  tier lights up.

Latency quantiles are read from the ``repro_impute_seconds`` histogram
delta (the same snapshot-absorb trick as ``bench_service``); window
behaviour from the ``repro_dispatch_*`` metrics.  Everything lands in
``BENCH_load.json`` (committed from a representative run, uploaded by
CI).  The regression gates at the bottom pin the claims this change
makes: a lone client never pays the window (idle bypass), warm
concurrent serving beats the scalar-CH per-query baseline on median
latency and sustained per-request cost, cold concurrency tames the
dispatcher-off starvation tail (the GIL makes fairness, not raw
throughput, the winnable axis there), and the ``cross_batch`` tier is
live under a coalesced storm.  All of it runs under
``--benchmark-disable`` -- measurements come from wall clocks and
metric histograms, not pytest-benchmark timers.
"""

import json
import os
import platform
import threading
import time
from collections import Counter
from pathlib import Path

import numpy as np
import pytest

from repro.obs import METRICS, MetricsRegistry, diff_snapshots
from repro.service import BatchImputationEngine, GapRequest, ModelRegistry

#: Closed-loop client counts the sweep crosses with every traffic tier.
#: CI's quick pass sets REPRO_BENCH_LOAD_CLIENTS=1,8 to keep the bench
#: job fast; the committed artifact comes from the full sweep.
CLIENTS = tuple(
    int(c) for c in os.environ.get("REPRO_BENCH_LOAD_CLIENTS", "1,4,16,64").split(",")
)
#: Requests each client issues, per traffic tier.
ROUNDS = {"cold": 6, "warm": 30, "coalesced": 12}


class _PairAllocator:
    """Hands out distinct ``(src, dst)`` node-index pairs, never repeating.

    Distinct node pairs snap to distinct cell pairs (node positions are
    exact snap fixpoints), so every allocation is a guaranteed path-cache
    miss -- across all tiers and scenarios of one sweep.
    """

    def __init__(self, model, seed=412):
        self._graph = model.graph
        self._rng = np.random.default_rng(seed)
        self._seen = set()

    def pairs(self, count):
        n = self._graph.num_nodes
        out = []
        while len(out) < count:
            a, b = (int(x) for x in self._rng.integers(0, n, 2))
            if a == b or (a, b) in self._seen:
                continue
            self._seen.add((a, b))
            out.append((a, b))
        return out

    def cells(self, count):
        cells = self._graph.cells
        return [(int(cells[a]), int(cells[b])) for a, b in self.pairs(count)]

    def requests(self, count, tag):
        graph = self._graph
        return [
            GapRequest(
                dataset="KIEL",
                start=(float(graph.lats[a]), float(graph.lngs[a])),
                end=(float(graph.lats[b]), float(graph.lngs[b])),
                request_id=f"{tag}-{i}",
            )
            for i, (a, b) in enumerate(self.pairs(count))
        ]


def _closed_loop(engine, config, per_client, lockstep=False):
    """Run one closed-loop scenario; returns ``(wall_s, flat results)``.

    *per_client* is one request list per client thread; each client
    sends its requests one at a time, waiting for each response.  With
    *lockstep* the clients barrier before every round, maximising window
    overlap (the coalesced tier's worst-case storm shape).
    """
    clients = len(per_client)
    start = threading.Barrier(clients + 1)
    rounds = threading.Barrier(clients) if lockstep and clients > 1 else None
    errors = []
    results = [None] * clients

    def run_client(c):
        mine = []
        try:
            start.wait(timeout=120)
            for request in per_client[c]:
                if rounds is not None:
                    rounds.wait(timeout=120)
                (result,) = engine.run([request], config)
                mine.append(result)
            results[c] = mine
        except Exception as exc:  # noqa: BLE001 - surfaced in the main thread
            errors.append(exc)
            if rounds is not None:
                rounds.abort()

    threads = [
        threading.Thread(target=run_client, args=(c,), daemon=True)
        for c in range(clients)
    ]
    for thread in threads:
        thread.start()
    start.wait(timeout=120)
    begun = time.perf_counter()
    for thread in threads:
        thread.join(timeout=300)
    wall = time.perf_counter() - begun
    assert not errors, errors
    return wall, [result for batch in results for result in batch]


def _latency_stats(delta):
    """Mean/p50/p95/p99 (us) of ``repro_impute_seconds`` from a delta."""
    scratch = MetricsRegistry()
    scratch.absorb(delta)
    summary = scratch.get("repro_impute_seconds").summary(("thread",))
    return {
        "requests": summary["count"],
        "mean_us": round(summary["sum"] / summary["count"] * 1e6, 1),
        "p50_us": round(summary["p50"] * 1e6, 1),
        "p95_us": round(summary["p95"] * 1e6, 1),
        "p99_us": round(summary["p99"] * 1e6, 1),
    }


def _dispatch_stats(delta):
    """Window behaviour from the ``repro_dispatch_*`` metric deltas."""
    scratch = MetricsRegistry()
    scratch.absorb(delta)
    lanes = scratch.get("repro_dispatch_batch_lanes")
    flushes = lanes.count() if lanes is not None else 0
    coalesced = scratch.get("repro_dispatch_coalesced_total")
    return {
        "flushes": flushes,
        "mean_lanes": round(lanes.sum() / flushes, 2) if flushes else 0.0,
        "coalesced": coalesced.value() if coalesced is not None else 0,
    }


def _run_scenario(engine, config, per_client, lockstep=False):
    before = METRICS.snapshot()
    wall, results = _closed_loop(engine, config, per_client, lockstep)
    delta = diff_snapshots(METRICS.snapshot(), before)
    n = len(results)
    return {
        "clients": len(per_client),
        "requests": n,
        "throughput_rps": round(n / wall, 1),
        "per_request_us": round(wall / n * 1e6, 1),
        "latency": _latency_stats(delta),
        "dispatch": _dispatch_stats(delta),
        "tiers": dict(Counter(r.provenance.path_cache for r in results)),
    }


@pytest.fixture(scope="module")
def load_sweep(habit_r10, tmp_path_factory):
    """Run the whole clients x tier sweep once; gate tests read from it."""
    registry = ModelRegistry(tmp_path_factory.mktemp("load_registry"))
    registry.publish("KIEL", habit_r10)
    model, config = habit_r10, habit_r10.config
    alloc = _PairAllocator(model)
    engines = []

    def make(window_ms=2.0):
        engine = BatchImputationEngine(
            registry, max_workers=4, batch_window_ms=window_ms
        )
        engines.append(engine)
        return engine

    # The scalar-CH per-query baseline this PR's serving path must beat:
    # one uncached route() per query, the cost every ad-hoc singleton
    # paid before cross-request batching (compare BENCH_search.json's
    # scalar "ch" mean on the same machine).
    base_cells = alloc.cells(64)
    model.route(*base_cells[0])  # prime the lazy CH build
    started = time.perf_counter()
    reps = 0
    for _ in range(4):
        for src, dst in base_cells:
            model.route(src, dst)
            reps += 1
    scalar_route_us = (time.perf_counter() - started) / reps * 1e6

    scenarios = {}
    for clients in CLIENTS:
        # cold: fresh engine, every request a distinct never-seen route.
        cold = alloc.requests(clients * ROUNDS["cold"], f"cold{clients}")
        scenarios[f"cold_c{clients}"] = _run_scenario(
            make(), config, [cold[c :: clients] for c in range(clients)]
        )

        # cold with the dispatcher off: the regression-gate baseline
        # (same traffic, one scalar-or-small-batch search per request).
        cold = alloc.requests(clients * ROUNDS["cold"], f"coldoff{clients}")
        scenarios[f"cold_nodispatch_c{clients}"] = _run_scenario(
            make(0), config, [cold[c :: clients] for c in range(clients)]
        )

        # warm: a primed pool -- route cache + rendered-path memo hits.
        engine = make()
        pool = alloc.requests(32, f"warm{clients}")
        engine.run(pool, config)  # prime
        per_client = [
            [pool[(c * 7 + k) % len(pool)] for k in range(ROUNDS["warm"])]
            for c in range(clients)
        ]
        scenarios[f"warm_c{clients}"] = _run_scenario(engine, config, per_client)

        # coalesced: all clients demand the same fresh route each round.
        fresh = alloc.requests(ROUNDS["coalesced"], f"coal{clients}")
        scenarios[f"coalesced_c{clients}"] = _run_scenario(
            make(), config, [list(fresh) for _ in range(clients)], lockstep=True
        )

    for engine in engines:
        engine.close()
    return {"scalar_route_us": round(scalar_route_us, 1), "scenarios": scenarios}


def test_load_artifact(load_sweep):
    """Write BENCH_load.json and sanity-check every scenario's shape."""
    for name, s in load_sweep["scenarios"].items():
        assert s["requests"] == s["latency"]["requests"], name
        assert s["latency"]["p50_us"] <= s["latency"]["p99_us"], name
        assert s["throughput_rps"] > 0, name
        tier = name.split("_c")[0]
        if tier == "warm":
            # Warm traffic never reaches the dispatcher: pure cache+memo.
            assert set(s["tiers"]) == {"hit"}, (name, s["tiers"])
            assert s["dispatch"]["flushes"] == 0, (name, s["dispatch"])
        elif tier == "cold":
            assert set(s["tiers"]) == {"miss"}, (name, s["tiers"])
        elif tier == "cold_nodispatch":
            assert set(s["tiers"]) == {"miss"}, (name, s["tiers"])
            assert s["dispatch"]["flushes"] == 0, (name, s["dispatch"])

    payload = {
        "machine": platform.machine(),
        "python": platform.python_version(),
        "clients": list(CLIENTS),
        "rounds_per_client": ROUNDS,
        "source": "repro_impute_seconds + repro_dispatch_* (snapshot deltas)",
        "scalar_route_us": load_sweep["scalar_route_us"],
        "scenarios": load_sweep["scenarios"],
    }
    out = Path(__file__).parent / "BENCH_load.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nclosed-loop load sweep -> {out}")
    print(f"  scalar route baseline: {load_sweep['scalar_route_us']:.0f}us/query")
    for name in sorted(load_sweep["scenarios"]):
        s = load_sweep["scenarios"][name]
        lat = s["latency"]
        print(
            f"  {name}: {s['throughput_rps']:.0f} req/s  "
            f"mean {lat['mean_us']:.0f}us  p50 {lat['p50_us']:.0f}us  "
            f"p99 {lat['p99_us']:.0f}us  tiers {s['tiers']}"
        )


def test_gate_warm_concurrency_beats_scalar_baseline(load_sweep):
    """Acceptance: with 16 concurrent clients, warm-path serving beats
    the scalar-CH per-query baseline on both axes that matter -- the
    median request latency and the sustained per-request wall time
    (inverse throughput).  The mean of per-thread latency spans is
    deliberately not gated: under the GIL it is dominated by scheduler
    descheduling tails, not by serving cost (it is still recorded in
    the artifact)."""
    clients = 16 if 16 in CLIENTS else max(CLIENTS)
    warm = load_sweep["scenarios"][f"warm_c{clients}"]
    scalar = load_sweep["scalar_route_us"]
    print(
        f"\nwarm_c{clients}: p50 {warm['latency']['p50_us']:.0f}us, "
        f"{warm['per_request_us']:.0f}us/request vs scalar route {scalar:.0f}us"
    )
    assert warm["latency"]["p50_us"] < scalar
    assert warm["per_request_us"] < scalar


def test_gate_cold_dispatcher_tames_the_tail(load_sweep):
    """The dispatcher's cold-path win under the GIL is fairness, not raw
    throughput: FIFO windows stop the thundering-herd starvation that
    lets some dispatcher-off clients stall for hundreds of ms.  Gate at
    the highest swept concurrency: mean latency well below the
    dispatcher-off engine (measured ~2-4x better; 0.85 leaves noise
    room), per-request wall time not materially regressed, and real
    cross-request fusion (windows actually collect multiple lanes)."""
    clients = max(CLIENTS)
    if clients < 4:
        pytest.skip("cold fusion gate needs a concurrent sweep (>= 4 clients)")
    on = load_sweep["scenarios"][f"cold_c{clients}"]
    off = load_sweep["scenarios"][f"cold_nodispatch_c{clients}"]
    print(
        f"\ncold_c{clients}: dispatcher mean {on['latency']['mean_us']:.0f}us / "
        f"{on['per_request_us']:.0f}us per request vs off "
        f"{off['latency']['mean_us']:.0f}us / {off['per_request_us']:.0f}us"
    )
    assert on["latency"]["mean_us"] <= 0.85 * off["latency"]["mean_us"]
    assert on["per_request_us"] <= 1.25 * off["per_request_us"]
    assert on["dispatch"]["mean_lanes"] >= 2.0


def test_gate_cross_batch_tier_live(load_sweep):
    """The coalesced storm actually exercises cross-request dedup: the
    cross_batch provenance tier and the dispatcher's coalesce counter
    both fire."""
    clients = max(CLIENTS)
    if clients < 2:
        pytest.skip("cross-request coalescing needs >= 2 clients")
    s = load_sweep["scenarios"][f"coalesced_c{clients}"]
    assert set(s["tiers"]) <= {"miss", "cross_batch", "hit", "coalesced"}, s["tiers"]
    assert s["tiers"].get("cross_batch", 0) > 0, s["tiers"]
    assert s["dispatch"]["coalesced"] > 0, s["dispatch"]
    # Every round searched at most once per window it straddled; with
    # N clients lockstepped on one fresh route per round, misses stay
    # far below the request count.
    assert s["tiers"].get("miss", 0) <= s["requests"] // 2, s["tiers"]


def test_gate_idle_bypass(habit_r10, tmp_path_factory):
    """A lone client never pays the window: sequential warm singletons
    through a dispatcher-on engine stay within 10% (p50) of a
    dispatcher-off engine.  The all-submitted flush rule makes the two
    paths nearly identical -- this pins it.  Best-of-three attempts, so
    one scheduler hiccup cannot flunk a 10% gate."""
    registry = ModelRegistry(tmp_path_factory.mktemp("idle_registry"))
    registry.publish("KIEL", habit_r10)
    config = habit_r10.config
    alloc = _PairAllocator(habit_r10, seed=97)
    pool = alloc.requests(16, "idle")
    rounds = 12

    def p50_of(engine):
        before = METRICS.snapshot()
        for k in range(rounds * len(pool)):
            engine.run([pool[k % len(pool)]], config)
        delta = diff_snapshots(METRICS.snapshot(), before)
        return _latency_stats(delta)["p50_us"]

    with BatchImputationEngine(registry, batch_window_ms=2.0) as on:
        with BatchImputationEngine(registry, batch_window_ms=0) as off:
            assert on.dispatcher is not None and off.dispatcher is None
            on.run(pool, config)  # prime both engines' caches
            off.run(pool, config)
            ratio = None
            for _ in range(3):
                ratio = p50_of(on) / p50_of(off)
                if ratio <= 1.10:
                    break
    print(f"\nidle bypass: dispatcher-on/off warm p50 ratio {ratio:.3f}")
    assert ratio <= 1.10
