"""Figure 7 benchmark: imputation across the gap duration x density grid.

The whole grid comes from one ``experiments.common.gap_sweep`` pass --
durations 1/2/4 h crossed with gap densities (gaps cut per test trip) --
instead of one-duration-at-a-time cases.  Longer gaps mean longer A*
paths and longer DTW alignments; the growth must stay graceful
(sub-linear in duration for the median case), and denser gap cutting
must not shift per-gap accuracy (the cells are independent queries).
"""

import pytest

from repro.eval.metrics import dtw_distance_m
from repro.experiments import common

#: The sweep axes: gap duration (hours) x gaps cut per test trip.
DURATIONS_H = (1.0, 2.0, 4.0)
DENSITIES = (1, 2)


@pytest.fixture(scope="module")
def fig7_sweep(kiel):
    """The full duration x density sweep, streamed once per module."""
    return {
        (cell.duration_s, cell.max_per_trip): cell
        for cell in common.gap_sweep(
            kiel, [h * 3600.0 for h in DURATIONS_H], DENSITIES
        )
    }


@pytest.mark.benchmark(group="fig7-durations")
@pytest.mark.parametrize("hours", DURATIONS_H)
@pytest.mark.parametrize("density", DENSITIES)
def test_gap_sweep_cell(benchmark, fig7_sweep, habit_r9, hours, density):
    cell = fig7_sweep[(hours * 3600.0, density)]
    if not cell.gaps:
        pytest.skip(f"no {hours}-hour gaps fit the benchmark trips at density {density}")
    gap = cell.gaps[0]

    def impute_and_score():
        result = habit_r9.impute(gap.start, gap.end)
        return dtw_distance_m(
            result.lats, result.lngs, gap.truth_lats, gap.truth_lngs
        )

    dtw = benchmark(impute_and_score)
    benchmark.extra_info["dtw_m"] = float(dtw)
    benchmark.extra_info["gap_h"] = hours
    benchmark.extra_info["density"] = density
    benchmark.extra_info["num_gaps"] = cell.num_gaps
