"""Figure 7 benchmark: imputation across gap durations (1/2/4 h).

Longer gaps mean longer A* paths and longer DTW alignments; the growth
must stay graceful (sub-linear in duration for the median case).
"""

import pytest

from repro.eval.metrics import dtw_distance_m


@pytest.mark.benchmark(group="fig7-durations")
@pytest.mark.parametrize("hours", [1.0, 2.0, 4.0])
def test_gap_duration(benchmark, kiel, habit_r9, hours):
    gaps = kiel.gaps(hours * 3600.0)
    if not gaps:
        pytest.skip(f"no {hours}-hour gaps fit the benchmark trips")
    gap = gaps[0]

    def impute_and_score():
        result = habit_r9.impute(gap.start, gap.end)
        return dtw_distance_m(
            result.lats, result.lngs, gap.truth_lats, gap.truth_lngs
        )

    dtw = benchmark(impute_and_score)
    benchmark.extra_info["dtw_m"] = float(dtw)
    benchmark.extra_info["gap_h"] = hours
