"""Ablation: A* heuristic on vs off (Dijkstra).

The hex-grid-distance heuristic is exactly admissible (every edge costs at
least its grid span), so both variants return equally-cheap paths; the
heuristic just expands fewer nodes -- recorded in ``extra_info`` (the
same counter rides into serving provenance as ``expanded``).
docs/ARCHITECTURE.md lists this as a design choice worth ablating.
"""

import pytest


@pytest.fixture(scope="module")
def endpoints(habit_r9, kiel_gaps):
    gap = kiel_gaps[0]
    graph = habit_r9.graph
    from repro.hexgrid import latlng_to_cell

    res = habit_r9.config.resolution
    src = graph.nearest_node(latlng_to_cell(gap.start[0], gap.start[1], res))
    dst = graph.nearest_node(latlng_to_cell(gap.end[0], gap.end[1], res))
    return graph, src, dst


@pytest.mark.benchmark(group="ablation-astar")
def test_astar_with_heuristic(benchmark, endpoints):
    graph, src, dst = endpoints
    result = benchmark(graph.find_path, src, dst, "astar")
    assert result is not None
    benchmark.extra_info["path_cells"] = len(result.cells)
    benchmark.extra_info["expanded"] = result.expanded


@pytest.mark.benchmark(group="ablation-astar")
def test_dijkstra_no_heuristic(benchmark, endpoints):
    graph, src, dst = endpoints
    result = benchmark(graph.find_path, src, dst, "dijkstra")
    assert result is not None
    benchmark.extra_info["path_cells"] = len(result.cells)
    benchmark.extra_info["expanded"] = result.expanded


def test_same_cost_both_ways(endpoints):
    """Correctness side of the ablation: identical path cost, fewer
    expansions with the heuristic."""
    graph, src, dst = endpoints
    with_h = graph.find_path(src, dst, "astar")
    without = graph.find_path(src, dst, "dijkstra")
    assert with_h.cost == pytest.approx(without.cost)
    assert with_h.expanded <= without.expanded
    # The legacy astar() wrapper returns the same cells.
    assert graph.astar(src, dst, True) == list(with_h.cells)
