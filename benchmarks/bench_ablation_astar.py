"""Ablation: A* heuristic on vs off (Dijkstra).

The hex-grid-distance heuristic is exactly admissible (every edge costs at
least its grid span), so both variants return equally-cheap paths; the
heuristic just expands fewer nodes.  docs/ARCHITECTURE.md lists this as a
design choice worth ablating.
"""

import pytest


@pytest.fixture(scope="module")
def endpoints(habit_r9, kiel_gaps):
    gap = kiel_gaps[0]
    graph = habit_r9.graph
    from repro.hexgrid import latlng_to_cell

    res = habit_r9.config.resolution
    src = graph.nearest_node(latlng_to_cell(gap.start[0], gap.start[1], res))
    dst = graph.nearest_node(latlng_to_cell(gap.end[0], gap.end[1], res))
    return graph, src, dst


@pytest.mark.benchmark(group="ablation-astar")
def test_astar_with_heuristic(benchmark, endpoints):
    graph, src, dst = endpoints
    path = benchmark(graph.astar, src, dst, True)
    assert path is not None
    benchmark.extra_info["path_cells"] = len(path)


@pytest.mark.benchmark(group="ablation-astar")
def test_dijkstra_no_heuristic(benchmark, endpoints):
    graph, src, dst = endpoints
    path = benchmark(graph.astar, src, dst, False)
    assert path is not None
    benchmark.extra_info["path_cells"] = len(path)


def test_same_cost_both_ways(endpoints):
    """Correctness side of the ablation: identical path cost."""
    graph, src, dst = endpoints
    with_h = graph.astar(src, dst, True)
    without = graph.astar(src, dst, False)

    def cost(path):
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += next(c for t, c, _ in graph.adjacency[a] if t == b)
        return total

    assert cost(with_h) == pytest.approx(cost(without))
