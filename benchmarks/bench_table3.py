"""Table 3 benchmark: simplification cost and its effect on path shape."""

import numpy as np
import pytest

from repro.core import HabitConfig, HabitImputer
from repro.geo import rdp_simplify, turn_statistics


@pytest.fixture(scope="module")
def raw_imputed_path(kiel, kiel_gaps):
    imputer = HabitImputer(
        HabitConfig(resolution=10, tolerance_m=0.0)
    ).fit_from_trips(kiel.train)
    gap = kiel_gaps[0]
    result = imputer.impute(gap.start, gap.end)
    return result.lats, result.lngs


@pytest.mark.benchmark(group="table3-rdp")
@pytest.mark.parametrize("tolerance", [100.0, 250.0, 500.0, 1000.0])
def test_rdp_tolerance(benchmark, raw_imputed_path, tolerance):
    lats, lngs = raw_imputed_path
    out_lat, out_lng = benchmark(rdp_simplify, lats, lngs, tolerance)
    stats = turn_statistics(out_lat, out_lng)
    benchmark.extra_info["cnt"] = stats.num_positions
    benchmark.extra_info["gt45"] = stats.turns_over_45deg
    benchmark.extra_info["input_cnt"] = len(lats)


@pytest.mark.benchmark(group="table3-turnstats")
def test_turn_statistics_cost(benchmark, raw_imputed_path):
    lats, lngs = raw_imputed_path
    stats = benchmark(turn_statistics, lats, lngs)
    assert stats.num_positions == len(lats)
