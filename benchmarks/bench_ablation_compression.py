"""Ablation: fitting HABIT on compressed vs raw trips.

The annotation framework (Fikioris et al. 2022) can compress trajectories
to their critical points.  Fitting HABIT on the compressed stream shrinks
the input massively but thins cell support -- this ablation measures both
sides (build time here; model sizes in extra_info).
"""

import pytest

from repro.ais.schema import TRIP_ID
from repro.core import HabitConfig, HabitImputer, annotate_events, compress_trajectory


@pytest.fixture(scope="module")
def compressed_trips(kiel):
    annotated = annotate_events(kiel.train)
    compressed = compress_trajectory(annotated)
    for column in (
        "ev_stop", "ev_gap_before", "ev_turn", "ev_slow", "ev_speed_change",
    ):
        compressed = compressed.drop(column)
    return compressed


@pytest.mark.benchmark(group="ablation-compression")
def test_fit_on_raw(benchmark, kiel):
    imputer = benchmark.pedantic(
        lambda: HabitImputer(HabitConfig(resolution=9)).fit_from_trips(kiel.train),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["rows"] = kiel.train.num_rows
    benchmark.extra_info["model_mb"] = imputer.storage_size_bytes() / 1e6


@pytest.mark.benchmark(group="ablation-compression")
def test_fit_on_compressed(benchmark, kiel, compressed_trips):
    imputer = benchmark.pedantic(
        lambda: HabitImputer(HabitConfig(resolution=9)).fit_from_trips(compressed_trips),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["rows"] = compressed_trips.num_rows
    benchmark.extra_info["compression_ratio"] = (
        kiel.train.num_rows / max(compressed_trips.num_rows, 1)
    )
    benchmark.extra_info["model_mb"] = imputer.storage_size_bytes() / 1e6


def test_compression_preserves_trips(kiel, compressed_trips):
    """Sanity: compression keeps every trip represented."""
    import numpy as np

    raw_trips = set(np.unique(kiel.train.column(TRIP_ID)).tolist())
    kept_trips = set(np.unique(compressed_trips.column(TRIP_ID)).tolist())
    assert kept_trips == raw_trips
