"""Ablation: fitting HABIT on compressed vs raw trips, and the
DTW-vs-size Pareto of budget compression.

The annotation framework (Fikioris et al. 2022) can compress trajectories
to their critical points.  Fitting HABIT on the compressed stream shrinks
the input massively but thins cell support -- this ablation measures both
sides (build time here; model sizes in extra_info).

The second half benchmarks *budget* compression quality: for each point
budget, real KIEL trips are compressed three ways -- the online
SQUISH-style :func:`repro.geo.compress_to_budget` (one pass, never more
than the budget buffered) and the two offline fixed-threshold
simplifiers, RDP and Visvalingam-Whyatt, each binary-searched to the
same output size -- and judged by DTW against the original trip.  The
aggregates land in ``BENCH_compression.json`` (committed from a
representative run; rides CI's ``BENCH_*.json`` artifact glob), and the
regression gate at the bottom pins the tentpole's quality claim: the
online compressor at budget *b* stays within ``ONLINE_VS_RDP_FACTOR`` of
size-matched offline RDP on mean DTW.  The Pareto section runs entirely
under ``--benchmark-disable`` -- it measures geometry, not wall time.
"""

import json
import platform
from pathlib import Path

import numpy as np
import pytest

from repro.ais.schema import LAT, LON, T, TRIP_ID
from repro.core import HabitConfig, HabitImputer, annotate_events, compress_trajectory
from repro.eval.metrics import dtw_distance_m
from repro.geo import compress_to_budget, latlng_to_xy_m, rdp_simplify, vw_simplify
from repro.geo.simplify import rdp_keep_indices


@pytest.fixture(scope="module")
def compressed_trips(kiel):
    annotated = annotate_events(kiel.train)
    compressed = compress_trajectory(annotated)
    for column in (
        "ev_stop", "ev_gap_before", "ev_turn", "ev_slow", "ev_speed_change",
    ):
        compressed = compressed.drop(column)
    return compressed


@pytest.mark.benchmark(group="ablation-compression")
def test_fit_on_raw(benchmark, kiel):
    imputer = benchmark.pedantic(
        lambda: HabitImputer(HabitConfig(resolution=9)).fit_from_trips(kiel.train),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["rows"] = kiel.train.num_rows
    benchmark.extra_info["model_mb"] = imputer.storage_size_bytes() / 1e6


@pytest.mark.benchmark(group="ablation-compression")
def test_fit_on_compressed(benchmark, kiel, compressed_trips):
    imputer = benchmark.pedantic(
        lambda: HabitImputer(HabitConfig(resolution=9)).fit_from_trips(compressed_trips),
        rounds=2, iterations=1,
    )
    benchmark.extra_info["rows"] = compressed_trips.num_rows
    benchmark.extra_info["compression_ratio"] = (
        kiel.train.num_rows / max(compressed_trips.num_rows, 1)
    )
    benchmark.extra_info["model_mb"] = imputer.storage_size_bytes() / 1e6


def test_compression_preserves_trips(kiel, compressed_trips):
    """Sanity: compression keeps every trip represented."""
    import numpy as np

    raw_trips = set(np.unique(kiel.train.column(TRIP_ID)).tolist())
    kept_trips = set(np.unique(compressed_trips.column(TRIP_ID)).tolist())
    assert kept_trips == raw_trips


# -- DTW-vs-size Pareto: online budget compression vs offline simplifiers --

#: Point budgets swept for the Pareto comparison.
BUDGETS = (8, 12, 20, 32)
#: Documented quality gate: mean DTW of the online compressor at budget b
#: must stay within this factor of offline RDP binary-searched to the
#: same output size.  Measured ~0.5-0.8x on KIEL trips -- the one-pass
#: heap actually *beats* offline RDP here, because SED's time-synced
#: error tracks DTW's alignment far better than RDP's perpendicular
#: distance, and RDP's threshold staircase often undershoots the budget.
#: 1.5 is deliberately loose headroom: the gate exists to catch a real
#: quality regression (a broken heap keeps arbitrary points), not to pin
#: dataset-seed noise.
ONLINE_VS_RDP_FACTOR = 1.5


@pytest.fixture(scope="module")
def pareto_trips(kiel):
    """Real KIEL trips long enough to compress at every swept budget."""
    table = kiel.train
    trip_ids = np.asarray(table.column(TRIP_ID))
    lats = np.asarray(table.column(LAT), dtype=np.float64)
    lngs = np.asarray(table.column(LON), dtype=np.float64)
    ts = np.asarray(table.column(T), dtype=np.float64)
    trips = []
    for tid in np.unique(trip_ids):
        mask = trip_ids == tid
        if int(mask.sum()) < max(BUDGETS) + 16:
            continue
        # Cap the trip length: DTW is O(n*m) and the Pareto needs many
        # (trip, budget, method) cells, not a handful of huge ones.
        trips.append((lats[mask][:240], lngs[mask][:240], ts[mask][:240]))
        if len(trips) == 12:
            break
    assert len(trips) >= 4, "KIEL bench scale produced too few long trips"
    return trips


def _smallest_threshold_within(budget, size_at, lo, hi, iters=48):
    """Geometric bisection for the smallest threshold with size <= budget.

    The smallest admissible threshold keeps the output as close to the
    budget as the simplifier's size-vs-threshold staircase allows -- the
    fairest offline competitor for a hard point budget.
    """
    best = None
    for _ in range(iters):
        mid = (lo * hi) ** 0.5
        size = size_at(mid)
        if size <= budget:
            best = mid
            hi = mid
        else:
            lo = mid
    return best if best is not None else hi


def _compress_one(lat, lng, t, budget):
    """One trip at one budget through all three methods; DTW vs original."""
    x, y = latlng_to_xy_m(lat, lng)

    online = compress_to_budget(x, y, budget, t=t)
    online_lat, online_lng = lat[online.indices], lng[online.indices]

    rdp_tol = _smallest_threshold_within(
        budget, lambda tol: len(rdp_keep_indices(x, y, tol)), 1e-2, 1e6
    )
    rdp_lat, rdp_lng = rdp_simplify(lat, lng, rdp_tol)

    vw_area = _smallest_threshold_within(
        budget, lambda area: len(vw_simplify(lat, lng, area)[0]), 1e-4, 1e12
    )
    vw_lat, vw_lng = vw_simplify(lat, lng, vw_area)

    return {
        "online": {
            "size": int(online.points_out),
            "dtw_m": float(dtw_distance_m(lat, lng, online_lat, online_lng)),
            "max_sed_m": float(online.max_sed_m),
        },
        "rdp": {
            "size": len(rdp_lat),
            "dtw_m": float(dtw_distance_m(lat, lng, rdp_lat, rdp_lng)),
        },
        "vw": {
            "size": len(vw_lat),
            "dtw_m": float(dtw_distance_m(lat, lng, vw_lat, vw_lng)),
        },
    }


@pytest.fixture(scope="module")
def pareto_sweep(pareto_trips):
    """budget -> method -> {mean_dtw_m, mean_size, ...} over all trips."""
    sweep = {}
    for budget in BUDGETS:
        cells = [_compress_one(lat, lng, t, budget) for lat, lng, t in pareto_trips]
        per_method = {}
        for method in ("online", "rdp", "vw"):
            dtws = np.array([c[method]["dtw_m"] for c in cells])
            sizes = np.array([c[method]["size"] for c in cells])
            per_method[method] = {
                "mean_dtw_m": round(float(dtws.mean()), 2),
                "max_dtw_m": round(float(dtws.max()), 2),
                "mean_size": round(float(sizes.mean()), 2),
                "max_size": int(sizes.max()),
            }
        per_method["online"]["mean_max_sed_m"] = round(
            float(np.mean([c["online"]["max_sed_m"] for c in cells])), 2
        )
        sweep[budget] = per_method
    return sweep


def test_compression_pareto_artifact(pareto_trips, pareto_sweep):
    """Write BENCH_compression.json: the committed DTW-vs-size Pareto."""
    payload = {
        "machine": platform.machine(),
        "python": platform.python_version(),
        "trips": len(pareto_trips),
        "trip_points": [len(lat) for lat, _, _ in pareto_trips],
        "budgets": list(BUDGETS),
        "online_vs_rdp_factor": ONLINE_VS_RDP_FACTOR,
        "source": (
            "KIEL bench trips; online = repro.geo.compress_to_budget, "
            "rdp/vw = offline simplifiers binary-searched to the same size"
        ),
        "pareto": {str(budget): pareto_sweep[budget] for budget in BUDGETS},
    }
    out = Path(__file__).parent / "BENCH_compression.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nDTW-vs-size Pareto ({len(pareto_trips)} trips) -> {out}")
    for budget in BUDGETS:
        row = pareto_sweep[budget]
        print(
            f"  b={budget:>3}: online {row['online']['mean_dtw_m']:>9.1f}m "
            f"(n={row['online']['mean_size']:.1f})  "
            f"rdp {row['rdp']['mean_dtw_m']:>9.1f}m "
            f"(n={row['rdp']['mean_size']:.1f})  "
            f"vw {row['vw']['mean_dtw_m']:>9.1f}m "
            f"(n={row['vw']['mean_size']:.1f})"
        )


def test_gate_budgets_respected(pareto_sweep):
    """Every method's size-matched output actually fits the budget."""
    for budget, row in pareto_sweep.items():
        for method in ("online", "rdp", "vw"):
            assert row[method]["max_size"] <= budget, (budget, method, row[method])


def test_gate_online_within_factor_of_offline_rdp(pareto_sweep):
    """The tentpole's quality claim: one-pass budgeted compression stays
    within ONLINE_VS_RDP_FACTOR of size-matched offline RDP on mean DTW,
    at every swept budget."""
    for budget, row in pareto_sweep.items():
        online, rdp = row["online"]["mean_dtw_m"], row["rdp"]["mean_dtw_m"]
        assert online <= ONLINE_VS_RDP_FACTOR * rdp, (
            f"budget {budget}: online mean DTW {online:.1f}m exceeds "
            f"{ONLINE_VS_RDP_FACTOR}x offline RDP ({rdp:.1f}m)"
        )
