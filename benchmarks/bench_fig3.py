"""Figure 3 benchmark: imputation + DTW scoring across resolutions and
projections (accuracy values land in extra_info)."""

import numpy as np
import pytest

from repro.core import HabitConfig, HabitImputer
from repro.eval.metrics import dtw_distance_m


@pytest.mark.benchmark(group="fig3-resolution")
@pytest.mark.parametrize("resolution", [7, 9, 10])
@pytest.mark.parametrize("projection", ["center", "median"])
def test_impute_and_score(benchmark, kiel, kiel_gaps, resolution, projection):
    imputer = HabitImputer(
        HabitConfig(resolution=resolution, projection=projection, tolerance_m=100.0)
    ).fit_from_trips(kiel.train)
    gap = kiel_gaps[0]

    def impute_and_score():
        result = imputer.impute(gap.start, gap.end)
        return dtw_distance_m(
            result.lats, result.lngs, gap.truth_lats, gap.truth_lngs
        )

    dtw = benchmark(impute_and_score)
    benchmark.extra_info["dtw_m"] = float(dtw)
