"""Ablation: RDP vs Visvalingam-Whyatt simplification of imputed paths.

The paper uses RDP (its reference [19] is the Visvalingam & Whyatt
re-evaluation of Douglas-Peucker); VW is the natural alternative.  This
ablation compares runtime and the resulting vertex counts / turn profiles
at roughly matched compression.
"""

import pytest

from repro.core import HabitConfig, HabitImputer
from repro.geo import rdp_simplify, turn_statistics, vw_simplify


@pytest.fixture(scope="module")
def raw_path(kiel, kiel_gaps):
    imputer = HabitImputer(
        HabitConfig(resolution=10, tolerance_m=0.0)
    ).fit_from_trips(kiel.train)
    gap = kiel_gaps[0]
    result = imputer.impute(gap.start, gap.end)
    return result.lats, result.lngs


@pytest.mark.benchmark(group="ablation-simplifier")
def test_rdp(benchmark, raw_path):
    lats, lngs = raw_path
    out_lat, out_lng = benchmark(rdp_simplify, lats, lngs, 250.0)
    stats = turn_statistics(out_lat, out_lng)
    benchmark.extra_info["cnt"] = stats.num_positions
    benchmark.extra_info["gt45"] = stats.turns_over_45deg


@pytest.mark.benchmark(group="ablation-simplifier")
def test_visvalingam_whyatt(benchmark, raw_path):
    lats, lngs = raw_path
    # ~250 m tolerance corresponds to triangles of roughly 250 m height
    # over ~500 m bases: ~60k m2.
    out_lat, out_lng = benchmark(vw_simplify, lats, lngs, 60_000.0)
    stats = turn_statistics(out_lat, out_lng)
    benchmark.extra_info["cnt"] = stats.num_positions
    benchmark.extra_info["gt45"] = stats.turns_over_45deg
