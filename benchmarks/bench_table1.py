"""Table 1 benchmark: dataset generation and preprocessing throughput."""

import pytest

from repro.core.annotate import clean_messages
from repro.core.segmentation import segment_trips
from repro.sim.datasets import build_dataset


@pytest.mark.benchmark(group="table1-generation")
def test_generate_kiel(benchmark):
    bundle = benchmark.pedantic(
        build_dataset, args=("KIEL",), kwargs={"scale": 0.05, "seed": 1},
        rounds=2, iterations=1,
    )
    benchmark.extra_info["positions"] = bundle.num_positions


@pytest.mark.benchmark(group="table1-preprocess")
def test_clean_and_segment_kiel(benchmark, kiel):
    def pipeline():
        return segment_trips(clean_messages(kiel.bundle.table))

    trips = benchmark.pedantic(pipeline, rounds=2, iterations=1)
    benchmark.extra_info["trip_rows"] = trips.num_rows
