"""Substrate throughput benchmarks: the bulk kernels everything rests on.

Not a paper table, but the numbers that explain HABIT's build times:
hexgrid bulk indexing, minidb group-by with the paper's aggregate mix,
window lag, HLL sketching, and DTW scoring.
"""

import numpy as np
import pytest

from repro.eval.metrics import dtw_distance_m
from repro.hexgrid import grid_distance_array, latlng_to_cell_array
from repro.minidb import Table, agg
from repro.minidb.hll import HyperLogLog

N = 200_000


@pytest.fixture(scope="module")
def points(rng):
    return (
        rng.uniform(54.0, 58.0, N),  # lats
        rng.uniform(8.0, 13.0, N),  # lngs
    )


@pytest.fixture(scope="module")
def ais_like(rng, points):
    lats, lngs = points
    return Table({
        "trip_id": rng.integers(0, 500, N),
        "t": np.sort(rng.uniform(0, 1e6, N)),
        "vessel_id": rng.integers(0, 300, N),
        "lat": lats,
        "lon": lngs,
        "sog": rng.uniform(0, 25, N),
        "cog": rng.uniform(0, 360, N),
    })


@pytest.mark.benchmark(group="substrate-hexgrid")
def test_bulk_cell_indexing(benchmark, points):
    lats, lngs = points
    cells = benchmark(latlng_to_cell_array, lats, lngs, 9)
    assert len(cells) == N


@pytest.mark.benchmark(group="substrate-hexgrid")
def test_bulk_grid_distance(benchmark, points):
    lats, lngs = points
    cells = latlng_to_cell_array(lats, lngs, 9)
    distances = benchmark(grid_distance_array, cells[:-1], cells[1:])
    assert len(distances) == N - 1


@pytest.mark.benchmark(group="substrate-minidb")
def test_paper_cte_groupby(benchmark, ais_like):
    """The paper's per-cell aggregation mix on 200k rows."""
    cells = latlng_to_cell_array(ais_like["lat"], ais_like["lon"], 9)
    table = ais_like.with_columns(cl=cells)

    def cte():
        return table.group_by("cl").agg(
            agg.count(),
            agg.approx_count_distinct("vessel_id").alias("vessels"),
            agg.median("lon"),
            agg.median("lat"),
            agg.median("sog"),
            agg.median("cog"),
        )

    result = benchmark(cte)
    benchmark.extra_info["groups"] = result.num_rows


@pytest.mark.benchmark(group="substrate-minidb")
def test_window_lag(benchmark, ais_like):
    lagged = benchmark(
        ais_like.lag, "vessel_id", "trip_id", "t", 1, -1
    )
    assert len(lagged) == N


@pytest.mark.benchmark(group="substrate-minidb")
def test_hll_sketching(benchmark, rng):
    values = rng.integers(0, 1_000_000, N)

    def sketch():
        hll = HyperLogLog()
        hll.add_array(values)
        return hll.cardinality()

    estimate = benchmark(sketch)
    assert estimate > 0


@pytest.mark.benchmark(group="substrate-dtw")
def test_dtw_on_60min_paths(benchmark, rng):
    """DTW cost at the typical 60-minute-gap path length (~130 points
    after 250 m resampling)."""
    n = 130
    lats_a = 55.0 + np.cumsum(rng.normal(0, 0.002, n))
    lngs_a = 10.0 + np.cumsum(rng.normal(0, 0.002, n))
    lats_b = lats_a + rng.normal(0, 0.001, n)
    lngs_b = lngs_a + rng.normal(0, 0.001, n)
    d = benchmark(dtw_distance_m, lats_a, lngs_a, lats_b, lngs_b)
    assert d >= 0
