"""Ablation: edge-weight scheme -- paper's transition count vs the shipped
inverse-frequency alternative (popular edges cheaper)."""

import pytest

from repro.core import HabitConfig, HabitImputer
from repro.eval.metrics import dtw_distance_m


@pytest.mark.benchmark(group="ablation-weights")
@pytest.mark.parametrize("scheme", ["transitions", "inverse_frequency"])
def test_weight_scheme(benchmark, kiel, kiel_gaps, scheme):
    imputer = HabitImputer(
        HabitConfig(resolution=9, edge_weight=scheme)
    ).fit_from_trips(kiel.train)
    gap = kiel_gaps[0]

    result = benchmark(imputer.impute, gap.start, gap.end)
    benchmark.extra_info["dtw_m"] = float(
        dtw_distance_m(result.lats, result.lngs, gap.truth_lats, gap.truth_lngs)
    )
