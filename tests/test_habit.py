"""HABIT end-to-end: fit, impute, persist, and the typed variant."""

import numpy as np
import pytest

from repro.baselines import StraightLineImputer
from repro.core import HabitConfig, HabitImputer, TypedHabitImputer
from repro.eval import evaluate_imputer
from repro.eval.metrics import dtw_distance_m


@pytest.fixture(scope="module")
def fitted(tiny_kiel):
    return HabitImputer(
        HabitConfig(resolution=9, tolerance_m=100.0)
    ).fit_from_trips(tiny_kiel.train)


@pytest.fixture(scope="module")
def gap(tiny_kiel):
    gaps = tiny_kiel.gaps(3600.0)
    assert gaps, "tiny dataset must yield at least one 1-hour gap"
    return gaps[0]


def test_fit_builds_graph(fitted):
    assert fitted.graph.num_nodes > 10
    assert fitted.graph.num_edges > 10
    assert fitted.storage_size_bytes() > 0


def test_impute_smoke(fitted, gap):
    result = fitted.impute(gap.start, gap.end)
    assert result.num_points >= 2
    assert result.lats[0] == pytest.approx(gap.start[0])
    assert result.lngs[0] == pytest.approx(gap.start[1])
    assert result.lats[-1] == pytest.approx(gap.end[0])
    assert result.lngs[-1] == pytest.approx(gap.end[1])
    assert np.all(np.isfinite(result.lats)) and np.all(np.isfinite(result.lngs))


def test_habit_beats_straight_line_on_average(fitted, tiny_kiel):
    gaps = tiny_kiel.gaps(3600.0)
    habit = evaluate_imputer(fitted, gaps, "HABIT", measure_storage=False)
    sli = evaluate_imputer(StraightLineImputer(), gaps, "SLI", measure_storage=False)
    assert habit.mean_dtw_m < sli.mean_dtw_m


def test_unfitted_imputer_raises(gap):
    with pytest.raises(RuntimeError):
        HabitImputer().impute(gap.start, gap.end)


def test_projection_modes_differ(tiny_kiel, gap):
    center = HabitImputer(
        HabitConfig(resolution=9, projection="center")
    ).fit_from_trips(tiny_kiel.train)
    median = HabitImputer(
        HabitConfig(resolution=9, projection="median")
    ).fit_from_trips(tiny_kiel.train)
    r_center = center.impute(gap.start, gap.end)
    r_median = median.impute(gap.start, gap.end)
    assert r_center.num_points >= 2 and r_median.num_points >= 2


def test_dijkstra_equals_astar_cost(fitted, gap):
    with_h = fitted.impute(gap.start, gap.end, use_heuristic=True)
    without = fitted.impute(gap.start, gap.end, use_heuristic=False)
    dtw = dtw_distance_m(with_h.lats, with_h.lngs, without.lats, without.lngs)
    assert dtw == pytest.approx(0.0, abs=1e-6)


def test_save_load_round_trip(fitted, gap, tmp_path):
    path = tmp_path / "model.npz"
    fitted.save(path)
    assert path.exists() and path.stat().st_size > 0
    restored = HabitImputer.load(path)
    a = fitted.impute(gap.start, gap.end)
    b = restored.impute(gap.start, gap.end)
    assert np.allclose(a.lats, b.lats) and np.allclose(a.lngs, b.lngs)


def test_save_without_suffix_returns_real_file(fitted, gap, tmp_path):
    # np.savez appends .npz; the returned path must name the written file.
    written = fitted.save(tmp_path / "model")
    assert written.exists()
    restored = HabitImputer.load(written)
    assert restored.graph.num_nodes == fitted.graph.num_nodes


def test_fallback_when_endpoints_far_from_graph(fitted):
    # Endpoints on the other side of the planet: snapping still finds
    # nodes, but if no path exists the imputer degrades gracefully.
    result = fitted.impute((10.0, -40.0), (11.0, -41.0))
    assert result.num_points >= 2
    assert np.all(np.isfinite(result.lats))


def test_typed_imputer(tiny_kiel, gap):
    typed = TypedHabitImputer(
        HabitConfig(resolution=9), min_group_rows=100
    ).fit_from_trips(tiny_kiel.train)
    assert typed.fitted_groups  # at least one class got its own graph
    known = typed.impute(gap.start, gap.end, typed.fitted_groups[0])
    unknown = typed.impute(gap.start, gap.end, "submarine")
    untyped = typed.impute(gap.start, gap.end)
    assert known.num_points >= 2 and unknown.num_points >= 2
    assert untyped.num_points >= 2
    assert typed.storage_size_bytes() > typed.fallback.storage_size_bytes()
