"""HABIT end-to-end: fit, impute, persist, and the typed variant."""

import numpy as np
import pytest

from repro.baselines import StraightLineImputer
from repro.core import (
    HabitConfig,
    HabitImputer,
    ModelFormatError,
    TypedHabitImputer,
    config_hash,
)
from repro.eval import evaluate_imputer
from repro.eval.metrics import dtw_distance_m


@pytest.fixture(scope="module")
def fitted(tiny_kiel):
    return HabitImputer(
        HabitConfig(resolution=9, tolerance_m=100.0)
    ).fit_from_trips(tiny_kiel.train)


@pytest.fixture(scope="module")
def gap(tiny_kiel):
    gaps = tiny_kiel.gaps(3600.0)
    assert gaps, "tiny dataset must yield at least one 1-hour gap"
    return gaps[0]


def test_fit_builds_graph(fitted):
    assert fitted.graph.num_nodes > 10
    assert fitted.graph.num_edges > 10
    assert fitted.storage_size_bytes() > 0


def test_impute_smoke(fitted, gap):
    result = fitted.impute(gap.start, gap.end)
    assert result.num_points >= 2
    assert result.lats[0] == pytest.approx(gap.start[0])
    assert result.lngs[0] == pytest.approx(gap.start[1])
    assert result.lats[-1] == pytest.approx(gap.end[0])
    assert result.lngs[-1] == pytest.approx(gap.end[1])
    assert np.all(np.isfinite(result.lats)) and np.all(np.isfinite(result.lngs))


def test_habit_beats_straight_line_on_average(fitted, tiny_kiel):
    gaps = tiny_kiel.gaps(3600.0)
    habit = evaluate_imputer(fitted, gaps, "HABIT", measure_storage=False)
    sli = evaluate_imputer(StraightLineImputer(), gaps, "SLI", measure_storage=False)
    assert habit.mean_dtw_m < sli.mean_dtw_m


def test_unfitted_imputer_raises(gap):
    with pytest.raises(RuntimeError):
        HabitImputer().impute(gap.start, gap.end)


def test_projection_modes_differ(tiny_kiel, gap):
    center = HabitImputer(
        HabitConfig(resolution=9, projection="center")
    ).fit_from_trips(tiny_kiel.train)
    median = HabitImputer(
        HabitConfig(resolution=9, projection="median")
    ).fit_from_trips(tiny_kiel.train)
    r_center = center.impute(gap.start, gap.end)
    r_median = median.impute(gap.start, gap.end)
    assert r_center.num_points >= 2 and r_median.num_points >= 2


def test_route_batch_matches_scalar_route(fitted, tiny_kiel):
    gaps = tiny_kiel.gaps(3600.0)
    pairs = [fitted.snap_endpoints(g.start, g.end) for g in gaps]
    pairs = [p for p in pairs if p is not None]
    assert pairs
    # Repeat the batch so it exercises duplicate lanes too.
    pairs = pairs * 2
    batch = fitted.route_batch(pairs)
    assert len(batch) == len(pairs)
    for (src, dst), result in zip(pairs, batch):
        scalar = fitted.route(src, dst)
        assert (result is None) == (scalar is None)
        if result is not None:
            assert result.cost == scalar.cost
            assert result.cells == scalar.cells


def test_typed_route_batch_splits_per_class(tiny_kiel):
    typed = TypedHabitImputer(
        HabitConfig(resolution=9, tolerance_m=100.0), min_group_rows=100
    ).fit_from_trips(tiny_kiel.train)
    gaps = tiny_kiel.gaps(3600.0)
    classes = [*typed.fitted_groups, None, "submarine"]  # known, fallback x2
    items = []
    for i, gap in enumerate(gaps * 2):
        vessel_type = classes[i % len(classes)]
        imputer, _ = typed.resolve(vessel_type)
        snapped = imputer.snap_endpoints(gap.start, gap.end)
        if snapped is not None:
            items.append((snapped[0], snapped[1], vessel_type))
    assert items
    batch = typed.route_batch(items)
    for (src, dst, vessel_type), result in zip(items, batch):
        imputer, _ = typed.resolve(vessel_type)
        scalar = imputer.route(src, dst)
        assert (result is None) == (scalar is None)
        if result is not None:
            assert result.cost == scalar.cost and result.cells == scalar.cells


def test_dijkstra_equals_astar_cost(fitted, gap):
    with_h = fitted.impute(gap.start, gap.end, use_heuristic=True)
    without = fitted.impute(gap.start, gap.end, use_heuristic=False)
    dtw = dtw_distance_m(with_h.lats, with_h.lngs, without.lats, without.lngs)
    assert dtw == pytest.approx(0.0, abs=1e-6)


def test_save_load_round_trip_is_exact(fitted, gap, tmp_path):
    path = tmp_path / "model.npz"
    fitted.save(path)
    assert path.exists() and path.stat().st_size > 0
    restored = HabitImputer.load(path)
    assert restored.config == fitted.config
    # Bit-identical graph arrays, hence bit-identical imputations.
    assert np.array_equal(restored.graph.cells, fitted.graph.cells)
    assert np.array_equal(restored.graph.edge_cost, fitted.graph.edge_cost)
    a = fitted.impute(gap.start, gap.end)
    b = restored.impute(gap.start, gap.end)
    assert np.array_equal(a.lats, b.lats) and np.array_equal(a.lngs, b.lngs)
    assert a.method == b.method and a.cells == b.cells


def test_typed_save_load_round_trip_is_exact(tiny_kiel, gap, tmp_path):
    typed = TypedHabitImputer(
        HabitConfig(resolution=9), min_group_rows=100
    ).fit_from_trips(tiny_kiel.train)
    restored = TypedHabitImputer.load(typed.save(tmp_path / "typed.npz"))
    assert restored.fitted_groups == typed.fitted_groups
    assert restored.min_group_rows == typed.min_group_rows
    assert restored.storage_size_bytes() == typed.storage_size_bytes()
    for vessel_type in typed.fitted_groups + [None, "submarine"]:
        a = typed.impute(gap.start, gap.end, vessel_type)
        b = restored.impute(gap.start, gap.end, vessel_type)
        assert np.array_equal(a.lats, b.lats) and np.array_equal(a.lngs, b.lngs)
        assert a.method == b.method


def test_load_rejects_untagged_or_foreign_npz(fitted, tmp_path):
    # Pre-versioning files carry no format tag.
    untagged = tmp_path / "untagged.npz"
    np.savez(untagged, cells=fitted.graph.cells)
    with pytest.raises(ModelFormatError, match="format tag"):
        HabitImputer.load(untagged)
    # A typed model must not load as a plain one, and vice versa.
    plain = fitted.save(tmp_path / "plain.npz")
    with pytest.raises(ModelFormatError, match="typed-habit-npz"):
        TypedHabitImputer.load(plain)
    # Not an .npz archive at all.
    garbage = tmp_path / "garbage.npz"
    garbage.write_bytes(b"this is not a zip archive")
    with pytest.raises(ModelFormatError, match="archive"):
        HabitImputer.load(garbage)


def test_load_rejects_stale_version_and_missing_arrays(fitted, tmp_path):
    import repro.core.habit as habit_mod

    plain = fitted.save(tmp_path / "model.npz")
    with np.load(plain) as data:
        payload = {key: data[key] for key in data.files}
    payload["format"] = np.array([habit_mod.MODEL_FORMAT, "1"])
    stale = tmp_path / "stale.npz"
    np.savez(stale, **payload)
    with pytest.raises(ModelFormatError, match="version 1"):
        HabitImputer.load(stale)
    payload["format"] = np.array(
        [habit_mod.MODEL_FORMAT, str(habit_mod.MODEL_FORMAT_VERSION)]
    )
    del payload["edge_cost"]
    truncated = tmp_path / "truncated.npz"
    np.savez(truncated, **payload)
    with pytest.raises(ModelFormatError, match="edge_cost"):
        HabitImputer.load(truncated)


def test_config_hash_tracks_every_field(fitted):
    base = HabitConfig()
    assert config_hash(base) == config_hash(HabitConfig())
    changed = [
        HabitConfig(resolution=8),
        HabitConfig(tolerance_m=50.0),
        HabitConfig(projection="median"),
        HabitConfig(edge_weight="inverse_frequency"),
        HabitConfig(approx_distinct=False),
        HabitConfig(snap_max_ring=4),
        HabitConfig(snap_limit_cells=100),
        HabitConfig(resample_m=500.0),
    ]
    digests = {config_hash(c) for c in changed} | {config_hash(base)}
    assert len(digests) == len(changed) + 1  # every field moves the digest


def test_save_without_suffix_returns_real_file(fitted, gap, tmp_path):
    # np.savez appends .npz; the returned path must name the written file.
    written = fitted.save(tmp_path / "model")
    assert written.exists()
    restored = HabitImputer.load(written)
    assert restored.graph.num_nodes == fitted.graph.num_nodes


def test_fallback_when_endpoints_far_from_graph(fitted):
    # Endpoints on the other side of the planet: snapping still finds
    # nodes, but if no path exists the imputer degrades gracefully.
    result = fitted.impute((10.0, -40.0), (11.0, -41.0))
    assert result.num_points >= 2
    assert np.all(np.isfinite(result.lats))


def test_typed_imputer(tiny_kiel, gap):
    typed = TypedHabitImputer(
        HabitConfig(resolution=9), min_group_rows=100
    ).fit_from_trips(tiny_kiel.train)
    assert typed.fitted_groups  # at least one class got its own graph
    known = typed.impute(gap.start, gap.end, typed.fitted_groups[0])
    unknown = typed.impute(gap.start, gap.end, "submarine")
    untyped = typed.impute(gap.start, gap.end)
    assert known.num_points >= 2 and unknown.num_points >= 2
    assert untyped.num_points >= 2
    assert typed.storage_size_bytes() > typed.fallback.storage_size_bytes()
