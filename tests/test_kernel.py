"""Unit tests for the vectorised batch CH kernel (`repro.core.kernel`).

The equal-cost property suite (`test_search_properties.py`) hammers the
end-to-end batch/scalar agreement across 220 seeded graphs; this module
covers the kernel-specific machinery underneath it -- range expansion,
chunking, the precomputed shortcut-expansion table, the vectorised
initial witness pass against a brute-force oracle, and the obs
instrumentation.
"""

import heapq

import numpy as np
import pytest

from graphgen import random_graph
from repro.core import kernel
from repro.core.graph import _CH_WITNESS_RTOL
from repro.core.kernel import (
    KERNEL_BATCH_SIZE,
    KERNEL_SECONDS,
    _expand_ranges,
    initial_cut_counts,
)


def _seeded_graph(seed=101, topology="uniform"):
    return random_graph(np.random.default_rng(seed), topology)


def _query_pairs(graph, rng, count):
    nodes = graph.cells
    return [tuple(int(c) for c in rng.choice(nodes, 2)) for _ in range(count)]


def test_expand_ranges_gathers_csr_slices():
    starts = np.array([4, 0, 9], dtype=np.int64)
    counts = np.array([2, 0, 3], dtype=np.int64)
    assert _expand_ranges(starts, counts).tolist() == [4, 5, 9, 10, 11]
    assert _expand_ranges(np.empty(0, np.int64), np.empty(0, np.int64)).size == 0


def test_empty_batch_returns_empty_list():
    graph = _seeded_graph()
    assert graph.find_paths_batch([]) == []


def test_batch_rejects_unknown_method():
    graph = _seeded_graph()
    with pytest.raises(ValueError, match="unknown search method"):
        graph.find_paths_batch([(1, 2)], method="warp")


def test_chunked_sweeps_match_one_chunk(monkeypatch):
    """Tiny BATCH_CHUNK_CELLS forces many kernel chunks; results must be
    identical to the single-chunk run (chunking is purely a memory cap)."""
    graph = _seeded_graph(7)
    rng = np.random.default_rng(3)
    pairs = _query_pairs(graph, rng, 40)
    baseline = graph.find_paths_batch(pairs)
    # Small enough that every chunk holds exactly one query lane.
    monkeypatch.setattr(kernel, "BATCH_CHUNK_CELLS", 1)
    chunked = graph.find_paths_batch(pairs)
    for a, b in zip(baseline, chunked):
        assert (a is None) == (b is None)
        if a is not None:
            assert a.cost == b.cost and a.cells == b.cells
            assert a.expanded == b.expanded


def test_batch_paths_use_only_original_edges():
    """Shortcut unpacking must restore original-graph adjacency: every
    consecutive cell pair in a batch path is a real edge."""
    graph = _seeded_graph(23, "lane")
    rng = np.random.default_rng(5)
    pairs = _query_pairs(graph, rng, 30)
    for (src, dst), result in zip(pairs, graph.find_paths_batch(pairs)):
        if result is None:
            continue
        assert result.cells[0] == src and result.cells[-1] == dst
        for a, b in zip(result.cells, result.cells[1:]):
            assert any(t == b for t, _, _ in graph.adjacency[a]), (a, b)


def test_kernel_metrics_observe_batches():
    graph = _seeded_graph(11)
    rng = np.random.default_rng(1)
    pairs = _query_pairs(graph, rng, 12)
    calls_before = KERNEL_BATCH_SIZE.count()
    seconds_before = KERNEL_SECONDS.count()
    graph.find_paths_batch(pairs)
    assert KERNEL_BATCH_SIZE.count() == calls_before + 1
    assert KERNEL_SECONDS.count() == seconds_before + 1
    assert KERNEL_BATCH_SIZE.sum() >= len(pairs)


def _brute_force_cut_counts(graph, rtol):
    """Scalar witness-pass oracle: full Dijkstra per (node, in-neighbour)
    on the deduped self-loop-free overlay minus the contracted node."""
    n = graph.num_nodes
    out = [dict() for _ in range(n)]
    inn = [dict() for _ in range(n)]
    u = np.repeat(np.arange(n), np.diff(graph.indptr))
    for a, b, c in zip(u.tolist(), graph.indices.tolist(), graph.costs.tolist()):
        if a == b:
            continue
        if b not in out[a] or c < out[a][b]:
            out[a][b] = c
            inn[b][a] = c
    tol = 1.0 + rtol
    counts = np.zeros(n, dtype=np.int64)
    for w in range(n):
        if not inn[w] or not out[w]:
            continue
        for a, cuw in inn[w].items():
            targets = {b for b in out[w] if b != a}
            if not targets:
                continue
            dist = {a: 0.0}
            heap = [(0.0, a)]
            while heap and targets:
                d, x = heapq.heappop(heap)
                if d > dist.get(x, np.inf):
                    continue
                targets.discard(x)
                for y, c in out[x].items():
                    if y == w:
                        continue
                    nd = d + c
                    if nd < dist.get(y, np.inf):
                        dist[y] = nd
                        heapq.heappush(heap, (nd, y))
            for b, cwb in out[w].items():
                if b == a:
                    continue
                through = cuw + cwb
                if dist.get(b, np.inf) > through * tol:
                    counts[w] += 1
    return counts


@pytest.mark.parametrize("seed", [31, 47, 63])
@pytest.mark.parametrize("topology", ["uniform", "lane", "multi_component"])
def test_initial_cut_counts_match_bruteforce_witnesses(seed, topology):
    graph = _seeded_graph(seed, topology)
    counts = initial_cut_counts(
        graph.num_nodes, graph.indptr, graph.indices, graph.costs, _CH_WITNESS_RTOL
    )
    expected = _brute_force_cut_counts(graph, _CH_WITNESS_RTOL)
    assert np.array_equal(counts, expected), (
        f"seed={seed} topology={topology}: "
        f"{np.flatnonzero(counts != expected)[:5]}"
    )


def test_initial_cut_counts_returns_reusable_triples():
    graph = _seeded_graph(53)
    n = graph.num_nodes
    counts, (w, u, v, through) = initial_cut_counts(
        n, graph.indptr, graph.indices, graph.costs, _CH_WITNESS_RTOL,
        return_cuts=True,
    )
    assert len(w) == len(u) == len(v) == len(through) == counts.sum()
    assert np.array_equal(np.bincount(w, minlength=n), counts)
    # Every triple is a genuine in->w->out wedge with the summed cost.
    out = [dict() for _ in range(n)]
    uu = np.repeat(np.arange(n), np.diff(graph.indptr))
    for a, b, c in zip(uu.tolist(), graph.indices.tolist(), graph.costs.tolist()):
        if a != b and (b not in out[a] or c < out[a][b]):
            out[a][b] = c
    for wi, ui, vi, ti in zip(w.tolist(), u.tolist(), v.tolist(), through.tolist()):
        assert ui != vi
        assert ti == out[ui][wi] + out[wi][vi]


def test_empty_graph_initial_pass():
    counts = initial_cut_counts(
        0, np.zeros(1, np.int64), np.empty(0, np.int64), np.empty(0), 1e-12
    )
    assert counts.size == 0
