"""Typed incremental refresh: per-class fit states vs full refit.

The exactness contract mirrors the plain imputer's: for any whole-trip
split of the history, per-class transition counts and graph topology
from the incremental path are exactly equal to the one-shot fit; median
projections differ only within t-digest tolerance (irrelevant under the
default "center" projection used here).
"""

import numpy as np
import pytest

from repro.core import HabitConfig, TypedHabitImputer

MIN_ROWS = 100


@pytest.fixture(scope="module")
def config():
    return HabitConfig(resolution=9, tolerance_m=100.0)


@pytest.fixture(scope="module")
def halves(tiny_kiel):
    """A whole-trip split of the tiny KIEL train table."""
    from repro.ais import schema

    ids = np.asarray(tiny_kiel.train.column(schema.TRIP_ID))
    return tiny_kiel.train.filter(ids % 2 == 0), tiny_kiel.train.filter(ids % 2 == 1)


def _graph_signature(imputer):
    """Order-independent identity of a fitted graph: node cells plus
    (src, dst, count) transition triples."""
    graph = imputer.graph
    cells = frozenset(graph.cells.tolist())
    edges = frozenset(
        zip(graph.edge_src.tolist(), graph.edge_dst.tolist(), graph.edge_count.tolist())
    )
    return cells, edges


def _assert_equivalent(a, b):
    assert a.fitted_groups == b.fitted_groups
    assert _graph_signature(a.fallback) == _graph_signature(b.fallback)
    for name in a.fitted_groups:
        assert _graph_signature(a.by_type[name]) == _graph_signature(b.by_type[name])


def test_fit_partial_finalize_matches_one_shot(tiny_kiel, halves, config):
    one_shot = TypedHabitImputer(config, min_group_rows=MIN_ROWS).fit_from_trips(
        tiny_kiel.train
    )
    chunked = TypedHabitImputer(config, min_group_rows=MIN_ROWS)
    chunked.fit_partial(halves[0]).fit_partial(halves[1]).finalize()
    assert one_shot.fitted_groups  # the dataset actually has typed classes
    _assert_equivalent(chunked, one_shot)


def test_update_matches_full_refit(tiny_kiel, halves, config):
    first, second = halves
    refit = TypedHabitImputer(config, min_group_rows=MIN_ROWS).fit_from_trips(
        tiny_kiel.train
    )
    updated = TypedHabitImputer(config, min_group_rows=MIN_ROWS).fit_from_trips(first)
    updated.update(second)
    assert updated.revision == 2 and refit.revision == 1
    _assert_equivalent(updated, refit)
    # Queries agree too: same snapped route on the same graph.
    gap = tiny_kiel.gaps(3600.0)[0]
    a = updated.impute(gap.start, gap.end, "cargo")
    b = refit.impute(gap.start, gap.end, "cargo")
    assert a.cells == b.cells
    assert np.allclose(a.lats, b.lats) and np.allclose(a.lngs, b.lngs)


def test_thin_class_promoted_once_support_accumulates(halves, config):
    first, second = halves  # all tanker trips sit in the second half
    typed = TypedHabitImputer(config, min_group_rows=MIN_ROWS).fit_from_trips(first)
    assert "tanker" not in typed.fitted_groups
    typed.update(second)
    assert "tanker" in typed.fitted_groups  # promoted, no refit needed
    assert typed.by_type["tanker"].graph.num_nodes > 0


def test_merge_combines_class_states(tiny_kiel, halves, config):
    first, second = halves
    a = TypedHabitImputer(config, min_group_rows=MIN_ROWS).fit_partial(first)
    b = TypedHabitImputer(config, min_group_rows=MIN_ROWS).fit_partial(second)
    merged = a.merge(b).finalize()
    one_shot = TypedHabitImputer(config, min_group_rows=MIN_ROWS).fit_from_trips(
        tiny_kiel.train
    )
    _assert_equivalent(merged, one_shot)
    with pytest.raises(TypeError):
        a.merge(object())


def test_finalize_syncs_class_revisions(tiny_kiel, halves, config):
    typed = TypedHabitImputer(config, min_group_rows=MIN_ROWS).fit_from_trips(halves[0])
    typed.update(halves[1])
    assert typed.revision == 2
    assert typed.fallback.revision == 2
    assert all(i.revision == 2 for i in typed.by_type.values())


def test_save_load_roundtrip_keeps_states_refreshable(tmp_path, halves, config):
    first, second = halves
    typed = TypedHabitImputer(config, min_group_rows=MIN_ROWS).fit_from_trips(first)
    path = typed.save(tmp_path / "typed.npz")
    loaded = TypedHabitImputer.load(path)
    assert loaded.fitted_groups == typed.fitted_groups
    assert loaded.revision == typed.revision
    # The loaded model refreshes incrementally, equivalently to the
    # in-memory one -- states (thin classes included) survived the disk.
    typed.update(second)
    loaded.update(second)
    assert loaded.revision == 2
    _assert_equivalent(loaded, typed)


def test_stateless_save_refuses_update_and_fork(tmp_path, halves, config):
    typed = TypedHabitImputer(config, min_group_rows=MIN_ROWS).fit_from_trips(halves[0])
    path = typed.save(tmp_path / "lean.npz", include_state=False)
    loaded = TypedHabitImputer.load(path)
    assert loaded.fitted_groups == typed.fitted_groups  # serves fine
    with pytest.raises(ValueError, match="fit state"):
        loaded.update(halves[1])
    with pytest.raises(ValueError, match="fit state"):
        loaded.fork()
    # fit_partial must refuse too: folding a chunk into empty states
    # would silently rebuild the graphs from that chunk alone.
    with pytest.raises(ValueError, match="fit state"):
        loaded.fit_partial(halves[1])


def test_update_skips_rebuilding_untouched_classes(tiny_kiel, halves, config):
    """A refresh whose chunk only carries one class's traffic must not
    pay graph (and ALT landmark) rebuilds for every other class."""
    from repro.ais import schema

    typed = TypedHabitImputer(config, min_group_rows=MIN_ROWS).fit_from_trips(
        tiny_kiel.train
    )
    assert "tanker" in typed.fitted_groups and "cargo" in typed.fitted_groups
    tanker_graph = typed.by_type["tanker"].graph
    cargo_graph = typed.by_type["cargo"].graph
    cargo_only = halves[0]  # the even-trip half carries no tanker rows
    assert "tanker" not in np.asarray(cargo_only.column(schema.VESSEL_TYPE))
    typed.update(cargo_only)
    assert typed.by_type["tanker"].graph is tanker_graph  # untouched: reused
    assert typed.by_type["cargo"].graph is not cargo_graph  # touched: rebuilt
    # The untouched class keeps its revision too: its graph (and every
    # cached route on it) is identical, so the serve-path cache stays warm.
    assert typed.revision == 2 and typed.by_type["cargo"].revision == 2
    assert typed.by_type["tanker"].revision == 1


def test_save_before_finalize_raises_cleanly(tmp_path, halves, config):
    typed = TypedHabitImputer(config, min_group_rows=MIN_ROWS).fit_partial(halves[0])
    with pytest.raises(RuntimeError, match="not fitted"):
        typed.save(tmp_path / "unfinalized.npz")


def test_save_refuses_graphs_staler_than_states(tmp_path, halves, config):
    """Persisting a graph alongside a newer state would make load()
    mis-record the graph as current; the refresh skip-untouched check
    would then serve the stale graph forever."""
    typed = TypedHabitImputer(config, min_group_rows=MIN_ROWS).fit_from_trips(halves[0])
    typed.fit_partial(halves[1])  # states now newer than the graphs
    with pytest.raises(RuntimeError, match="finalize"):
        typed.save(tmp_path / "stale.npz")
    typed.finalize()
    path = typed.save(tmp_path / "fresh.npz")  # consistent again
    # The round-trip now reflects *all* folded history, equivalent to a
    # full refit on both halves.
    loaded = TypedHabitImputer.load(path)
    full = TypedHabitImputer(config, min_group_rows=MIN_ROWS)
    full.fit_partial(halves[0]).fit_partial(halves[1]).finalize()
    _assert_equivalent(loaded, full)


def test_fork_shares_states_without_mutation(halves, config):
    typed = TypedHabitImputer(config, min_group_rows=MIN_ROWS).fit_from_trips(halves[0])
    nodes_before = typed.fallback.graph.num_nodes
    fork = typed.fork()
    fork.update(halves[1])
    assert fork is not typed and fork.revision == 2
    assert typed.revision == 1
    assert typed.fallback.graph.num_nodes == nodes_before  # donor untouched
    assert fork.fallback.graph.num_nodes >= nodes_before
