"""Model-format compatibility matrix: v3, v4 and v5 files all load.

Format v5 added the contraction-hierarchy arrays; v4 added the ALT
landmark tables; v3 is the floor (``MIN_MODEL_FORMAT_VERSION``).  The
matrix pinned here:

- files saved at every supported version load into a working imputer;
- pre-v5 files (no CH payload) rebuild the hierarchy on first demand;
- plain and typed round-trips preserve every CH array **bit-exactly**
  (the CH build is deterministic, so save -> load -> rebuild agrees);
- new saves are stamped ``format_version == 5``.
"""

import numpy as np
import pytest

import repro.core.habit as habit_mod
from repro.core import HabitConfig, HabitImputer, TypedHabitImputer


@pytest.fixture(scope="module")
def ch_model(tiny_kiel):
    """Default-config model: search='ch', hierarchy built at finalize."""
    model = HabitImputer(HabitConfig(resolution=9)).fit_from_trips(tiny_kiel.train)
    assert model.config.search == "ch" and model.graph.has_ch
    return model


def _downgrade(saved_path, out_path, version):
    """Rewrite a saved v5 model file as an earlier-version equivalent."""
    with np.load(saved_path) as data:
        payload = {key: data[key] for key in data.files}
    payload["format"] = np.array([habit_mod.MODEL_FORMAT, str(version)])
    strip = habit_mod._CH_KEYS  # v4: everything but the hierarchy
    if version == 3:
        strip = strip + habit_mod._LANDMARK_KEYS
        payload["config"] = payload["config"][:8]  # v3 configs had 8 fields
    for key in strip:
        payload.pop(key, None)
    np.savez(out_path, **payload)
    return out_path


@pytest.mark.parametrize("version", [3, 4, 5])
def test_every_supported_version_loads_and_serves(ch_model, tiny_kiel, tmp_path, version):
    saved = ch_model.save(tmp_path / "v5.npz")
    path = (
        saved
        if version == 5
        else _downgrade(saved, tmp_path / f"v{version}.npz", version)
    )
    restored = HabitImputer.load(path)
    assert restored.graph.num_nodes == ch_model.graph.num_nodes
    # v5 carries the hierarchy; older files must come back without one.
    assert restored.graph.has_ch == (version == 5)
    gap = tiny_kiel.gaps(3600.0)[0]
    result = restored.impute(gap.start, gap.end)
    assert result.num_points >= 2 and result.method == "ch"
    assert restored.graph.has_ch  # pre-v5 loads rebuilt it on demand


def test_prev5_rebuild_matches_persisted_hierarchy(ch_model, tmp_path):
    """The on-demand rebuild after a v4 load equals the persisted arrays."""
    saved = ch_model.save(tmp_path / "v5.npz")
    v4 = _downgrade(saved, tmp_path / "v4.npz", 4)
    restored = HabitImputer.load(v4)
    restored.graph.ensure_ch()
    for key in habit_mod._CH_KEYS:
        assert np.array_equal(getattr(restored.graph, key), getattr(ch_model.graph, key)), key


def test_plain_round_trip_preserves_ch_arrays_bit_exactly(ch_model, tmp_path):
    restored = HabitImputer.load(ch_model.save(tmp_path / "m.npz"))
    assert restored.graph.has_ch
    for key in habit_mod._CH_KEYS:
        ours, theirs = getattr(ch_model.graph, key), getattr(restored.graph, key)
        assert ours.dtype == theirs.dtype and np.array_equal(ours, theirs), key


def test_typed_round_trip_preserves_ch_arrays_bit_exactly(tiny_kiel, tmp_path):
    typed = TypedHabitImputer(HabitConfig(resolution=9)).fit_from_trips(
        tiny_kiel.train
    )
    assert typed.fallback.graph.has_ch  # default search builds CH per class
    restored = TypedHabitImputer.load(typed.save(tmp_path / "typed.npz"))
    graph_pairs = [(typed.fallback.graph, restored.fallback.graph)]
    assert sorted(restored.by_type) == sorted(typed.by_type)
    graph_pairs += [
        (typed.by_type[name].graph, restored.by_type[name].graph)
        for name in sorted(typed.by_type)
    ]
    for ours, theirs in graph_pairs:
        assert theirs.has_ch
        for key in habit_mod._CH_KEYS:
            a, b = getattr(ours, key), getattr(theirs, key)
            assert a.dtype == b.dtype and np.array_equal(a, b), key


def test_new_saves_are_stamped_version_5(ch_model, tmp_path):
    path = ch_model.save(tmp_path / "m.npz")
    with np.load(path) as data:
        tag = data["format"]
        assert str(tag[0]) == habit_mod.MODEL_FORMAT and str(tag[1]) == "5"
        for key in habit_mod._CH_KEYS:
            assert key in data.files, key


def test_versions_outside_the_window_are_rejected(ch_model, tmp_path):
    saved = ch_model.save(tmp_path / "v5.npz")
    with np.load(saved) as data:
        payload = {key: data[key] for key in data.files}
    for bad in ("2", "6"):
        payload["format"] = np.array([habit_mod.MODEL_FORMAT, bad])
        bad_path = tmp_path / f"bad{bad}.npz"
        np.savez(bad_path, **payload)
        with pytest.raises(ValueError, match="format version"):
            HabitImputer.load(bad_path)
