"""DTW metric: reference implementation parity and basic properties."""

import numpy as np
import pytest

from repro.eval.metrics import dtw_distance_m
from repro.geo.proj import latlng_to_xy_m


def _dtw_reference(lats_a, lngs_a, lats_b, lngs_b):
    """Naive O(n*m) DTW used as the oracle."""
    lat0 = (np.mean(lats_a) + np.mean(lats_b)) / 2.0
    xa, ya = latlng_to_xy_m(lats_a, lngs_a, lat0=lat0)
    xb, yb = latlng_to_xy_m(lats_b, lngs_b, lat0=lat0)
    n, m = len(xa), len(xb)
    dp = np.full((n + 1, m + 1), np.inf)
    dp[0, 0] = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            cost = float(np.hypot(xa[i - 1] - xb[j - 1], ya[i - 1] - yb[j - 1]))
            dp[i, j] = cost + min(dp[i - 1, j], dp[i, j - 1], dp[i - 1, j - 1])
    return float(dp[n, m])


def test_identical_paths_zero():
    lats = 55.0 + np.linspace(0, 0.1, 20)
    lngs = 10.0 + np.linspace(0, 0.1, 20)
    assert dtw_distance_m(lats, lngs, lats, lngs) == pytest.approx(0.0, abs=1e-6)


@pytest.mark.parametrize("n,m", [(1, 1), (1, 5), (5, 1), (7, 7), (13, 9), (30, 41)])
def test_matches_reference(rng, n, m):
    lats_a = 55.0 + np.cumsum(rng.normal(0, 0.002, n))
    lngs_a = 10.0 + np.cumsum(rng.normal(0, 0.002, n))
    lats_b = 55.0 + np.cumsum(rng.normal(0, 0.002, m))
    lngs_b = 10.0 + np.cumsum(rng.normal(0, 0.002, m))
    fast = dtw_distance_m(lats_a, lngs_a, lats_b, lngs_b)
    slow = _dtw_reference(lats_a, lngs_a, lats_b, lngs_b)
    assert fast == pytest.approx(slow, rel=1e-9)


def test_translation_increases_distance(rng):
    lats = 55.0 + np.cumsum(rng.normal(0, 0.002, 50))
    lngs = 10.0 + np.cumsum(rng.normal(0, 0.002, 50))
    near = dtw_distance_m(lats, lngs, lats + 1e-4, lngs)
    far = dtw_distance_m(lats, lngs, lats + 1e-2, lngs)
    assert far > near > 0


def test_empty_path_rejected():
    with pytest.raises(ValueError):
        dtw_distance_m([], [], [55.0], [10.0])
