"""geo: simplifiers, turn statistics, projection sanity."""

import numpy as np
import pytest

from repro.geo import (
    path_length_m,
    rdp_simplify,
    turn_statistics,
    vw_simplify,
)


@pytest.fixture()
def zigzag():
    # A 10-point path with one sharp spike in the middle.
    lats = np.full(10, 55.0)
    lngs = 10.0 + np.arange(10) * 0.01
    lats[5] += 0.05  # ~5.5 km spike
    return lats, lngs


def test_rdp_keeps_endpoints_and_spike(zigzag):
    lats, lngs = zigzag
    out_lat, out_lng = rdp_simplify(lats, lngs, 200.0)
    assert out_lat[0] == lats[0] and out_lat[-1] == lats[-1]
    assert lats[5] in out_lat  # spike far above tolerance survives
    assert len(out_lat) < len(lats)


def test_rdp_collinear_collapses_to_two_points():
    lats = np.full(20, 55.0)
    lngs = 10.0 + np.arange(20) * 0.01
    out_lat, out_lng = rdp_simplify(lats, lngs, 10.0)
    assert len(out_lat) == 2


def test_rdp_zero_tolerance_is_identity(zigzag):
    lats, lngs = zigzag
    out_lat, out_lng = rdp_simplify(lats, lngs, 0.0)
    assert np.array_equal(out_lat, lats)
    assert np.array_equal(out_lng, lngs)


def test_rdp_removed_points_stay_within_tolerance(rng):
    lats = 55.0 + np.cumsum(rng.normal(0, 0.001, 200))
    lngs = 10.0 + np.cumsum(rng.normal(0, 0.001, 200))
    tolerance = 150.0
    out_lat, out_lng = rdp_simplify(lats, lngs, tolerance)
    # Every original point must lie within tolerance of the simplified path.
    from repro.geo.proj import latlng_to_xy_m
    from repro.geo.simplify import _point_segment_distance

    x, y = latlng_to_xy_m(lats, lngs, lat0=55.0)
    sx, sy = latlng_to_xy_m(out_lat, out_lng, lat0=55.0)
    for px, py in zip(x, y):
        best = min(
            float(
                _point_segment_distance(
                    np.asarray([px]), np.asarray([py]), sx[i], sy[i], sx[i + 1], sy[i + 1]
                )[0]
            )
            for i in range(len(sx) - 1)
        )
        assert best <= tolerance + 1e-6


def test_rdp_keeps_collinear_overshoot_spikes():
    # An out-and-back excursion along one meridian: the spike is exactly
    # collinear with its neighbours but far outside their chord, so the
    # fast-path pre-drop must leave it for the exact scan to keep.
    lats = np.array([55.0, 55.1, 55.001, 54.9])
    lngs = np.full(4, 10.0)
    out_lat, _ = rdp_simplify(lats, lngs, 200.0)
    assert 55.1 in out_lat
    # Degenerate chord: the point's neighbours coincide (vessel returned
    # to the same position); the 25 km spike between them must survive.
    lats = np.array([55.0, 55.2, 55.0, 54.8])
    lngs = np.array([10.0, 10.3, 10.0, 10.0])
    out_lat, out_lng = rdp_simplify(lats, lngs, 200.0)
    assert 55.2 in out_lat and 10.3 in out_lng


def test_vw_collinear_collapses(zigzag):
    lats = np.full(20, 55.0)
    lngs = 10.0 + np.arange(20) * 0.01
    out_lat, _ = vw_simplify(lats, lngs, 1000.0)
    assert len(out_lat) == 2


def test_vw_keeps_large_features(zigzag):
    lats, lngs = zigzag
    out_lat, _ = vw_simplify(lats, lngs, 10_000.0)
    assert lats[5] in out_lat
    assert out_lat[0] == lats[0] and out_lat[-1] == lats[-1]


def test_turn_statistics_straight_line():
    lats = np.full(10, 55.0)
    lngs = 10.0 + np.arange(10) * 0.01
    stats = turn_statistics(lats, lngs)
    assert stats.num_positions == 10
    assert stats.turns_over_45deg == 0
    assert stats.max_abs_turn_deg == pytest.approx(0.0, abs=1e-9)


def test_turn_statistics_right_angle():
    lats = np.array([55.0, 55.0, 55.01])
    lngs = np.array([10.0, 10.01, 10.01])
    stats = turn_statistics(lats, lngs)
    assert stats.turns_over_45deg == 1
    assert stats.max_abs_turn_deg == pytest.approx(90.0, abs=1.0)


def test_turn_statistics_tiny_paths():
    assert turn_statistics([55.0], [10.0]).num_positions == 1
    assert turn_statistics([55.0, 55.1], [10.0, 10.1]).turns_over_45deg == 0


def test_path_length():
    lats = np.array([55.0, 55.0])
    lngs = np.array([10.0, 10.0 + 1.0 / np.cos(np.radians(55.0)) / 111_320.0 * 1000.0])
    assert path_length_m(lats, lngs) == pytest.approx(1000.0, rel=1e-3)
