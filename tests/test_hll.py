"""HyperLogLog: cardinality accuracy, merging, grouped estimates."""

import numpy as np

from repro.minidb import Table, agg
from repro.minidb.hll import HyperLogLog, grouped_approx_count_distinct


def test_cardinality_within_error(rng):
    values = rng.integers(0, 500_000, 200_000)
    true = len(np.unique(values))
    sketch = HyperLogLog()
    sketch.add_array(values)
    estimate = sketch.cardinality()
    assert abs(estimate - true) / true < 0.05  # p=12 => ~1.6% std error


def test_small_cardinality_nearly_exact(rng):
    values = rng.integers(0, 50, 10_000)
    sketch = HyperLogLog()
    sketch.add_array(values)
    assert abs(sketch.cardinality() - 50) <= 2


def test_incremental_add_matches_bulk(rng):
    values = rng.integers(0, 1000, 200)
    bulk = HyperLogLog().add_array(values)
    one_by_one = HyperLogLog()
    for v in values:
        one_by_one.add(int(v))
    assert bulk.cardinality() == one_by_one.cardinality()


def test_merge_equals_union(rng):
    a_values = rng.integers(0, 10_000, 30_000)
    b_values = rng.integers(5_000, 15_000, 30_000)
    a = HyperLogLog().add_array(a_values)
    b = HyperLogLog().add_array(b_values)
    union = HyperLogLog().add_array(np.concatenate([a_values, b_values]))
    a.merge(b)
    assert a.cardinality() == union.cardinality()


def test_grouped_estimates_track_truth(rng):
    n = 100_000
    codes = rng.integers(0, 50, n)
    values = rng.integers(0, 2_000, n)
    estimates = grouped_approx_count_distinct(codes, 50, values)
    for group in range(0, 50, 7):
        true = len(np.unique(values[codes == group]))
        assert abs(estimates[group] - true) / true < 0.1


def test_agg_approx_vs_exact(rng):
    n = 50_000
    table = Table(
        {"k": rng.integers(0, 20, n), "v": rng.integers(0, 5_000, n)}
    )
    result = table.group_by("k").agg(
        agg.count_distinct("v").alias("exact"),
        agg.approx_count_distinct("v").alias("approx"),
    )
    relative = np.abs(result["approx"] - result["exact"]) / result["exact"]
    assert relative.max() < 0.1
