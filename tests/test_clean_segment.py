"""clean_messages / segment_trips edge cases and invariants."""

import numpy as np
import pytest

from repro.ais import schema
from repro.core import clean_messages, segment_trips
from repro.minidb import Table


def _raw(vessel, t, lat, lon, sog=None, cog=None):
    n = len(t)
    return Table(
        {
            schema.VESSEL_ID: np.asarray(vessel, dtype=np.int64),
            schema.T: np.asarray(t, dtype=np.float64),
            schema.LAT: np.asarray(lat, dtype=np.float64),
            schema.LON: np.asarray(lon, dtype=np.float64),
            schema.SOG: np.asarray(sog if sog is not None else np.full(n, 8.0)),
            schema.COG: np.asarray(cog if cog is not None else np.zeros(n)),
            schema.VESSEL_TYPE: np.full(n, "cargo", dtype="U16"),
        }
    )


def test_clean_empty_table():
    empty = _raw([], [], [], [])
    assert clean_messages(empty).num_rows == 0


def test_clean_drops_invalid_rows():
    table = _raw(
        vessel=[1, 1, 1, 1, 1, 1],
        t=[0.0, 30.0, 60.0, 90.0, 120.0, np.nan],
        lat=[55.0, 99.0, 55.0, np.nan, 55.0, 55.0],
        lon=[10.0, 10.0, 400.0, 10.0, 10.0, 10.0],
        sog=[5.0, 5.0, 5.0, 5.0, -3.0, 5.0],
    )
    cleaned = clean_messages(table)
    assert cleaned.num_rows == 1
    assert cleaned.column(schema.T)[0] == 0.0


def test_clean_dedupes_and_sorts():
    table = _raw(
        vessel=[2, 1, 1, 1],
        t=[10.0, 30.0, 10.0, 30.0],
        lat=[55.0, 55.1, 55.2, 55.3],
        lon=[10.0, 10.1, 10.2, 10.3],
    )
    cleaned = clean_messages(table)
    assert cleaned.num_rows == 3  # duplicate (1, 30.0) dropped
    assert np.array_equal(cleaned.column(schema.VESSEL_ID), [1, 1, 2])
    assert np.array_equal(cleaned.column(schema.T), [10.0, 30.0, 10.0])


def test_segment_empty_table():
    segmented = segment_trips(_raw([], [], [], []))
    assert segmented.num_rows == 0
    assert schema.TRIP_ID in segmented


def test_segment_single_point_dropped():
    table = _raw([1], [0.0], [55.0], [10.0])
    assert segment_trips(table).num_rows == 0
    assert segment_trips(table, min_points=1).num_rows == 1


def test_segment_out_of_order_timestamps():
    table = _raw(
        vessel=[1, 1, 1],
        t=[60.0, 0.0, 30.0],
        lat=[55.002, 55.000, 55.001],
        lon=[10.0, 10.0, 10.0],
    )
    segmented = segment_trips(table)
    assert segmented.num_rows == 3
    assert np.all(np.diff(segmented.column(schema.T)) > 0)
    assert len(np.unique(segmented.column(schema.TRIP_ID))) == 1


def test_segment_splits_on_time_gap():
    table = _raw(
        vessel=[1, 1, 1, 1],
        t=[0.0, 30.0, 10_000.0, 10_030.0],
        lat=[55.0, 55.001, 55.002, 55.003],
        lon=[10.0, 10.0, 10.0, 10.0],
    )
    segmented = segment_trips(table, max_gap_s=1800.0)
    trips = segmented.column(schema.TRIP_ID)
    assert len(np.unique(trips)) == 2
    assert trips[0] == trips[1]
    assert trips[2] == trips[3]


def test_segment_splits_on_position_jump():
    table = _raw(
        vessel=[1, 1, 1, 1],
        t=[0.0, 30.0, 60.0, 90.0],
        lat=[55.0, 55.001, 56.0, 56.001],  # ~110 km teleport
        lon=[10.0, 10.0, 10.0, 10.0],
    )
    segmented = segment_trips(table, max_jump_m=5000.0)
    assert len(np.unique(segmented.column(schema.TRIP_ID))) == 2


def test_segment_separates_vessels():
    table = _raw(
        vessel=[1, 2, 1, 2],
        t=[0.0, 0.0, 30.0, 30.0],
        lat=[55.0, 56.0, 55.001, 56.001],
        lon=[10.0, 11.0, 10.0, 11.0],
    )
    segmented = segment_trips(table)
    by_trip = {}
    for trip, vessel in zip(
        segmented.column(schema.TRIP_ID), segmented.column(schema.VESSEL_ID)
    ):
        by_trip.setdefault(int(trip), set()).add(int(vessel))
    assert all(len(vessels) == 1 for vessels in by_trip.values())


def test_trip_ids_unique_and_dense():
    table = _raw(
        vessel=[1, 1, 2, 2],
        t=[0.0, 30.0, 0.0, 30.0],
        lat=[55.0, 55.001, 56.0, 56.001],
        lon=[10.0, 10.0, 11.0, 11.0],
    )
    trips = np.unique(segment_trips(table).column(schema.TRIP_ID))
    assert np.array_equal(trips, np.arange(len(trips)))


@pytest.mark.parametrize("min_points", [2, 3])
def test_min_points_filter(min_points):
    table = _raw(
        vessel=[1, 1, 2, 2, 2],
        t=[0.0, 30.0, 0.0, 30.0, 60.0],
        lat=[55.0, 55.001, 56.0, 56.001, 56.002],
        lon=[10.0] * 5,
    )
    segmented = segment_trips(table, min_points=min_points)
    counts = np.bincount(segmented.column(schema.TRIP_ID))
    assert np.all(counts[counts > 0] >= min_points)
