"""Property suite for budget-constrained compression (repro.geo.budget).

Fuzzes :class:`BudgetCompressor` / :func:`compress_to_budget` over seeded
trajectories spanning five topologies -- random walks, lane-shaped tracks
with curvature, duplicate-point runs, collinear runs, and inputs already
within budget -- asserting the hard invariants:

- the output never exceeds ``max_points``;
- both endpoints are always kept;
- the output is a subsequence of the input (strictly increasing indices,
  coordinates untouched);
- the reported ``max_sed_m`` is >= the true SED of every dropped point,
  recomputed exactly against the output polyline;
- streaming one-at-a-time ingest is point-identical to the offline twin.
"""

import numpy as np
import pytest

from repro.geo import BudgetCompressor, compress_to_budget

CASES_PER_TOPOLOGY = 48  # x5 topologies = 240 seeded trajectories
TOPOLOGIES = ("random", "lane", "duplicates", "collinear", "within_budget")


def _trajectory(topology, seed):
    """One seeded (x, y, t) trajectory of the requested topology."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(24, 160))
    t = np.cumsum(rng.uniform(5.0, 60.0, size=n))
    if topology == "random":
        x = np.cumsum(rng.normal(0.0, 120.0, size=n))
        y = np.cumsum(rng.normal(0.0, 120.0, size=n))
    elif topology == "lane":
        # A shipping-lane shape: steady along-track progress with a
        # smooth cross-track sweep plus mild jitter.
        s = np.linspace(0.0, n * 90.0, n)
        x = s + rng.normal(0.0, 8.0, size=n)
        y = 400.0 * np.sin(s / 1500.0) + rng.normal(0.0, 8.0, size=n)
    elif topology == "duplicates":
        x = np.cumsum(rng.normal(0.0, 100.0, size=n))
        y = np.cumsum(rng.normal(0.0, 100.0, size=n))
        # Hold position over random stretches: repeated identical fixes.
        holds = rng.integers(0, n, size=max(2, n // 6))
        for h in holds:
            stop = min(n, h + int(rng.integers(2, 6)))
            x[h:stop] = x[h]
            y[h:stop] = y[h]
    elif topology == "collinear":
        s = np.cumsum(rng.uniform(10.0, 200.0, size=n))
        x = s * 0.8
        y = s * 0.6
        # A few genuine corners so the heap has real decisions to make.
        corners = rng.integers(1, n - 1, size=3)
        y[corners] += rng.uniform(200.0, 800.0, size=3)
    elif topology == "within_budget":
        n = int(rng.integers(2, 12))
        x = np.cumsum(rng.normal(0.0, 150.0, size=n))
        y = np.cumsum(rng.normal(0.0, 150.0, size=n))
        t = np.cumsum(rng.uniform(5.0, 60.0, size=n))
    else:  # pragma: no cover - guard against topology typos
        raise AssertionError(topology)
    return x, y, t


def _budget_for(topology, n, rng):
    if topology == "within_budget":
        return int(max(n, rng.integers(n, n + 20)))
    return int(rng.integers(2, max(3, n // 2)))


def _true_dropped_sed(x, y, t, kept):
    """Exact SED of each dropped point against the kept polyline."""
    mask = np.zeros(len(x), dtype=bool)
    mask[kept] = True
    dropped = np.flatnonzero(~mask)
    if len(dropped) == 0:
        return np.empty(0)
    seg = np.searchsorted(kept, dropped) - 1
    u, v = kept[seg], kept[seg + 1]
    span = t[v] - t[u]
    frac = np.where(span > 0.0, (t[dropped] - t[u]) / np.where(span > 0.0, span, 1.0), 0.5)
    frac = np.clip(frac, 0.0, 1.0)
    return np.hypot(
        x[dropped] - (x[u] + frac * (x[v] - x[u])),
        y[dropped] - (y[u] + frac * (y[v] - y[u])),
    )


@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("case", range(CASES_PER_TOPOLOGY))
def test_budget_invariants(topology, case):
    seed = TOPOLOGIES.index(topology) * 1009 + case
    x, y, t = _trajectory(topology, seed)
    n = len(x)
    rng = np.random.default_rng(seed + 1)
    budget = _budget_for(topology, n, rng)
    use_t = bool(rng.integers(0, 2))
    sync = t if use_t else None

    res = compress_to_budget(x, y, budget, t=sync)
    kept = res.indices

    # Budget respected; bookkeeping consistent.
    assert res.points_out <= budget or n <= budget
    assert res.points_out == len(kept)
    assert res.points_in == n
    assert res.points_dropped == n - len(kept)

    # Endpoints always kept; output is a subsequence of the input.
    assert kept[0] == 0
    assert kept[-1] == n - 1
    assert np.all(np.diff(kept) > 0)

    # Within budget => identity (nothing dropped, zero error).
    if n <= budget:
        assert len(kept) == n
        assert res.max_sed_m == 0.0
        assert res.mean_sed_m == 0.0
        return

    # Offline twin reports the exact dropped-point SED.
    sync_arr = t if use_t else np.arange(n, dtype=np.float64)
    true_sed = _true_dropped_sed(x, y, sync_arr, kept)
    assert res.max_sed_m == pytest.approx(true_sed.max())
    assert res.mean_sed_m == pytest.approx(true_sed.mean())

    # Online bound is sound: streaming reports >= the true error, and the
    # kept subsequence is point-identical to the offline twin.
    comp = BudgetCompressor(budget)
    for i in range(n):
        comp.push(x[i], y[i], None if sync is None else t[i])
    online = comp.result()
    np.testing.assert_array_equal(online.indices, kept)
    assert online.points_in == n
    assert online.points_out == len(kept)
    assert online.max_sed_m >= true_sed.max() - 1e-9
    assert online.mean_sed_m >= 0.0


def test_streaming_finalize_is_merge_free():
    """result() mid-stream must not disturb subsequent compression."""
    rng = np.random.default_rng(11)
    x = np.cumsum(rng.normal(0.0, 100.0, size=80))
    y = np.cumsum(rng.normal(0.0, 100.0, size=80))
    interrupted = BudgetCompressor(12)
    for i in range(80):
        interrupted.push(x[i], y[i])
        if i % 7 == 0:
            interrupted.result()  # snapshot, then keep streaming
    straight = BudgetCompressor(12)
    for i in range(80):
        straight.push(x[i], y[i])
    np.testing.assert_array_equal(
        interrupted.result().indices, straight.result().indices
    )


def test_budget_two_keeps_only_endpoints():
    rng = np.random.default_rng(3)
    x = np.cumsum(rng.normal(0.0, 50.0, size=40))
    y = np.cumsum(rng.normal(0.0, 50.0, size=40))
    res = compress_to_budget(x, y, 2)
    np.testing.assert_array_equal(res.indices, [0, 39])


def test_single_point_and_pair_pass_through():
    res = compress_to_budget([1.0], [2.0], 5)
    np.testing.assert_array_equal(res.indices, [0])
    res = compress_to_budget([1.0, 3.0], [2.0, 4.0], 2)
    np.testing.assert_array_equal(res.indices, [0, 1])
    assert res.max_sed_m == 0.0


def test_invalid_budgets_rejected():
    with pytest.raises(ValueError):
        BudgetCompressor(1)
    with pytest.raises(ValueError):
        BudgetCompressor(0)
    with pytest.raises(ValueError):
        BudgetCompressor(-4)
    with pytest.raises(TypeError):
        BudgetCompressor(2.5)
    with pytest.raises(TypeError):
        BudgetCompressor(True)


def test_degenerate_timestamps_do_not_crash():
    """Equal and non-monotone timestamps fall back to clamped interpolation."""
    rng = np.random.default_rng(9)
    x = np.cumsum(rng.normal(0.0, 80.0, size=50))
    y = np.cumsum(rng.normal(0.0, 80.0, size=50))
    t = np.zeros(50)  # all-equal sync parameter
    res = compress_to_budget(x, y, 10, t=t)
    assert res.points_out <= 10
    assert np.isfinite(res.max_sed_m)
    t = rng.uniform(0.0, 100.0, size=50)  # shuffled, non-monotone
    res = compress_to_budget(x, y, 10, t=t)
    assert res.points_out <= 10
    assert np.isfinite(res.max_sed_m)


def test_buffer_never_exceeds_budget_between_pushes():
    rng = np.random.default_rng(21)
    comp = BudgetCompressor(16)
    for _ in range(500):
        comp.push(rng.normal(0.0, 1000.0), rng.normal(0.0, 1000.0))
        assert len(comp) <= 16
    res = comp.result()
    assert res.points_in == 500
    assert res.points_out == 16
