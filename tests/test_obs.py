"""repro.obs: metric core, mergeable snapshots, /metrics, worker merge."""

import json
import re
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    METRICS,
    MetricsRegistry,
    diff_snapshots,
    merge_snapshots,
)
from repro.service import BatchImputationEngine, GapRequest, ModelRegistry, make_server


@pytest.fixture()
def registry(tmp_path, service_model):
    reg = ModelRegistry(tmp_path / "models", capacity=4)
    reg.publish("KIEL", service_model)
    return reg


@pytest.fixture()
def server(registry):
    server = make_server(registry, port=0, max_workers=4)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get_json(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def _get_text(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.status, response.read().decode("utf-8"), dict(
            response.headers
        )


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def _series(snapshot, name):
    return snapshot.get(name, {"series": {}})["series"]


# -- metric core ---------------------------------------------------------


def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    counter = reg.counter("c_total", "a counter", ("tier",))
    counter.inc(labels=("hit",))
    counter.inc(2, labels=("hit",))
    counter.inc(labels=("miss",))
    assert counter.value(("hit",)) == 3
    assert counter.value(("miss",)) == 1
    assert counter.value(("never",)) == 0
    assert isinstance(counter.value(("hit",)), int)  # int stays int

    gauge = reg.gauge("g", "a gauge")
    gauge.set(4.5)
    assert gauge.value() == 4.5

    hist = reg.histogram("h_seconds", "a histogram", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):  # one beyond the last edge
        hist.observe(value)
    assert hist.count() == 5
    assert hist.sum() == pytest.approx(56.05)
    # Quantiles interpolate within buckets and saturate at the last edge.
    assert 0.0 < hist.quantile(0.1) <= 0.1
    assert 0.1 < hist.quantile(0.5) <= 1.0
    assert hist.quantile(0.999) == 10.0
    summary = hist.summary()
    assert summary["count"] == 5 and summary["p99"] == 10.0

    with hist.time():
        pass
    assert hist.count() == 6


def test_histogram_empty_quantile_and_wrong_labels():
    reg = MetricsRegistry()
    hist = reg.histogram("h", "h", ("k",))
    assert hist.quantile(0.5, ("x",)) is None
    with pytest.raises(ValueError, match="label values"):
        hist.observe(1.0)  # missing the label
    with pytest.raises(ValueError, match="increasing"):
        reg.histogram("bad", "b", buckets=(1.0, 1.0))


def test_declarations_are_idempotent_but_conflicts_raise():
    reg = MetricsRegistry()
    first = reg.counter("x_total", "x", ("a",))
    again = reg.counter("x_total", "x", ("a",))
    assert first is again
    with pytest.raises(ValueError, match="already declared"):
        reg.counter("x_total", "x", ("a", "b"))  # different labels
    with pytest.raises(ValueError, match="already declared"):
        reg.gauge("x_total", "x", ("a",))  # different kind


def test_disabled_registry_makes_observations_noops():
    reg = MetricsRegistry(enabled=False)
    counter = reg.counter("c_total", "c")
    hist = reg.histogram("h_seconds", "h")
    counter.inc()
    hist.observe(1.0)
    assert counter.value() == 0 and hist.count() == 0
    reg.set_enabled(True)
    counter.inc()
    assert counter.value() == 1


def test_default_buckets_are_sane():
    assert LATENCY_BUCKETS[0] == pytest.approx(1e-5)
    assert LATENCY_BUCKETS[-1] == pytest.approx(10.0)
    assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
    assert COUNT_BUCKETS[0] == 1.0 and COUNT_BUCKETS[-1] == 65536.0


def test_render_prometheus_text_format():
    reg = MetricsRegistry()
    reg.counter("c_total", "the counter", ("tier",)).inc(3, ("hit",))
    reg.gauge("g", "the gauge").set(2)
    hist = reg.histogram("h_seconds", "the histogram", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    reg.counter("quiet_total", "declared, never incremented")
    text = reg.render_prometheus()
    lines = text.strip().splitlines()
    assert '# HELP c_total the counter' in lines
    assert '# TYPE c_total counter' in lines
    assert 'c_total{tier="hit"} 3' in lines
    assert 'g 2' in lines
    assert '# TYPE h_seconds histogram' in lines
    assert 'h_seconds_bucket{le="0.1"} 1' in lines
    assert 'h_seconds_bucket{le="1"} 2' in lines
    assert 'h_seconds_bucket{le="+Inf"} 2' in lines
    assert 'h_seconds_sum 0.55' in lines
    assert 'h_seconds_count 2' in lines
    # Declared-but-silent metrics still render their catalogue entry.
    assert '# TYPE quiet_total counter' in lines
    # Every non-comment line is "name{labels} value".
    sample = re.compile(r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+$')
    assert all(sample.match(line) for line in lines if not line.startswith("#"))


def test_render_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("c_total", "c", ("path",)).inc(1, ('we"ird\\pa\nth',))
    text = reg.render_prometheus()
    assert 'c_total{path="we\\"ird\\\\pa\\nth"} 1' in text


def test_render_json_shape():
    reg = MetricsRegistry()
    reg.counter("c_total", "c", ("tier",)).inc(2, ("hit",))
    reg.histogram("h_seconds", "h", buckets=(1.0,)).observe(0.5)
    rendered = reg.render_json()
    assert rendered["c_total"]["kind"] == "counter"
    assert rendered["c_total"]["series"] == [
        {"labels": {"tier": "hit"}, "value": 2}
    ]
    histogram = rendered["h_seconds"]
    assert histogram["buckets"] == [1.0]
    (series,) = histogram["series"]
    assert series["value"]["count"] == 1 and series["value"]["buckets"] == [1, 0]
    json.dumps(rendered)  # JSON-serialisable as-is


# -- mergeable snapshots -------------------------------------------------


def _random_registry(rng, rounds=200):
    """A registry fuzzed with integer-valued observations (so histogram
    sums are exactly representable and merges must be bit-exact)."""
    reg = MetricsRegistry()
    counter = reg.counter("c_total", "c", ("tier",))
    hist = reg.histogram("h_seconds", "h", ("method",), buckets=(1.0, 8.0, 64.0))
    gauge = reg.gauge("g", "g")
    tiers = ("hit", "miss", "bypass")
    methods = ("ch", "alt")
    for _ in range(rounds):
        roll = int(rng.integers(0, 3))
        if roll == 0:
            counter.inc(int(rng.integers(1, 10)), (tiers[rng.integers(0, 3)],))
        elif roll == 1:
            hist.observe(int(rng.integers(0, 100)), (methods[rng.integers(0, 2)],))
        else:
            gauge.set(int(rng.integers(0, 100)))
    return reg


def test_merge_is_bit_exact_and_order_independent(rng):
    a = _random_registry(rng).snapshot()
    b = _random_registry(rng).snapshot()
    c = _random_registry(rng).snapshot()
    ab, ba = merge_snapshots(a, b), merge_snapshots(b, a)
    assert ab == ba  # commutative, bit for bit
    # Associative too (integer counts and exactly-representable sums).
    assert merge_snapshots(ab, c) == merge_snapshots(a, merge_snapshots(b, c))
    # Counters and bucket counts are the exact integer sums of the parts.
    for tier in ("hit", "miss", "bypass"):
        key = (tier,)
        expected = _series(a, "c_total").get(key, 0) + _series(b, "c_total").get(key, 0)
        assert _series(ab, "c_total").get(key, 0) == expected
    for method in ("ch", "alt"):
        key = (method,)
        sa = _series(a, "h_seconds").get(key)
        sb = _series(b, "h_seconds").get(key)
        merged = _series(ab, "h_seconds").get(key)
        if sa is None or sb is None:
            assert merged == (sa or sb)
            continue
        assert merged["buckets"] == [
            x + y for x, y in zip(sa["buckets"], sb["buckets"])
        ]
        assert merged["count"] == sa["count"] + sb["count"]
        assert merged["sum"] == sa["sum"] + sb["sum"]


def test_merge_rejects_mismatched_metrics():
    a = MetricsRegistry()
    a.counter("m", "m").inc()
    b = MetricsRegistry()
    b.gauge("m", "m").set(1)
    with pytest.raises(ValueError, match="cannot merge"):
        merge_snapshots(a.snapshot(), b.snapshot())
    c = MetricsRegistry()
    c.histogram("h", "h", buckets=(1.0,)).observe(0.5)
    d = MetricsRegistry()
    d.histogram("h", "h", buckets=(2.0,)).observe(0.5)
    with pytest.raises(ValueError, match="bucket edges"):
        merge_snapshots(c.snapshot(), d.snapshot())


def test_diff_then_absorb_reproduces_worker_growth(rng):
    """The process-pool piggyback contract: shipping diff(now, last)
    after every batch and absorbing each delta reproduces the worker's
    counters in the parent exactly, without double counting."""
    worker = _random_registry(rng, rounds=50)
    parent = MetricsRegistry()
    shipped = None
    for _ in range(4):  # four "batches" of further worker activity
        counter = worker.counter("c_total", "c", ("tier",))
        hist = worker.histogram("h_seconds", "h", ("method",), buckets=(1.0, 8.0, 64.0))
        counter.inc(int(rng.integers(1, 5)), ("hit",))
        hist.observe(int(rng.integers(0, 100)), ("ch",))
        now = worker.snapshot()
        parent.absorb(diff_snapshots(now, shipped))
        shipped = now
    worker_final = worker.snapshot()
    parent_final = parent.snapshot()
    assert _series(parent_final, "c_total") == _series(worker_final, "c_total")
    assert _series(parent_final, "h_seconds") == _series(worker_final, "h_seconds")
    # Gauges are process-local: never shipped, never absorbed.
    assert "g" not in parent_final


def test_diff_drops_unchanged_series(rng):
    reg = MetricsRegistry()
    counter = reg.counter("c_total", "c", ("tier",))
    counter.inc(5, ("hit",))
    before = reg.snapshot()
    counter.inc(1, ("miss",))
    delta = diff_snapshots(reg.snapshot(), before)
    assert _series(delta, "c_total") == {("miss",): 1}
    assert diff_snapshots(reg.snapshot(), reg.snapshot()) == {}


def test_absorb_skips_gauges_and_unknown_metrics_materialise():
    donor = MetricsRegistry()
    donor.counter("only_in_donor_total", "d", ("k",)).inc(7, ("v",))
    donor.gauge("donor_gauge", "d").set(3)
    target = MetricsRegistry()
    target.absorb(donor.snapshot())
    snap = target.snapshot()
    assert _series(snap, "only_in_donor_total") == {("v",): 7}
    assert "donor_gauge" not in snap


# -- the instrumented stack ----------------------------------------------


def test_search_and_fit_metrics_flow_into_global_registry(service_model, tiny_kiel):
    gap = tiny_kiel.gaps(3600.0)[0]
    src, dst = service_model.snap_endpoints(gap.start, gap.end)
    before = METRICS.snapshot()
    assert service_model.graph.find_path(src, dst, "astar") is not None
    delta = diff_snapshots(METRICS.snapshot(), before)
    assert _series(delta, "repro_search_seconds")[("astar",)]["count"] == 1
    assert _series(delta, "repro_search_expanded")[("astar",)]["count"] == 1
    # The session-scoped model was fitted through the instrumented
    # pipeline, so fit-stage spans are already in the global registry.
    fit = _series(METRICS.snapshot(), "repro_fit_seconds")
    assert fit[("partial",)]["count"] >= 1
    assert fit[("finalize",)]["count"] >= 1


def test_process_worker_metrics_merge_into_parent(registry, service_model, tiny_kiel):
    """Acceptance criterion: worker-side path-cache and search counters
    must be visible in the parent's registry (merged, not zero).  In
    process mode the parent imputes nothing itself, so every count in
    the delta below was shipped back from a worker."""
    gap = tiny_kiel.gaps(3600.0)[0]
    requests = [GapRequest("KIEL", gap.start, gap.end, f"r{i}") for i in range(3)]
    before = METRICS.snapshot()
    with BatchImputationEngine(registry, max_workers=1, executor="process") as engine:
        engine.run(requests, service_model.config)
        engine.run(requests, service_model.config)  # warm worker: cache hits
    delta = diff_snapshots(METRICS.snapshot(), before)
    impute = _series(delta, "repro_impute_seconds")
    assert impute[("process",)]["count"] == 6
    cache = _series(delta, "repro_path_cache_total")
    assert cache.get(("miss",), 0) >= 1  # first route searched in the worker
    assert cache.get(("coalesced",), 0) >= 2  # in-batch repeats share one lane
    assert cache.get(("hit",), 0) >= 3  # the whole warm batch
    search = _series(delta, "repro_search_seconds")
    assert sum(s["count"] for s in search.values()) >= 1
    # The worker's own registry load surfaced too.
    resolutions = _series(delta, "repro_registry_resolutions_total")
    assert resolutions.get(("load",), 0) >= 1


# -- HTTP: /metrics, healthz path_cache, access log ----------------------


def test_http_metrics_endpoint_prometheus_and_json(server, tiny_kiel):
    gap = tiny_kiel.gaps(3600.0)[0]
    payload = {"dataset": "KIEL", "start": list(gap.start), "end": list(gap.end)}
    _post(server, "/impute", payload)
    _post(server, "/impute", payload)
    status, text, headers = _get_text(server, "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    # All instrumented layers present in one scrape.
    for name in (
        "repro_search_seconds",
        "repro_search_expanded",
        "repro_graph_build_seconds",
        "repro_fit_seconds",
        "repro_registry_resolutions_total",
        "repro_registry_seconds",
        "repro_registry_evictions_total",
        "repro_registry_models_loaded",
        "repro_path_cache_total",
        "repro_impute_seconds",
        "repro_follow_cycle_seconds",
        "repro_follow_rows_total",
        "repro_http_requests_total",
        "repro_http_request_seconds",
    ):
        assert f"# TYPE {name} " in text, name
    assert 'repro_path_cache_total{tier="hit"}' in text
    assert re.search(
        r'repro_http_requests_total\{route="/impute",status="200"\} \d+', text
    )
    assert 'repro_http_request_seconds_bucket{route="/impute",le="+Inf"}' in text
    status, body = _get_json(server, "/metrics?format=json")
    assert status == 200
    assert body["repro_http_requests_total"]["kind"] == "counter"
    impute_series = [
        s
        for s in body["repro_http_requests_total"]["series"]
        if s["labels"] == {"route": "/impute", "status": "200"}
    ]
    assert impute_series and impute_series[0]["value"] >= 2


def test_http_unknown_routes_fold_into_other_label(server):
    with pytest.raises(urllib.error.HTTPError) as err:
        _get_json(server, "/secret-scan-attempt")
    assert err.value.code == 404
    _, body = _get_json(server, "/metrics?format=json")
    routes = {
        s["labels"]["route"] for s in body["repro_http_requests_total"]["series"]
    }
    assert "other" in routes
    assert not any(route.startswith("/secret") for route in routes)


def test_healthz_path_cache_block(server, tiny_kiel):
    _, before = _get_json(server, "/healthz")
    block = before["path_cache"]
    assert {"hits", "misses", "entries", "capacity"} <= set(block)
    assert block["capacity"] == 4096 and block["entries"] == 0
    gap = tiny_kiel.gaps(3600.0)[0]
    payload = {"dataset": "KIEL", "start": list(gap.start), "end": list(gap.end)}
    _post(server, "/impute", payload)
    _post(server, "/impute", payload)
    _, after = _get_json(server, "/healthz")
    assert after["path_cache"]["entries"] == 1
    assert after["path_cache"]["hits"] >= block["hits"] + 1
    assert after["path_cache"]["misses"] >= block["misses"] + 1


def test_make_server_metrics_disabled_404s_route(registry):
    server = make_server(registry, port=0, metrics=False)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    try:
        with pytest.raises(urllib.error.HTTPError) as err:
            _get_json(base, "/metrics")
        assert err.value.code == 404
        # healthz keeps its path_cache block via the parent's counters.
        _, health = _get_json(base, "/healthz")
        assert "path_cache" in health
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_json_access_log_lines(registry, tiny_kiel, tmp_path):
    log_path = tmp_path / "access.jsonl"
    server = make_server(registry, port=0, log_json=True, log_file=str(log_path))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    try:
        gap = tiny_kiel.gaps(3600.0)[0]
        _post(
            base,
            "/impute",
            {
                "requests": [
                    {
                        "dataset": "KIEL",
                        "start": list(gap.start),
                        "end": list(gap.end),
                        "id": "logged-1",
                    }
                ]
            },
        )
        _get_json(base, "/healthz")
    finally:
        server.shutdown()
        server.server_close()
        server.access_log_file.close()
        thread.join(timeout=5)
    lines = [json.loads(line) for line in log_path.read_text().splitlines()]
    assert len(lines) == 2
    impute, health = lines
    assert impute["route"] == "/impute" and impute["status"] == 200
    assert impute["method"] == "POST" and impute["latency_ms"] > 0
    assert impute["batch"] == 1 and impute["request_ids"] == ["logged-1"]
    assert health["route"] == "/healthz" and "batch" not in health


def test_concurrent_impute_and_metrics_scrapes(server, tiny_kiel):
    """Hammer /impute and /metrics from parallel threads: every scrape
    must be internally consistent (bucket counts sum to the count -- no
    torn reads) and the request counter must be monotone."""
    gaps = tiny_kiel.gaps(3600.0)
    observed = []

    def impute(i):
        gap = gaps[i % len(gaps)]
        status, _ = _post(
            server,
            "/impute",
            {"dataset": "KIEL", "start": list(gap.start), "end": list(gap.end)},
        )
        return status

    def scrape(_):
        status, body = _get_json(server, "/metrics?format=json")
        assert status == 200
        requests_total = sum(
            s["value"]
            for s in body["repro_http_requests_total"]["series"]
            if s["labels"]["route"] == "/impute"
        )
        latency = body["repro_http_request_seconds"]
        for series in latency["series"]:
            value = series["value"]
            assert sum(value["buckets"]) == value["count"]  # consistent read
        observed.append(requests_total)
        return status

    with ThreadPoolExecutor(max_workers=8) as pool:
        jobs = [pool.submit(impute, i) for i in range(24)]
        jobs += [pool.submit(scrape, i) for i in range(24)]
        assert all(job.result() == 200 for job in jobs)
    # Monotone in submission order is not guaranteed across threads, but
    # a final scrape must dominate everything seen mid-flight...
    scrape(0)
    assert observed[-1] == max(observed)
    assert observed[-1] >= 24
    # ...and repeated sequential scrapes never go backwards.
    serial = [
        sum(
            s["value"]
            for s in _get_json(server, "/metrics?format=json")[1][
                "repro_http_requests_total"
            ]["series"]
        )
        for _ in range(5)
    ]
    assert serial == sorted(serial)
