"""CSR search engine: variant equivalence, landmarks, v3-v5 models, snaps."""

import numpy as np
import pytest

from graphgen import uniform_graph as _random_graph
from repro.core import SEARCH_METHODS, CellGraph, HabitConfig, HabitImputer
from repro.hexgrid import (
    cell_axial_array,
    cell_to_latlng_array,
    grid_distance_array,
    latlng_to_cell_array,
)


def _path_cost(graph, result):
    """Recompute a result's cost from the adjacency view (oracle check)."""
    total = 0.0
    for a, b in zip(result.cells, result.cells[1:]):
        total += min(c for t, c, _ in graph.adjacency[a] if t == b)
    return total


def test_all_variants_equal_cost_on_random_graphs():
    """astar / dijkstra / bidirectional / ALT / CH agree on any admissible graph."""
    rng = np.random.default_rng(1234)
    for _ in range(8):
        graph = _random_graph(rng)
        nodes = graph.cells
        for _ in range(12):
            src, dst = rng.choice(nodes, 2)
            results = {m: graph.find_path(src, dst, m) for m in SEARCH_METHODS}
            if results["dijkstra"] is None:
                # Disconnected pair: every variant must say so.
                assert all(r is None for r in results.values())
                continue
            oracle = results["dijkstra"].cost
            for method, result in results.items():
                assert result.cost == pytest.approx(oracle, rel=1e-9), method
                assert result.cells[0] == src and result.cells[-1] == dst
                assert _path_cost(graph, result) == pytest.approx(result.cost)
                assert result.expanded >= 0 and result.method == method


def test_disconnected_components_return_none_everywhere():
    rng = np.random.default_rng(7)
    # A connected-ish west cluster plus edge-less east nodes ~50 km away.
    west = _random_graph(rng, num_nodes=20, num_edges=60, spread=0.2)
    shift = int(
        latlng_to_cell_array(np.array([55.0]), np.array([10.7]), 9)[0]
        - latlng_to_cell_array(np.array([55.0]), np.array([10.0]), 9)[0]
    )
    east_cells = west.cells + shift
    all_cells = np.concatenate([west.cells, east_cells])
    lats, lngs = cell_to_latlng_array(all_cells)
    graph = CellGraph(
        all_cells,
        lats,
        lngs,
        west.edge_src,
        west.edge_dst,
        west.edge_cost,
        west.edge_count,
    )
    src = int(west.edge_src[0])  # west component, has outgoing edges
    dst = int(east_cells[0])  # east node, unreachable by construction
    for method in SEARCH_METHODS:
        assert graph.find_path(src, dst, method) is None


def test_find_path_rejects_unknown_method():
    graph = _random_graph(np.random.default_rng(3), num_nodes=10, num_edges=20)
    with pytest.raises(ValueError, match="unknown search method"):
        graph.find_path(int(graph.cells[0]), int(graph.cells[1]), "bfs")


def test_trivial_and_missing_endpoints():
    graph = _random_graph(np.random.default_rng(5), num_nodes=12, num_edges=30)
    cell = int(graph.cells[0])
    same = graph.find_path(cell, cell, "astar")
    assert same.cells == (cell,) and same.cost == 0.0 and same.expanded == 0
    # A cell that is no node: searches return None, astar() wrapper too.
    missing = int(graph.cells.max()) + 12345
    assert graph.find_path(cell, missing, "bidirectional") is None
    assert graph.astar(missing, cell) is None


def test_heuristics_expand_no_more_than_dijkstra(tiny_kiel):
    imputer = HabitImputer(HabitConfig(resolution=9)).fit_from_trips(tiny_kiel.train)
    graph = imputer.graph
    gaps = tiny_kiel.gaps(3600.0)
    checked = 0
    for gap in gaps:
        snapped = imputer.snap_endpoints(gap.start, gap.end)
        if snapped is None:
            continue
        dijkstra = graph.find_path(snapped[0], snapped[1], "dijkstra")
        if dijkstra is None:
            continue
        for method in ("astar", "alt"):
            guided = graph.find_path(snapped[0], snapped[1], method)
            assert guided.cost == pytest.approx(dijkstra.cost)
            assert guided.expanded <= dijkstra.expanded
        checked += 1
    assert checked > 0


def test_compat_views_match_csr(tiny_kiel):
    imputer = HabitImputer(HabitConfig(resolution=9)).fit_from_trips(tiny_kiel.train)
    graph = imputer.graph
    assert set(graph.node_attrs) == set(int(c) for c in graph.cells)
    total_edges = sum(len(v) for v in graph.adjacency.values())
    assert total_edges == graph.num_edges == len(graph.indices)
    # CSR axial coordinates match the packed ids.
    q, r = cell_axial_array(graph.cells)
    assert np.array_equal(graph.node_q, q.astype(np.int32))
    assert np.array_equal(graph.node_r, r.astype(np.int32))


def test_snap_memoization_and_scalar_fallback(tiny_kiel):
    imputer = HabitImputer(HabitConfig(resolution=9)).fit_from_trips(tiny_kiel.train)
    graph = imputer.graph
    # A cell far outside every ring: exercises the full-scan fallback.
    far = latlng_to_cell_array(np.array([57.5]), np.array([13.5]), 9)[0]
    first = graph.nearest_node(far, max_ring=2)
    assert first is not None and (int(far), 2) in graph._snap_cache
    assert graph.nearest_node(far, max_ring=2) == first
    # The fallback must agree with a brute-force scan.
    brute = int(
        graph.cells[int(np.argmin(grid_distance_array(graph.cells, np.int64(far))))]
    )
    assert first == brute


# -- landmarks & model format v3-v5 ---------------------------------------


@pytest.fixture(scope="module")
def alt_model(tiny_kiel):
    return HabitImputer(
        HabitConfig(resolution=9, search="alt", num_landmarks=6)
    ).fit_from_trips(tiny_kiel.train)


def test_finalize_computes_landmarks_for_alt(alt_model):
    graph = alt_model.graph
    assert graph.has_landmarks
    assert 1 <= len(graph.landmarks) <= 6
    assert graph.landmark_from.shape == (len(graph.landmarks), graph.num_nodes)
    assert graph.landmark_to.shape == graph.landmark_from.shape
    # Landmarks sit at distance 0 from themselves.
    for row, node in enumerate(graph.landmarks):
        assert graph.landmark_from[row, node] == 0.0
        assert graph.landmark_to[row, node] == 0.0


def test_v4_round_trip_preserves_landmarks(alt_model, tiny_kiel, tmp_path):
    gap = tiny_kiel.gaps(3600.0)[0]
    path = alt_model.save(tmp_path / "alt.npz")
    restored = HabitImputer.load(path)
    assert restored.config == alt_model.config
    assert restored.graph.has_landmarks
    assert np.array_equal(restored.graph.landmarks, alt_model.graph.landmarks)
    assert np.array_equal(restored.graph.landmark_from, alt_model.graph.landmark_from)
    assert np.array_equal(restored.graph.landmark_to, alt_model.graph.landmark_to)
    a = alt_model.impute(gap.start, gap.end)
    b = restored.impute(gap.start, gap.end)
    assert np.array_equal(a.lats, b.lats) and np.array_equal(a.lngs, b.lngs)
    assert a.method == b.method == "alt"


def _as_v3_file(saved_path, out_path):
    """Rewrite a saved (v5) model as its v3 equivalent."""
    import repro.core.habit as habit_mod

    with np.load(saved_path) as data:
        payload = {key: data[key] for key in data.files}
    payload["format"] = np.array([habit_mod.MODEL_FORMAT, "3"])
    payload["config"] = payload["config"][:8]  # v3 configs had 8 fields
    for key in habit_mod._LANDMARK_KEYS + habit_mod._CH_KEYS:
        payload.pop(key, None)
    np.savez(out_path, **payload)
    return out_path


def test_v3_files_still_load_and_rebuild_landmarks(alt_model, tiny_kiel, tmp_path):
    gap = tiny_kiel.gaps(3600.0)[0]
    v3 = _as_v3_file(alt_model.save(tmp_path / "v5.npz"), tmp_path / "v3.npz")
    restored = HabitImputer.load(v3)
    # v3 configs fall back to current defaults for the new fields.
    assert restored.config.search == HabitConfig().search
    assert not restored.graph.has_landmarks  # dropped with the v3 payload
    result = restored.impute(gap.start, gap.end, method="alt")
    assert restored.graph.has_landmarks  # rebuilt on demand
    assert result.num_points >= 2 and result.method == "alt"
    # State survived, so incremental refresh still works after a v3 load.
    restored.update(tiny_kiel.test)
    assert restored.revision == 2


def test_saved_format_version_is_5(alt_model, tmp_path):
    import repro.core.habit as habit_mod

    path = alt_model.save(tmp_path / "m.npz")
    with np.load(path) as data:
        tag = data["format"]
        assert str(tag[0]) == habit_mod.MODEL_FORMAT and str(tag[1]) == "5"
        assert len(data["config"]) == 10


def test_search_config_round_trips_through_service_schema():
    from repro.service import parse_impute_payload

    _, config = parse_impute_payload(
        {
            "dataset": "KIEL",
            "start": [54.0, 10.0],
            "end": [55.0, 11.0],
            "config": {"search": "bidirectional", "num_landmarks": 4},
        }
    )
    assert config.search == "bidirectional" and config.num_landmarks == 4


def test_impute_method_override_and_config_search(tiny_kiel):
    gap = tiny_kiel.gaps(3600.0)[0]
    imputer = HabitImputer(
        HabitConfig(resolution=9, search="bidirectional")
    ).fit_from_trips(tiny_kiel.train)
    default = imputer.impute(gap.start, gap.end)
    assert default.method == "bidirectional"
    assert default.expanded > 0
    legacy = imputer.impute(gap.start, gap.end, use_heuristic=False)
    assert legacy.method == "dijkstra"
    override = imputer.impute(gap.start, gap.end, method="astar")
    assert override.method == "astar"
