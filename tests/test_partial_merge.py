"""Merge semantics: partial -> merge must reproduce the one-shot pass.

Property-style checks over random tables and random row partitions:
counts, distincts, HLL, min/max/first merge exactly; sums merge to float
tolerance; medians stay within the documented t-digest rank-error bound.
The same contract is then pinned at the statistics layer (sharded and
incremental fits vs ``compute_statistics``) and at the model layer
(``fit_partial``/``merge``/``finalize`` vs ``fit_from_trips``).
"""

import numpy as np
import pytest

from repro.core import (
    HabitConfig,
    HabitImputer,
    compute_statistics,
    compute_statistics_sharded,
    merge_statistics,
    parallel_fit,
    partial_statistics,
    shard_trips,
)
from repro.minidb import Table, TDigest, agg, merge_states
from repro.minidb.partial import GroupState

ALL_SPECS = (
    agg.count(),
    agg.sum("x"),
    agg.mean("x"),
    agg.min("x"),
    agg.max("x"),
    agg.first("x"),
    agg.median("x"),
    agg.count_distinct("who"),
    agg.approx_count_distinct("who"),
)

GRAPH_KEYS = ("cells", "lats", "lngs", "edge_src", "edge_dst", "edge_cost", "edge_count")


def _random_table(rng, n=8000, groups=200):
    return Table(
        {
            "k": rng.integers(0, groups, n),
            "k2": rng.integers(0, 4, n),
            "x": rng.normal(size=n),
            "who": rng.integers(0, 60, n),
        }
    )


def _partition(rng, table, shards):
    assign = rng.integers(0, shards, table.num_rows)
    return [table.filter(assign == s) for s in range(shards)]


@pytest.mark.parametrize("shards", [1, 3, 7])
def test_merged_partials_match_one_shot(rng, shards):
    table = _random_table(rng)
    eager = table.group_by("k", "k2").agg(*ALL_SPECS)
    states = [
        part.group_by("k", "k2").partial(*ALL_SPECS)
        for part in _partition(rng, table, shards)
    ]
    merged = merge_states(states).finalize()
    assert merged.column_names == eager.column_names
    for key in ("k", "k2", "count", "min_x", "max_x", "distinct_who"):
        assert np.array_equal(merged[key], eager[key]), key
    # HLL registers max-merge losslessly: estimates are bit-equal.
    assert np.array_equal(merged["approx_distinct_who"], eager["approx_distinct_who"])
    assert np.allclose(merged["sum_x"], eager["sum_x"])
    assert np.allclose(merged["mean_x"], eager["mean_x"])


def test_first_matches_shard_concatenation_order(rng):
    table = _random_table(rng)
    parts = _partition(rng, table, 4)
    states = [p.group_by("k").partial(agg.first("x")) for p in parts]
    reference = Table.concat(parts).group_by("k").agg(agg.first("x"))
    merged = merge_states(states).finalize()
    assert np.array_equal(merged["first_x"], reference["first_x"])


def test_merged_median_within_tdigest_tolerance(rng):
    # Big groups force centroid compression; the estimate must stay
    # within the documented rank-error band around the exact median.
    n = 60_000
    table = Table({"k": rng.integers(0, 8, n), "x": rng.normal(size=n)})
    eager = table.group_by("k").agg(agg.median("x"))
    states = [
        p.group_by("k").partial(agg.median("x")) for p in _partition(rng, table, 6)
    ]
    merged = merge_states(states).finalize()
    for row, key in enumerate(eager["k"]):
        values = np.sort(table["x"][table["k"] == key])
        # Rank tolerance: a few compression buckets around q = 0.5
        # (pi/delta per bucket, doubled for the merge recompression).
        eps = 2.5 * np.pi / 128
        lo = values[int(len(values) * (0.5 - eps))]
        hi = values[int(len(values) * (0.5 + eps))]
        assert lo <= merged["median_x"][row] <= hi


def test_small_group_medians_are_exact(rng):
    # Below one value per compression bucket nothing collides, so the
    # digest interpolates back to the exact (lo + hi) / 2 sample median.
    table = _random_table(rng, n=3000, groups=400)
    eager = table.group_by("k").agg(agg.median("x"))
    merged = merge_states(
        [p.group_by("k").partial(agg.median("x")) for p in _partition(rng, table, 3)]
    ).finalize()
    assert np.allclose(merged["median_x"], eager["median_x"], atol=1e-12)


def test_single_state_finalize_equals_eager(rng):
    table = _random_table(rng)
    eager = table.group_by("k").agg(*ALL_SPECS)
    alone = table.group_by("k").partial(*ALL_SPECS).finalize()
    for key in eager.column_names:
        if key.startswith("median"):
            assert np.allclose(alone[key], eager[key], atol=1e-12)
        elif key.startswith(("sum", "mean")):
            assert np.allclose(alone[key], eager[key])
        else:
            assert np.array_equal(alone[key], eager[key]), key


def test_state_payload_round_trip(rng):
    table = _random_table(rng)
    state = table.group_by("k", "k2").partial(*ALL_SPECS)
    restored = GroupState.from_payload(state.payload("pfx_"), "pfx_")
    a, b = state.finalize(), restored.finalize()
    for key in a.column_names:
        assert np.array_equal(np.asarray(a[key]), np.asarray(b[key])), key


def test_merge_rejects_mismatched_states(rng):
    table = _random_table(rng)
    by_k = table.group_by("k").partial(agg.count())
    by_k2 = table.group_by("k2").partial(agg.count())
    with pytest.raises(ValueError, match="different keys"):
        merge_states([by_k, by_k2])
    with pytest.raises(ValueError, match="at least one"):
        merge_states([])


def test_partial_rejects_unmergeable_spec(rng):
    table = _random_table(rng)
    with pytest.raises(ValueError, match="no mergeable state"):
        table.group_by("k").partial(agg.AggSpec("mode", "x", "mode_x"))


def test_tdigest_scalar_accuracy_and_merge(rng):
    values = rng.normal(size=50_000)
    whole = TDigest().add_array(values)
    parts = np.array_split(values, 8)
    merged = TDigest().add_array(parts[0])
    for part in parts[1:]:
        merged.merge(TDigest().add_array(part))
    for q in (0.1, 0.5, 0.9):
        exact = np.quantile(values, q)
        assert whole.quantile(q) == pytest.approx(exact, abs=0.05)
        assert merged.quantile(q) == pytest.approx(exact, abs=0.05)
    assert merged.total_weight == len(values)
    # Unit-weight exactness on small inputs (matches the eager median rule).
    small = TDigest().add_array(np.array([3.0, 1.0, 4.0, 2.0]))
    assert small.median() == pytest.approx(2.5)
    assert np.isnan(TDigest().median())


# -- statistics layer ----------------------------------------------------


@pytest.fixture(scope="module")
def kiel_config():
    return HabitConfig(resolution=9)


def test_sharded_statistics_exactness(tiny_kiel, kiel_config):
    cell_stats, transition_stats = compute_statistics(tiny_kiel.train, kiel_config)
    for shards in (2, 5):
        cell_sh, tr_sh = compute_statistics_sharded(
            tiny_kiel.train, kiel_config, num_shards=shards
        )
        assert np.array_equal(cell_stats["cell"], cell_sh["cell"])
        assert np.array_equal(cell_stats["count"], cell_sh["count"])
        assert np.array_equal(cell_stats["vessels"], cell_sh["vessels"])
        assert np.array_equal(transition_stats["cell"], tr_sh["cell"])
        assert np.array_equal(transition_stats["next_cell"], tr_sh["next_cell"])
        assert np.array_equal(transition_stats["transitions"], tr_sh["transitions"])
        assert np.array_equal(transition_stats["vessels"], tr_sh["vessels"])


def test_shard_trips_keeps_trips_whole(tiny_kiel, kiel_config):
    shards = shard_trips(tiny_kiel.train, 4, kiel_config.resolution)
    assert sum(s.num_rows for s in shards) == tiny_kiel.train.num_rows
    seen = [set(np.asarray(s.column("trip_id")).tolist()) for s in shards]
    for i in range(len(seen)):
        for j in range(i + 1, len(seen)):
            assert not (seen[i] & seen[j]), "a trip crossed shards"


def test_merge_statistics_rejects_mixed_configs(tiny_kiel):
    a = partial_statistics(tiny_kiel.train, HabitConfig(resolution=9))
    b = partial_statistics(tiny_kiel.train, HabitConfig(resolution=8))
    with pytest.raises(ValueError, match="different resolutions"):
        merge_statistics([a, b])


def test_statistics_reject_invalid_coordinates(tiny_kiel, kiel_config):
    lat = np.asarray(tiny_kiel.train.column("lat")).copy()
    lat[0] = np.nan
    with pytest.raises(ValueError, match="cell-indexed"):
        compute_statistics(tiny_kiel.train.with_columns(lat=lat), kiel_config)
    lon = np.asarray(tiny_kiel.train.column("lon")).copy()
    lon[-1] = 181.0
    with pytest.raises(ValueError, match="clean_messages"):
        partial_statistics(tiny_kiel.train.with_columns(lon=lon), kiel_config)


# -- model layer ---------------------------------------------------------


def test_parallel_fit_graph_is_bit_identical(tiny_kiel, kiel_config):
    one_shot = HabitImputer(kiel_config).fit_from_trips(tiny_kiel.train)
    sharded = parallel_fit(tiny_kiel.train, kiel_config, num_shards=4)
    for key in GRAPH_KEYS:
        assert np.array_equal(
            getattr(one_shot.graph, key), getattr(sharded.graph, key)
        ), key


def test_fit_partial_then_update_matches_full_fit(tiny_kiel, kiel_config):
    trip_ids = np.asarray(tiny_kiel.train.column("trip_id"))
    old = tiny_kiel.train.filter(trip_ids % 2 == 0)
    new = tiny_kiel.train.filter(trip_ids % 2 == 1)
    full = HabitImputer(kiel_config).fit_from_trips(tiny_kiel.train)
    incremental = HabitImputer(kiel_config).fit_from_trips(old)
    assert incremental.revision == 1
    incremental.update(new)
    assert incremental.revision == 2
    for key in GRAPH_KEYS:
        assert np.array_equal(
            getattr(full.graph, key), getattr(incremental.graph, key)
        ), key


def test_model_state_round_trips_and_updates_after_load(
    tiny_kiel, kiel_config, tmp_path
):
    trip_ids = np.asarray(tiny_kiel.train.column("trip_id"))
    old = tiny_kiel.train.filter(trip_ids % 2 == 0)
    new = tiny_kiel.train.filter(trip_ids % 2 == 1)
    saved = HabitImputer(kiel_config).fit_from_trips(old).save(tmp_path / "m.npz")
    restored = HabitImputer.load(saved)
    restored.update(new)
    full = HabitImputer(kiel_config).fit_from_trips(tiny_kiel.train)
    for key in GRAPH_KEYS:
        assert np.array_equal(getattr(full.graph, key), getattr(restored.graph, key))
    # A state-less artefact still serves but refuses incremental updates.
    lean_path = full.save(tmp_path / "lean.npz", include_state=False)
    assert lean_path.stat().st_size < saved.stat().st_size
    lean = HabitImputer.load(lean_path)
    assert lean.graph.num_nodes == full.graph.num_nodes
    with pytest.raises(ValueError, match="without its fit state"):
        lean.update(new)


def test_finalize_without_state_raises():
    with pytest.raises(RuntimeError, match="no fit state"):
        HabitImputer().finalize()
    with pytest.raises(ValueError, match="no fit state"):
        HabitImputer().merge(HabitImputer())
