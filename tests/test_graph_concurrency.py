"""Thread-safety of the lazy auxiliary builds (landmarks and CH).

``ensure_landmarks`` and ``ensure_ch`` are called from serving threads on
first use, so they must be idempotent and race-free: many threads hitting
a cold graph at once must trigger exactly one build, every thread must
observe the same finished tables, and mixing the two builds (both guarded
by the one shared reentrant lock) must not deadlock.
"""

import threading

import numpy as np
import pytest

from graphgen import uniform_graph
from repro.core import SEARCH_METHODS

_THREADS = 12


def _hammer(target, threads=_THREADS):
    """Release *threads* workers through a barrier at ``target``; re-raise."""
    barrier = threading.Barrier(threads)
    errors = []

    def run():
        try:
            barrier.wait(timeout=30.0)
            target()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    workers = [threading.Thread(target=run) for _ in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=60.0)
    assert not any(w.is_alive() for w in workers), "worker deadlocked"
    if errors:
        raise errors[0]


def test_concurrent_ensure_ch_builds_once():
    graph = uniform_graph(np.random.default_rng(21))
    builds = []
    original = graph._compute_ch_locked

    def counting_compute():
        builds.append(threading.get_ident())
        original()

    graph._compute_ch_locked = counting_compute
    _hammer(graph.ensure_ch)
    assert graph.has_ch
    assert len(builds) == 1, "double-checked locking let a second build through"
    # Every thread sees one consistent hierarchy: ranks are a permutation.
    assert sorted(graph.ch_rank.tolist()) == list(range(graph.num_nodes))


def test_concurrent_ensure_landmarks_builds_once():
    graph = uniform_graph(np.random.default_rng(22))
    builds = []
    original = graph._compute_landmarks_locked

    def counting_compute(k):
        builds.append(threading.get_ident())
        original(k)

    graph._compute_landmarks_locked = counting_compute
    _hammer(lambda: graph.ensure_landmarks(6))
    assert graph.has_landmarks
    assert len(builds) == 1
    assert graph.landmark_from.shape == (len(graph.landmarks), graph.num_nodes)


def test_mixed_builds_and_queries_share_the_lock_without_deadlock():
    rng = np.random.default_rng(23)
    graph = uniform_graph(rng)
    nodes = graph.cells
    pairs = [tuple(int(c) for c in rng.choice(nodes, 2)) for _ in range(_THREADS)]
    oracle = {p: graph.find_path(p[0], p[1], "dijkstra") for p in pairs}
    mismatches = []

    def worker_for(index):
        src, dst = pairs[index]
        method = SEARCH_METHODS[index % len(SEARCH_METHODS)]

        def work():
            graph.ensure_landmarks(4)
            graph.ensure_ch()
            result = graph.find_path(src, dst, method)
            expect = oracle[(src, dst)]
            if (result is None) != (expect is None):
                mismatches.append((method, src, dst, "reachability"))
            elif result is not None and result.cost != pytest.approx(
                expect.cost, rel=1e-9
            ):
                mismatches.append((method, src, dst, result.cost, expect.cost))

        return work

    barrier = threading.Barrier(_THREADS)
    errors = []

    def run(index):
        try:
            barrier.wait(timeout=30.0)
            worker_for(index)()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    workers = [threading.Thread(target=run, args=(i,)) for i in range(_THREADS)]
    for w in workers:
        w.start()
    for w in workers:
        w.join(timeout=60.0)
    assert not any(w.is_alive() for w in workers), "worker deadlocked"
    assert not errors, errors
    assert not mismatches, mismatches
    assert graph.has_landmarks and graph.has_ch


def test_ensure_calls_are_idempotent_after_build():
    graph = uniform_graph(np.random.default_rng(24))
    graph.ensure_ch()
    rank = graph.ch_rank
    up_costs = graph.ch_up_costs
    graph.ensure_ch()  # second call must be a no-op, not a rebuild
    assert graph.ch_rank is rank and graph.ch_up_costs is up_costs
    graph.ensure_landmarks(5)
    table = graph.landmark_from
    graph.ensure_landmarks(5)
    assert graph.landmark_from is table
