"""Streaming ingest: chunked CSV reading and incremental segmentation.

The contract under test: a month-scale dump processed chunk-by-chunk --
``read_csv_chunks`` -> ``clean_messages`` -> ``StreamingSegmenter`` ->
``fit_partial`` -- must produce the same trips and the same model as
loading everything at once, while never holding more than a chunk (plus
open trips) in memory.
"""

import numpy as np
import pytest

from repro.ais import read_csv, read_csv_chunks, schema
from repro.ais.reader import AISFormatError
from repro.core import (
    HabitConfig,
    HabitImputer,
    StreamingSegmenter,
    segment_trips,
    segment_trips_stream,
)
from repro.minidb import Table


def _raw(vessel, t, lat, lon):
    n = len(t)
    return Table(
        {
            schema.VESSEL_ID: np.asarray(vessel, dtype=np.int64),
            schema.T: np.asarray(t, dtype=np.float64),
            schema.LAT: np.asarray(lat, dtype=np.float64),
            schema.LON: np.asarray(lon, dtype=np.float64),
            schema.SOG: np.full(n, 8.0),
            schema.COG: np.zeros(n),
            schema.VESSEL_TYPE: np.full(n, "cargo", dtype="U16"),
        }
    )


def _canonical_trips(trips):
    """Trip contents independent of trip-id numbering."""
    trip_ids = np.asarray(trips.column(schema.TRIP_ID))
    t = np.asarray(trips.column(schema.T), dtype=np.float64)
    vessel = np.asarray(trips.column(schema.VESSEL_ID))
    groups = {}
    for i in range(len(trip_ids)):
        groups.setdefault(int(trip_ids[i]), []).append((int(vessel[i]), float(t[i])))
    return sorted(tuple(sorted(rows)) for rows in groups.values())


def _time_ordered_chunks(table, sizes, rng):
    order = np.argsort(np.asarray(table.column(schema.T)), kind="stable")
    ordered = table.take(order)
    chunks = []
    i = 0
    while i < ordered.num_rows:
        size = int(rng.integers(*sizes))
        chunks.append(
            Table({k: v[i : i + size] for k, v in ordered.to_dict().items()})
        )
        i += size
    return chunks


# -- incremental segmentation --------------------------------------------


def test_trip_spanning_chunks_segments_identically():
    # One vessel, one 8-report trip cut mid-trip; plus a second vessel
    # whose two voyages straddle the boundary with a >30 min gap.
    t1 = np.arange(8) * 60.0
    v2_t = np.concatenate([np.arange(3) * 60.0, 7200.0 + np.arange(3) * 60.0])
    whole = _raw(
        vessel=[1] * 8 + [2] * 6,
        t=np.concatenate([t1, v2_t]),
        lat=np.concatenate([55.0 + np.arange(8) * 1e-3, 56.0 + np.arange(6) * 1e-3]),
        lon=np.full(14, 10.0),
    )
    batch = segment_trips(whole)
    split_at = np.asarray(whole.column(schema.T)) <= 200.0
    first = whole.filter(split_at)
    second = whole.filter(~split_at)
    segmenter = StreamingSegmenter()
    emitted = [segmenter.push(first), segmenter.push(second), segmenter.flush()]
    streamed = Table.concat([e for e in emitted if e.num_rows])
    assert streamed.num_rows == batch.num_rows
    assert _canonical_trips(streamed) == _canonical_trips(batch)


def test_streaming_matches_batch_on_random_chunks(tiny_kiel, rng):
    raw = tiny_kiel.bundle.table
    from repro.core import clean_messages

    cleaned = clean_messages(raw)
    batch = segment_trips(cleaned)
    chunks = _time_ordered_chunks(cleaned, (200, 1500), rng)
    streamed_parts = list(segment_trips_stream(iter(chunks)))
    streamed = Table.concat(streamed_parts)
    assert streamed.num_rows == batch.num_rows
    assert _canonical_trips(streamed) == _canonical_trips(batch)


def test_min_points_applies_at_emission_and_flush():
    # Vessel 3's lone report and vessel 4's lone tail report must drop.
    table = _raw(
        vessel=[3, 4, 4],
        t=[0.0, 0.0, 60.0],
        lat=[55.0, 56.0, 56.001],
        lon=[10.0, 10.0, 10.0],
    )
    segmenter = StreamingSegmenter(min_points=2)
    assert segmenter.push(table).num_rows == 0  # everything still open
    out = segmenter.flush()
    assert np.array_equal(np.unique(out.column(schema.VESSEL_ID)), [4])
    assert out.num_rows == 2


def test_push_rejects_rows_behind_emitted_trips():
    segmenter = StreamingSegmenter()
    segmenter.push(_raw([1, 1], [0.0, 60.0], [55.0, 55.001], [10.0, 10.0]))
    # A >30 min jump forward closes the first trip...
    segmenter.push(_raw([1, 1], [10_000.0, 10_060.0], [55.0, 55.001], [10.0, 10.0]))
    assert segmenter.open_rows == 2
    # ...after which a report older than the emitted trip must refuse.
    with pytest.raises(ValueError, match="time-ordered"):
        segmenter.push(_raw([1], [30.0], [55.0], [10.0]))


def test_watermark_covers_trips_dropped_by_min_points():
    # A lone report at t=0 closes (and is dropped by min_points) when the
    # post-gap reports arrive; a late report at t=100 overlaps that
    # dropped trip and must still be refused -- accepting it would
    # silently diverge from the one-shot segmentation.
    segmenter = StreamingSegmenter(min_points=2)
    emitted = segmenter.push(
        _raw([1, 1, 1], [0.0, 3600.0, 3660.0], [55.0, 55.0, 55.001], [10.0] * 3)
    )
    assert emitted.num_rows == 0  # the 1-point trip closed but was dropped
    with pytest.raises(ValueError, match="time-ordered"):
        segmenter.push(_raw([1], [100.0], [55.0], [10.0]))


def test_out_of_order_rows_within_open_trip_are_legal():
    # No trip has closed for vessel 1, so a report older than ones already
    # buffered just slots into the open trip, exactly as one-shot would.
    segmenter = StreamingSegmenter()
    segmenter.push(_raw([1, 1], [0.0, 60.0], [55.0, 55.001], [10.0, 10.0]))
    segmenter.push(_raw([1], [30.0], [55.0005], [10.0]))
    out = segmenter.flush()
    assert out.num_rows == 3
    assert np.array_equal(out.column(schema.T), [0.0, 30.0, 60.0])


def test_empty_pushes_and_flush():
    segmenter = StreamingSegmenter()
    empty = _raw([], [], [], [])
    assert segmenter.push(empty).num_rows == 0
    assert segmenter.flush().num_rows == 0
    assert schema.TRIP_ID in segmenter.flush()


# -- chunked CSV ingest --------------------------------------------------


def _write_dump(path, rows=1000, vessels=7):
    # Globally time-ordered with interleaved vessels -- the shape real
    # archive dumps have, and what the streaming segmenter requires.
    rng = np.random.default_rng(11)
    vessel = rng.integers(100, 100 + vessels, rows)
    lines = ["MMSI,BaseDateTime,LAT,LON,SOG,COG,VesselType"]
    t0 = 1_700_000_000
    for i in range(rows):
        lines.append(
            f"{vessel[i]},{t0 + i * 30},{55 + i * 1e-4:.6f},"
            f"{10 + i * 1e-4:.6f},8.0,90.0,Cargo"
        )
    path.write_text("\n".join(lines) + "\n")
    return path


def test_read_csv_chunks_bounded_and_lossless(tmp_path):
    dump = _write_dump(tmp_path / "dump.csv", rows=1000)
    whole = read_csv(dump)
    chunks = list(read_csv_chunks(dump, chunk_rows=128))
    assert len(chunks) == 8  # ceil(1000 / 128): the dump never loads whole
    assert all(chunk.num_rows <= 128 for chunk in chunks)
    stitched = Table.concat(chunks)
    assert stitched.num_rows == whole.num_rows
    for name in schema.RAW_COLUMNS:
        assert np.array_equal(stitched.column(name), whole.column(name)), name


def test_read_csv_chunks_validates_header_and_chunk_rows(tmp_path):
    bad = tmp_path / "bad.csv"
    bad.write_text("a,b,c\n1,2,3\n")
    with pytest.raises(AISFormatError, match="required columns"):
        next(read_csv_chunks(bad))
    good = _write_dump(tmp_path / "ok.csv", rows=10)
    with pytest.raises(ValueError, match="positive"):
        next(read_csv_chunks(good, chunk_rows=0))


def test_streamed_fit_equals_one_shot_fit(tmp_path):
    """read_csv_chunks -> StreamingSegmenter -> fit_partial == full fit."""
    from repro.core import clean_messages

    dump = _write_dump(tmp_path / "dump.csv", rows=1500, vessels=5)
    config = HabitConfig(resolution=9)

    whole = segment_trips(clean_messages(read_csv(dump)))
    one_shot = HabitImputer(config).fit_from_trips(whole)

    streamed = HabitImputer(config)
    segmenter = StreamingSegmenter()
    for chunk in read_csv_chunks(dump, chunk_rows=200):
        emitted = segmenter.push(clean_messages(chunk))
        if emitted.num_rows:
            streamed.fit_partial(emitted)
    tail = segmenter.flush()
    if tail.num_rows:
        streamed.fit_partial(tail)
    streamed.finalize()

    for key in ("cells", "lats", "lngs", "edge_src", "edge_dst", "edge_cost"):
        assert np.array_equal(
            getattr(one_shot.graph, key), getattr(streamed.graph, key)
        ), key
