"""annotate_events / compress_trajectory behaviour."""

import numpy as np

from repro.ais import schema
from repro.core import annotate_events, compress_trajectory
from repro.core.annotate import EVENT_COLUMNS
from repro.minidb import Table


def _trips(t, sog, cog, gap_at=None):
    n = len(t)
    return Table(
        {
            schema.VESSEL_ID: np.full(n, 1, dtype=np.int64),
            schema.T: np.asarray(t, dtype=np.float64),
            schema.LAT: 55.0 + np.arange(n) * 1e-3,
            schema.LON: np.full(n, 10.0),
            schema.SOG: np.asarray(sog, dtype=np.float64),
            schema.COG: np.asarray(cog, dtype=np.float64),
            schema.VESSEL_TYPE: np.full(n, "cargo", dtype="U16"),
            schema.TRIP_ID: np.zeros(n, dtype=np.int64),
        }
    )


def test_annotate_adds_all_event_columns():
    trips = _trips([0.0, 30.0, 60.0], [8.0, 8.0, 8.0], [0.0, 0.0, 0.0])
    annotated = annotate_events(trips)
    for column in EVENT_COLUMNS:
        assert column in annotated
        assert annotated.column(column).dtype == bool


def test_annotate_empty_table():
    empty = _trips([], [], [])
    annotated = annotate_events(empty)
    assert annotated.num_rows == 0
    for column in EVENT_COLUMNS:
        assert column in annotated


def test_turn_and_speed_events():
    trips = _trips(
        t=[0.0, 30.0, 60.0, 90.0],
        sog=[8.0, 8.0, 2.5, 8.0],
        cog=[10.0, 50.0, 50.0, 50.0],  # 40 degree turn at row 1
    )
    annotated = annotate_events(trips, turn_deg=15.0, speed_change_kn=2.0)
    assert annotated.column("ev_turn")[1]
    assert not annotated.column("ev_turn")[2]
    assert annotated.column("ev_speed_change")[2]


def test_cog_wraparound_not_a_turn():
    trips = _trips(
        t=[0.0, 30.0], sog=[8.0, 8.0], cog=[359.0, 1.0]  # 2 degrees, not 358
    )
    annotated = annotate_events(trips, turn_deg=15.0)
    assert not annotated.column("ev_turn")[1]


def test_gap_event():
    trips = _trips(t=[0.0, 30.0, 1000.0], sog=[8.0] * 3, cog=[0.0] * 3)
    annotated = annotate_events(trips, gap_s=600.0)
    assert np.array_equal(annotated.column("ev_gap_before"), [False, False, True])


def test_compress_keeps_endpoints_and_events():
    n = 50
    sog = np.full(n, 8.0)
    cog = np.zeros(n)
    cog[25:] = 90.0  # one hard turn mid-trip
    trips = _trips(np.arange(n) * 30.0, sog, cog)
    compressed = compress_trajectory(annotate_events(trips))
    t = compressed.column(schema.T)
    assert t[0] == 0.0 and t[-1] == (n - 1) * 30.0
    assert compressed.num_rows < n
    assert 25 * 30.0 in t.tolist()  # the turn row survived


def test_compress_preserves_every_trip(tiny_kiel):
    compressed = compress_trajectory(annotate_events(tiny_kiel.train))
    raw_trips = set(np.unique(tiny_kiel.train.column(schema.TRIP_ID)).tolist())
    kept = set(np.unique(compressed.column(schema.TRIP_ID)).tolist())
    assert kept == raw_trips
