"""Seeded random cell-graph generators shared by the search test suites.

Every generator honours the engine's cost invariant -- each edge costs at
least the hex grid distance it spans -- so the grid heuristic stays
exactly admissible and every search variant must return Dijkstra-equal
costs on any graph produced here.  ``TOPOLOGIES`` maps a name to a
generator so property suites can sweep adversarial shapes instead of one
uniform blob:

- ``"uniform"`` -- nodes scattered over a square, edges between random
  pairs (the original ``test_search`` shape).
- ``"lane"`` -- a corridor: nodes strung along a line with mostly
  consecutive (lane-following) edges plus a few long skips, the shape
  the paper's cell graphs actually take and the one contraction
  hierarchies exploit.
- ``"multi_component"`` -- two disjoint uniform clusters far apart, so
  unreachable verdicts get exercised on every draw.
- ``"single_node"`` -- one node, no edges (trivial queries only).
- ``"no_edges"`` -- nodes but not a single edge: everything is
  unreachable from everything else.
"""

import numpy as np

from repro.core import CellGraph
from repro.hexgrid import (
    cell_to_latlng_array,
    grid_distance_array,
    latlng_to_cell_array,
)

__all__ = ["TOPOLOGIES", "random_graph"]

#: Base latitude/longitude of the synthetic patch (Kiel-ish waters).
_LAT0, _LNG0 = 55.0, 10.0


def _random_cells(rng, count, spread, lng_offset=0.0):
    """*count* distinct r9 cells scattered over a ``spread``-degree box."""
    cells = np.array([], dtype=np.int64)
    while len(cells) < count:
        lats = rng.uniform(_LAT0, _LAT0 + spread, count * 3)
        lngs = rng.uniform(
            _LNG0 + lng_offset, _LNG0 + lng_offset + spread, count * 3
        )
        cells = np.unique(latlng_to_cell_array(lats, lngs, 9))
    return rng.permutation(cells)[:count]


def _build(rng, cells, src_idx, dst_idx):
    """Assemble a ``CellGraph`` with admissible costs for the edge list."""
    cells = np.asarray(cells, dtype=np.int64)
    lats, lngs = cell_to_latlng_array(cells)
    src_idx = np.asarray(src_idx, dtype=np.int64)
    dst_idx = np.asarray(dst_idx, dtype=np.int64)
    keep = src_idx != dst_idx
    src, dst = cells[src_idx[keep]], cells[dst_idx[keep]]
    if len(src):
        spans = grid_distance_array(src, dst)
        costs = spans * rng.uniform(1.0, 2.0, len(src))
        counts = rng.integers(1, 50, len(src))
    else:
        costs = np.zeros(0, dtype=np.float64)
        counts = np.zeros(0, dtype=np.int64)
    return CellGraph(cells, lats, lngs, src, dst, costs, counts)


def uniform_graph(rng, num_nodes=48, num_edges=160, spread=0.5):
    """A random hex-cell graph honouring the cost >= grid-span invariant."""
    cells = _random_cells(rng, num_nodes, spread)
    return _build(
        rng,
        cells,
        rng.integers(0, num_nodes, num_edges),
        rng.integers(0, num_nodes, num_edges),
    )


def lane_graph(rng, num_nodes=48, num_edges=160, spread=0.5):
    """A shipping-lane corridor: consecutive hops plus sparse long skips.

    Nodes are ordered along the corridor axis; most edges connect
    near-consecutive nodes (both directions, like two-way lane traffic)
    and a handful skip far ahead, which is exactly the shape that makes
    hierarchy shortcuts pay off.
    """
    lats = rng.uniform(_LAT0, _LAT0 + spread * 0.04, num_nodes * 3)
    lngs = np.sort(rng.uniform(_LNG0, _LNG0 + spread, num_nodes * 3))
    cells = np.unique(latlng_to_cell_array(lats, lngs, 9))
    while len(cells) < num_nodes:  # thin corridors can collide cells
        lats = rng.uniform(_LAT0, _LAT0 + spread * 0.08, num_nodes * 4)
        lngs = np.sort(rng.uniform(_LNG0, _LNG0 + spread, num_nodes * 4))
        cells = np.unique(latlng_to_cell_array(lats, lngs, 9))
    # Keep corridor order: sort the chosen cells by longitude.
    chosen = rng.permutation(len(cells))[:num_nodes]
    cells = cells[np.sort(chosen)]
    cells = cells[np.argsort(cell_to_latlng_array(cells)[1], kind="stable")]
    src_idx = []
    dst_idx = []
    for _ in range(num_edges):
        a = int(rng.integers(0, num_nodes))
        if rng.random() < 0.85:  # lane-following hop
            step = int(rng.integers(1, 4))
        else:  # rare long skip down the corridor
            step = int(rng.integers(4, max(5, num_nodes // 2)))
        b = a + step if rng.random() < 0.5 else a - step
        if 0 <= b < num_nodes:
            src_idx.append(a)
            dst_idx.append(b)
    return _build(rng, cells, src_idx, dst_idx)


def multi_component_graph(rng, num_nodes=48, num_edges=160, spread=0.25):
    """Two disjoint uniform clusters ~50 km apart (cross-pairs unreachable)."""
    half = max(num_nodes // 2, 2)
    west = _random_cells(rng, half, spread)
    east = _random_cells(rng, num_nodes - half, spread, lng_offset=0.7)
    cells = np.concatenate([west, east])
    src_idx = []
    dst_idx = []
    for _ in range(num_edges):
        if rng.random() < 0.5:  # west-internal edge
            a, b = rng.integers(0, half, 2)
        else:  # east-internal edge
            a, b = rng.integers(half, num_nodes, 2)
        src_idx.append(int(a))
        dst_idx.append(int(b))
    return _build(rng, cells, src_idx, dst_idx)


def single_node_graph(rng, num_nodes=1, num_edges=0, spread=0.1):
    """One node, zero edges: the degenerate-topology floor."""
    cells = _random_cells(rng, 1, spread)
    return _build(rng, cells, [], [])


def no_edges_graph(rng, num_nodes=12, num_edges=0, spread=0.3):
    """Nodes without a single edge: every non-trivial pair unreachable."""
    cells = _random_cells(rng, num_nodes, spread)
    return _build(rng, cells, [], [])


#: topology name -> generator ``(rng, **kwargs) -> CellGraph``.
TOPOLOGIES = {
    "uniform": uniform_graph,
    "lane": lane_graph,
    "multi_component": multi_component_graph,
    "single_node": single_node_graph,
    "no_edges": no_edges_graph,
}


def random_graph(rng, topology="uniform", **kwargs):
    """Draw one graph of the named topology (see ``TOPOLOGIES``)."""
    return TOPOLOGIES[topology](rng, **kwargs)
