"""minidb: table algebra, group-by kernels, and the lag window function."""

import numpy as np
import pytest

from repro.minidb import Table, agg


@pytest.fixture()
def small():
    return Table(
        {
            "g": np.array([2, 0, 1, 0, 2, 2]),
            "v": np.array([10.0, 1.0, 5.0, 3.0, 30.0, 20.0]),
            "who": np.array([1, 1, 2, 2, 3, 1]),
        }
    )


def test_basic_shape(small):
    assert small.num_rows == 6
    assert len(small) == 6
    assert small.column_names == ["g", "v", "who"]
    assert "v" in small
    assert np.array_equal(small["g"], small.column("g"))


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        Table({"a": np.zeros(3), "b": np.zeros(4)})


def test_with_columns_drop_select_filter(small):
    extended = small.with_columns(w=np.arange(6))
    assert extended.column_names == ["g", "v", "who", "w"]
    assert small.num_rows == 6  # original untouched
    assert extended.drop("w").column_names == ["g", "v", "who"]
    assert extended.select("v", "g").column_names == ["v", "g"]
    kept = small.filter(small["v"] > 4.0)
    assert kept.num_rows == 4


def test_sort_and_concat(small):
    ordered = small.sort_by("g", "v")
    assert np.array_equal(ordered["g"], [0, 0, 1, 2, 2, 2])
    assert np.array_equal(ordered["v"], [1.0, 3.0, 5.0, 10.0, 20.0, 30.0])
    doubled = Table.concat([small, small])
    assert doubled.num_rows == 12


def test_group_by_aggregates(small):
    result = small.group_by("g").agg(
        agg.count(),
        agg.sum("v"),
        agg.mean("v"),
        agg.min("v"),
        agg.max("v"),
        agg.median("v"),
        agg.count_distinct("who").alias("crews"),
    )
    assert np.array_equal(result["g"], [0, 1, 2])
    assert np.array_equal(result["count"], [2, 1, 3])
    assert np.allclose(result["sum_v"], [4.0, 5.0, 60.0])
    assert np.allclose(result["mean_v"], [2.0, 5.0, 20.0])
    assert np.allclose(result["min_v"], [1.0, 5.0, 10.0])
    assert np.allclose(result["max_v"], [3.0, 5.0, 30.0])
    assert np.allclose(result["median_v"], [2.0, 5.0, 20.0])
    assert np.array_equal(result["crews"], [2, 1, 2])


def test_group_by_matches_numpy_reference(rng):
    n = 5000
    table = Table(
        {"k": rng.integers(0, 37, n), "x": rng.normal(size=n)}
    )
    result = table.group_by("k").agg(agg.count(), agg.median("x"), agg.sum("x"))
    for row, key in enumerate(result["k"]):
        values = table["x"][table["k"] == key]
        assert result["count"][row] == len(values)
        assert result["median_x"][row] == pytest.approx(np.median(values))
        assert result["sum_x"][row] == pytest.approx(values.sum())


def test_multi_key_group_by(small):
    result = small.group_by("g", "who").agg(agg.count())
    # (2,1) appears twice; every other (g, who) pair once.
    assert result.num_rows == 5
    pair_counts = {
        (int(g), int(w)): int(c)
        for g, w, c in zip(result["g"], result["who"], result["count"])
    }
    assert pair_counts[(2, 1)] == 2


def test_empty_group_by():
    empty = Table({"k": np.zeros(0, dtype=np.int64), "x": np.zeros(0)})
    result = empty.group_by("k").agg(agg.count(), agg.median("x"))
    assert result.num_rows == 0


def test_lag_basic():
    table = Table(
        {
            "part": np.array([1, 1, 1, 2, 2]),
            "t": np.array([1.0, 2.0, 3.0, 1.0, 2.0]),
            "x": np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
        }
    )
    prev = table.lag("x", "part", "t", 1, -1.0)
    assert np.array_equal(prev, [-1.0, 10.0, 20.0, -1.0, 40.0])
    nxt = table.lag("x", "part", "t", -1, -1.0)
    assert np.array_equal(nxt, [20.0, 30.0, -1.0, 50.0, -1.0])


def test_lag_respects_order_not_row_position():
    # Rows shuffled: lag must follow timestamps, and results align with the
    # table's (shuffled) row order.
    table = Table(
        {
            "part": np.array([1, 1, 1]),
            "t": np.array([3.0, 1.0, 2.0]),
            "x": np.array([30.0, 10.0, 20.0]),
        }
    )
    prev = table.lag("x", "part", "t", 1, np.nan)
    assert prev[0] == 20.0  # before t=3 comes t=2
    assert np.isnan(prev[1])
    assert prev[2] == 10.0


def test_lag_zero_offset_is_identity(small):
    out = small.lag("v", "g", "v", 0, -1.0)
    assert np.array_equal(out, small["v"])
