"""Baseline imputers: SLI geometry and the GTI point graph."""

import numpy as np
import pytest

from repro.baselines import GTIConfig, GTIImputer, StraightLineImputer


def test_sli_endpoints_and_spacing():
    sli = StraightLineImputer(step_m=250.0)
    result = sli.impute((55.0, 10.0), (55.0, 10.1))  # ~6.4 km east
    assert result.lats[0] == 55.0 and result.lngs[0] == 10.0
    assert result.lats[-1] == 55.0 and result.lngs[-1] == 10.1
    assert result.num_points > 20  # resampled, not just two vertices
    assert np.all(np.diff(result.lngs) > 0)
    assert sli.storage_size_bytes() == 0


def test_sli_zero_length_gap():
    result = StraightLineImputer().impute((55.0, 10.0), (55.0, 10.0))
    assert result.num_points >= 2


def test_gti_fit_and_impute(tiny_kiel):
    config = GTIConfig(rm_m=250.0, rd_deg=5e-4, downsample_s=60.0)
    gti = GTIImputer(config).fit_from_trips(tiny_kiel.train)
    assert gti.num_nodes > 100
    assert gti.num_edges > 100
    assert gti.storage_size_bytes() > 0
    gap = tiny_kiel.gaps(3600.0)[0]
    result = gti.impute(gap.start, gap.end)
    assert result.num_points >= 2
    assert result.lats[0] == pytest.approx(gap.start[0])
    assert result.lats[-1] == pytest.approx(gap.end[0])


def test_gti_downsampling_reduces_nodes(tiny_kiel):
    dense = GTIImputer(GTIConfig(downsample_s=30.0)).fit_from_trips(tiny_kiel.train)
    sparse = GTIImputer(GTIConfig(downsample_s=300.0)).fit_from_trips(tiny_kiel.train)
    assert sparse.num_nodes < dense.num_nodes


def test_gti_unfitted_raises():
    with pytest.raises(RuntimeError):
        GTIImputer().impute((55.0, 10.0), (55.0, 10.1))


def test_gti_carries_more_state_than_habit(tiny_kiel):
    from repro.core import HabitConfig, HabitImputer

    habit = HabitImputer(HabitConfig(resolution=9)).fit_from_trips(tiny_kiel.train)
    gti = GTIImputer(GTIConfig(downsample_s=60.0)).fit_from_trips(tiny_kiel.train)
    # The storage contrast of Table 2: point graph >> cell graph.
    assert gti.storage_size_bytes() > habit.storage_size_bytes()
