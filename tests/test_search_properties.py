"""Randomized equal-cost property suite for every search variant.

The contract under test: all members of ``SEARCH_METHODS`` are *provably
equal-cost* -- on any graph whose edge costs respect the grid-span
invariant, every variant must return a path of exactly Dijkstra's cost
(to float tolerance), a path that is valid under the adjacency view, and
the same unreachable verdict.  This suite hammers that contract with
hundreds of seeded random graphs across adversarial topologies (see
``graphgen.TOPOLOGIES``) so a regression in any variant -- most likely
the contraction-hierarchy build, the newest and most intricate -- fails
loudly and reproducibly.

Each failure message carries the topology, draw seed and endpoints, so
any counterexample replays with a two-line snippet.
"""

import numpy as np
import pytest

from graphgen import TOPOLOGIES, random_graph
from repro.core import GOAL_DIRECTED_METHODS, SEARCH_METHODS

#: (topology, number of graph draws) -- 220 graphs in total.
_PLAN = (
    ("uniform", 80),
    ("lane", 80),
    ("multi_component", 40),
    ("single_node", 10),
    ("no_edges", 10),
)
_QUERIES_PER_GRAPH = 6
_BASE_SEED = 977


def _path_cost(graph, result):
    """Recompute a result's cost from the adjacency view (oracle check)."""
    total = 0.0
    for a, b in zip(result.cells, result.cells[1:]):
        hops = [c for t, c, _ in graph.adjacency[a] if t == b]
        assert hops, f"path uses non-edge {a}->{b}"
        total += min(hops)
    return total


def _check_query(graph, src, dst, context):
    results = {m: graph.find_path(src, dst, m) for m in SEARCH_METHODS}
    oracle = results["dijkstra"]
    if oracle is None:
        for method, result in results.items():
            assert result is None, f"{method} found a path Dijkstra did not ({context})"
        return
    for method, result in results.items():
        where = f"{method} ({context})"
        assert result is not None, f"{where}: unreachable verdict disagrees"
        assert result.cost == pytest.approx(oracle.cost, rel=1e-9), where
        assert result.cells[0] == src and result.cells[-1] == dst, where
        assert _path_cost(graph, result) == pytest.approx(result.cost, rel=1e-9), where
        assert result.method == method and result.expanded >= 0, where
    for method in GOAL_DIRECTED_METHODS:
        assert results[method].expanded <= oracle.expanded, (
            f"{method} expanded more than dijkstra ({context})"
        )


def _check_batch(graph, pairs, context):
    """The batch kernel agrees with the scalar oracles on *pairs*.

    Bit-equal costs vs scalar CH (same hierarchy, same relaxation
    order), Dijkstra-equal to float tolerance, valid adjacency-oracle
    paths, and identical unreachable verdicts.
    """
    batch = graph.find_paths_batch(pairs)
    assert len(batch) == len(pairs), context
    for (src, dst), result in zip(pairs, batch):
        where = f"batch {src}->{dst} ({context})"
        ch = graph.find_path(src, dst, "ch")
        dijkstra = graph.find_path(src, dst, "dijkstra")
        assert (ch is None) == (dijkstra is None)
        if dijkstra is None:
            assert result is None, f"{where}: unreachable verdict disagrees"
            continue
        assert result is not None, f"{where}: unreachable verdict disagrees"
        assert result.cost == ch.cost, f"{where}: not bit-equal to scalar CH"
        assert result.cost == pytest.approx(dijkstra.cost, rel=1e-9), where
        assert result.cells[0] == src and result.cells[-1] == dst, where
        assert _path_cost(graph, result) == pytest.approx(result.cost, rel=1e-9), where
        assert result.method == "ch" and result.expanded >= 0, where


@pytest.mark.parametrize(
    "topology,draws", _PLAN, ids=[topology for topology, _ in _PLAN]
)
def test_variants_agree_across_random_topologies(topology, draws):
    for draw in range(draws):
        seed = _BASE_SEED + draw
        rng = np.random.default_rng(seed)
        graph = random_graph(rng, topology)
        nodes = graph.cells
        if len(nodes) == 1:
            pairs = [(int(nodes[0]), int(nodes[0]))]
        else:
            pairs = [
                tuple(int(c) for c in rng.choice(nodes, 2))
                for _ in range(_QUERIES_PER_GRAPH)
            ]
        for src, dst in pairs:
            _check_query(
                graph, src, dst, f"topology={topology} seed={seed} {src}->{dst}"
            )
        _check_batch(graph, pairs, f"topology={topology} seed={seed}")


def test_batch_results_are_permutation_invariant():
    """Shuffling a batch only shuffles the results: each pair's path is
    independent of its batch position and of its co-batched pairs."""
    for topology in ("uniform", "lane", "multi_component"):
        rng = np.random.default_rng(321)
        graph = random_graph(rng, topology)
        nodes = graph.cells
        pairs = [
            tuple(int(c) for c in rng.choice(nodes, 2)) for _ in range(24)
        ]
        baseline = graph.find_paths_batch(pairs)
        order = rng.permutation(len(pairs))
        shuffled = graph.find_paths_batch([pairs[i] for i in order])
        for pos, i in enumerate(order):
            a, b = baseline[i], shuffled[pos]
            where = f"topology={topology} pair={pairs[i]}"
            assert (a is None) == (b is None), where
            if a is None:
                continue
            assert a.cost == b.cost and a.cells == b.cells, where
            assert a.expanded == b.expanded, where


def test_plan_covers_every_topology_with_enough_graphs():
    """The sweep stays honest: >= 200 graphs, no topology left out."""
    assert {topology for topology, _ in _PLAN} == set(TOPOLOGIES)
    assert sum(draws for _, draws in _PLAN) >= 200


def test_trivial_source_equals_destination_on_every_topology():
    for topology in TOPOLOGIES:
        graph = random_graph(np.random.default_rng(5), topology)
        cell = int(graph.cells[0])
        for method in SEARCH_METHODS:
            result = graph.find_path(cell, cell, method)
            assert result.cells == (cell,), (topology, method)
            assert result.cost == 0.0 and result.expanded == 0, (topology, method)
            (batched,) = graph.find_paths_batch([(cell, cell)], method)
            assert batched.cells == (cell,), (topology, method)
            assert batched.cost == 0.0 and batched.expanded == 0, (topology, method)


def test_no_edge_graphs_are_unreachable_everywhere():
    graph = random_graph(np.random.default_rng(11), "no_edges")
    src, dst = (int(c) for c in graph.cells[:2])
    for method in SEARCH_METHODS:
        assert graph.find_path(src, dst, method) is None, method
        assert graph.find_paths_batch([(src, dst)], method) == [None], method


def test_degenerate_pairs_short_circuit_before_any_search_work(monkeypatch):
    """src==dst and provably unreachable pairs must never reach a heap,
    a lazy preprocessing build, or the batch kernel -- in any variant,
    scalar or batch.  Poisoning every search backend proves it."""
    import repro.core.graph as graph_mod

    graph = random_graph(np.random.default_rng(17), "uniform")
    # A node with no outgoing edges (sink) and one with no incoming
    # edges (source) give provably unreachable pairs in both directions.
    out_deg = np.diff(graph.indptr)
    in_deg = np.bincount(graph.indices, minlength=graph.num_nodes)
    sinks = np.flatnonzero(out_deg == 0)
    sources = np.flatnonzero(in_deg == 0)
    if not len(sinks) or not len(sources):
        pytest.skip("draw produced no sink/source node")
    sink = int(graph.cells[sinks[0]])
    source = int(graph.cells[sources[0]])
    other = int(graph.cells[0])
    cell = int(graph.cells[1])

    def poisoned(*args, **kwargs):
        raise AssertionError("degenerate pair reached search machinery")

    for name in ("_astar_indices", "_bidirectional", "_ch_query", "ensure_ch",
                 "ensure_landmarks", "_ch_kernel_tables"):
        monkeypatch.setattr(graph_mod.CellGraph, name, poisoned)
    monkeypatch.setattr(graph_mod, "solve_batch", poisoned)
    for method in SEARCH_METHODS:
        trivial = graph.find_path(cell, cell, method)
        assert trivial.cost == 0.0 and trivial.expanded == 0, method
        assert graph.find_path(sink, other, method) is None, method
        assert graph.find_path(other, source, method) is None, method
        batched = graph.find_paths_batch(
            [(cell, cell), (sink, other), (other, source)], method
        )
        assert batched[0].cost == 0.0 and batched[0].expanded == 0, method
        assert batched[1] is None and batched[2] is None, method
