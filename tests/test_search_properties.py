"""Randomized equal-cost property suite for every search variant.

The contract under test: all members of ``SEARCH_METHODS`` are *provably
equal-cost* -- on any graph whose edge costs respect the grid-span
invariant, every variant must return a path of exactly Dijkstra's cost
(to float tolerance), a path that is valid under the adjacency view, and
the same unreachable verdict.  This suite hammers that contract with
hundreds of seeded random graphs across adversarial topologies (see
``graphgen.TOPOLOGIES``) so a regression in any variant -- most likely
the contraction-hierarchy build, the newest and most intricate -- fails
loudly and reproducibly.

Each failure message carries the topology, draw seed and endpoints, so
any counterexample replays with a two-line snippet.
"""

import numpy as np
import pytest

from graphgen import TOPOLOGIES, random_graph
from repro.core import GOAL_DIRECTED_METHODS, SEARCH_METHODS

#: (topology, number of graph draws) -- 220 graphs in total.
_PLAN = (
    ("uniform", 80),
    ("lane", 80),
    ("multi_component", 40),
    ("single_node", 10),
    ("no_edges", 10),
)
_QUERIES_PER_GRAPH = 6
_BASE_SEED = 977


def _path_cost(graph, result):
    """Recompute a result's cost from the adjacency view (oracle check)."""
    total = 0.0
    for a, b in zip(result.cells, result.cells[1:]):
        hops = [c for t, c, _ in graph.adjacency[a] if t == b]
        assert hops, f"path uses non-edge {a}->{b}"
        total += min(hops)
    return total


def _check_query(graph, src, dst, context):
    results = {m: graph.find_path(src, dst, m) for m in SEARCH_METHODS}
    oracle = results["dijkstra"]
    if oracle is None:
        for method, result in results.items():
            assert result is None, f"{method} found a path Dijkstra did not ({context})"
        return
    for method, result in results.items():
        where = f"{method} ({context})"
        assert result is not None, f"{where}: unreachable verdict disagrees"
        assert result.cost == pytest.approx(oracle.cost, rel=1e-9), where
        assert result.cells[0] == src and result.cells[-1] == dst, where
        assert _path_cost(graph, result) == pytest.approx(result.cost, rel=1e-9), where
        assert result.method == method and result.expanded >= 0, where
    for method in GOAL_DIRECTED_METHODS:
        assert results[method].expanded <= oracle.expanded, (
            f"{method} expanded more than dijkstra ({context})"
        )


@pytest.mark.parametrize(
    "topology,draws", _PLAN, ids=[topology for topology, _ in _PLAN]
)
def test_variants_agree_across_random_topologies(topology, draws):
    for draw in range(draws):
        seed = _BASE_SEED + draw
        rng = np.random.default_rng(seed)
        graph = random_graph(rng, topology)
        nodes = graph.cells
        if len(nodes) == 1:
            pairs = [(int(nodes[0]), int(nodes[0]))]
        else:
            pairs = [
                tuple(int(c) for c in rng.choice(nodes, 2))
                for _ in range(_QUERIES_PER_GRAPH)
            ]
        for src, dst in pairs:
            _check_query(
                graph, src, dst, f"topology={topology} seed={seed} {src}->{dst}"
            )


def test_plan_covers_every_topology_with_enough_graphs():
    """The sweep stays honest: >= 200 graphs, no topology left out."""
    assert {topology for topology, _ in _PLAN} == set(TOPOLOGIES)
    assert sum(draws for _, draws in _PLAN) >= 200


def test_trivial_source_equals_destination_on_every_topology():
    for topology in TOPOLOGIES:
        graph = random_graph(np.random.default_rng(5), topology)
        cell = int(graph.cells[0])
        for method in SEARCH_METHODS:
            result = graph.find_path(cell, cell, method)
            assert result.cells == (cell,), (topology, method)
            assert result.cost == 0.0 and result.expanded == 0, (topology, method)


def test_no_edge_graphs_are_unreachable_everywhere():
    graph = random_graph(np.random.default_rng(11), "no_edges")
    src, dst = (int(c) for c in graph.cells[:2])
    for method in SEARCH_METHODS:
        assert graph.find_path(src, dst, method) is None, method
