"""Service layer: registry LRU, batch engine provenance, HTTP transport."""

import json
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.core import HabitConfig, HabitImputer, TypedHabitImputer, config_hash
from repro.service import (
    BatchImputationEngine,
    GapRequest,
    ModelNotFound,
    ModelRegistry,
    SchemaError,
    make_server,
    parse_impute_payload,
)


@pytest.fixture()
def registry(tmp_path, service_model):
    reg = ModelRegistry(tmp_path / "models", capacity=4)
    reg.publish("KIEL", service_model)
    return reg


def _gap_requests(dataset, gaps, n=4):
    return [
        GapRequest(
            dataset=dataset,
            start=gaps[i % len(gaps)].start,
            end=gaps[i % len(gaps)].end,
            request_id=f"r{i}",
        )
        for i in range(n)
    ]


# -- registry ------------------------------------------------------------


def test_model_id_is_stable_and_config_sensitive():
    a = HabitConfig(resolution=9)
    assert config_hash(a) == config_hash(HabitConfig(resolution=9))
    assert config_hash(a) != config_hash(HabitConfig(resolution=8))
    assert ModelRegistry.model_id("kiel", a) == f"KIEL_{config_hash(a)}"


def test_registry_resolution_tiers(registry, service_model):
    config = service_model.config
    # publish() left the model warm.
    _, model_id, source = registry.get("KIEL", config)
    assert source == "hit"
    registry.evict_all()
    imputer, _, source = registry.get("KIEL", config)
    assert source == "load"
    assert imputer.graph.num_nodes == service_model.graph.num_nodes
    _, _, source = registry.get("KIEL", config)
    assert source == "hit"
    stats = registry.stats
    assert stats.hits == 2 and stats.loads == 1 and stats.fits == 0


def test_registry_miss_without_fitter_raises(registry):
    with pytest.raises(ModelNotFound, match="DAN"):
        registry.get("DAN", HabitConfig())


def test_registry_fit_on_miss_publishes(tmp_path, tiny_kiel):
    calls = []

    def fitter(dataset, config):
        calls.append(dataset)
        return HabitImputer(config).fit_from_trips(tiny_kiel.train)

    reg = ModelRegistry(tmp_path / "reg", fitter=fitter)
    config = HabitConfig(resolution=8)
    _, model_id, source = reg.get("KIEL", config)
    assert source == "fit" and calls == ["KIEL"]
    assert (tmp_path / "reg" / f"{model_id}.npz").exists()
    # A second registry on the same directory resolves from disk, no refit.
    _, _, source = ModelRegistry(tmp_path / "reg").get("KIEL", config)
    assert source == "load" and calls == ["KIEL"]


def test_registry_lru_eviction(tmp_path, tiny_kiel):
    fitter = lambda dataset, config: HabitImputer(config).fit_from_trips(  # noqa: E731
        tiny_kiel.train
    )
    reg = ModelRegistry(tmp_path / "lru", capacity=2, fitter=fitter)
    configs = [HabitConfig(resolution=r) for r in (7, 8, 9)]
    for config in configs:
        reg.get("KIEL", config)
    assert reg.stats.evictions == 1
    assert len(reg.loaded_ids) == 2
    # The oldest model fell out of memory but survives on disk.
    _, _, source = reg.get("KIEL", configs[0])
    assert source == "load"
    # Recency order: touching a model protects it from the next eviction.
    reg.get("KIEL", configs[2])
    reg.get("KIEL", configs[1])  # evicts configs[0] again
    assert ModelRegistry.model_id("KIEL", configs[0]) not in reg.loaded_ids


def test_registry_corrupt_file_falls_through_to_fitter(tmp_path, tiny_kiel):
    from repro.core import ModelFormatError

    config = HabitConfig()
    fitted = {"count": 0}

    def fitter(dataset, cfg):
        fitted["count"] += 1
        return HabitImputer(cfg).fit_from_trips(tiny_kiel.train)

    # An interrupted save left garbage under the model's id.
    no_fitter = ModelRegistry(tmp_path / "reg")
    bad = no_fitter.path_for("KIEL", config)
    bad.write_bytes(b"truncated, definitely not a zip")
    with pytest.raises(ModelFormatError):
        no_fitter.get("KIEL", config)
    # With a fitter the corrupt artefact is refitted and overwritten.
    reg = ModelRegistry(tmp_path / "reg", fitter=fitter)
    _, model_id, source = reg.get("KIEL", config)
    assert source == "fit" and fitted["count"] == 1
    assert HabitImputer.load(bad).graph.num_nodes > 0  # healed on disk


def test_registry_concurrent_misses_dedupe_to_one_fit(tmp_path, tiny_kiel):
    fits = []

    def fitter(dataset, cfg):
        fits.append(dataset)
        return HabitImputer(cfg).fit_from_trips(tiny_kiel.train)

    reg = ModelRegistry(tmp_path / "reg", fitter=fitter)
    config = HabitConfig()
    with ThreadPoolExecutor(max_workers=8) as pool:
        outcomes = list(
            pool.map(lambda _: reg.get("KIEL", config)[2], range(8))
        )
    assert len(fits) == 1  # one thread fit, the rest waited for the cache
    assert sorted(set(outcomes)) in (["fit"], ["fit", "hit"])


def test_registry_list_models(registry, service_model):
    entries = registry.list_models()
    assert len(entries) == 1
    entry = entries[0]
    assert entry["dataset"] == "KIEL"
    assert entry["model_id"] == ModelRegistry.model_id("KIEL", service_model.config)
    assert entry["loaded"] is True and entry["size_bytes"] > 0


# -- batch engine --------------------------------------------------------


def test_engine_batch_order_and_provenance(registry, service_model, tiny_kiel):
    gaps = tiny_kiel.gaps(3600.0)
    requests = _gap_requests("KIEL", gaps, n=6)
    results = BatchImputationEngine(registry, max_workers=3).run(
        requests, service_model.config
    )
    assert [r.request.request_id for r in results] == [r.request_id for r in requests]
    expected_id = ModelRegistry.model_id("KIEL", service_model.config)
    for result in results:
        assert result.provenance.model_id == expected_id
        assert result.provenance.cache == "hit"
        assert result.provenance.elapsed_ms > 0.0
        assert result.provenance.path_length_m > 0.0
        assert result.num_points >= 2
        if not result.provenance.fallback:
            assert result.provenance.num_cells > 0


def test_engine_flags_straight_line_fallback(registry, service_model):
    # Mid-Atlantic endpoints: snapping is rejected, the path degrades.
    request = GapRequest("KIEL", (10.0, -40.0), (11.0, -41.0), "ocean")
    (result,) = BatchImputationEngine(registry).run([request], service_model.config)
    assert result.provenance.fallback is True
    assert result.provenance.method == "fallback"
    assert result.provenance.num_cells == 0


def test_engine_unknown_dataset_raises(registry, service_model):
    request = GapRequest("ATLANTIS", (54.0, 10.0), (55.0, 11.0), "x")
    with pytest.raises(ModelNotFound):
        BatchImputationEngine(registry).run([request], service_model.config)


def test_engine_process_pool_matches_thread_pool(registry, service_model, tiny_kiel):
    gaps = tiny_kiel.gaps(3600.0)
    requests = _gap_requests("KIEL", gaps, n=6)
    thread_results = BatchImputationEngine(registry).run(requests, service_model.config)
    with BatchImputationEngine(
        registry, max_workers=2, executor="process"
    ) as engine:
        process_results = engine.run(requests, service_model.config)
        # The pool is persistent: a second batch reuses warm workers.
        again = engine.run(requests[:2], service_model.config)
    assert len(process_results) == len(thread_results)
    for t, p in zip(thread_results, process_results):
        assert p.request.request_id == t.request.request_id
        assert np.array_equal(p.lats, t.lats) and np.array_equal(p.lngs, t.lngs)
        assert p.provenance.model_id == t.provenance.model_id
        assert p.provenance.method == t.provenance.method
        assert t.provenance.executor == "thread"
        assert p.provenance.executor == "process"
    assert all(r.provenance.executor == "process" for r in again)


def test_process_workers_see_refreshed_revision(registry, service_model, tiny_kiel):
    """A refresh in the parent must reach warm workers: the parent's
    resolved revision rides with each batch and evicts stale worker
    caches, so process mode never serves an older revision than /models
    advertises."""
    gap = tiny_kiel.gaps(3600.0)[0]
    request = [GapRequest("KIEL", gap.start, gap.end, "r0")]
    with BatchImputationEngine(registry, max_workers=1, executor="process") as engine:
        (before,) = engine.run(request, service_model.config)
        assert before.provenance.revision == 1
        registry.refresh("KIEL", tiny_kiel.test, service_model.config)
        (after,) = engine.run(request, service_model.config)
        assert after.provenance.revision == 2
        assert after.provenance.executor == "process"


def test_peek_revision_rejects_unloadable_files(tmp_path, service_model):
    """The process executor's cheap probe must not trust a file a real
    load() would reject -- such files fall through to get() and its
    fitter semantics instead of reaching fitter-less pool workers."""
    reg = ModelRegistry(tmp_path / "reg")
    config = service_model.config
    # Valid zip with a readable revision but no graph arrays.
    np.savez(
        reg.path_for("KIEL", config),
        format=np.array(["habit-npz", "4"]),
        revision=np.array([3]),
    )
    _, revision = reg.peek_revision("KIEL", config)
    assert revision is None
    # A plain-format file sitting at a typed model id is mis-kinded:
    # the typed loader would reject it, so the peek must too.
    service_model.save(reg.path_for("KIEL", config, typed=True))
    _, revision = reg.peek_revision("KIEL", config, typed=True)
    assert revision is None
    # A genuinely loadable publish peeks its real revision.
    reg.publish("KIEL", service_model)
    reg.evict_all()
    _, revision = reg.peek_revision("KIEL", config)
    assert revision == service_model.revision


def test_engine_rejects_unknown_executor(registry):
    with pytest.raises(ValueError, match="executor"):
        BatchImputationEngine(registry, executor="fiber")


def test_engine_process_pool_unknown_dataset_raises_in_parent(registry, service_model):
    request = GapRequest("ATLANTIS", (54.0, 10.0), (55.0, 11.0), "x")
    with BatchImputationEngine(registry, executor="process") as engine:
        with pytest.raises(ModelNotFound):
            engine.run([request], service_model.config)


def test_result_feature_carries_provenance(registry, service_model, tiny_kiel):
    gap = tiny_kiel.gaps(3600.0)[0]
    request = GapRequest("KIEL", gap.start, gap.end, "g0")
    (result,) = BatchImputationEngine(registry).run([request], service_model.config)
    feature = result.to_feature()
    assert feature["geometry"]["type"] == "LineString"
    assert len(feature["geometry"]["coordinates"]) == result.num_points
    props = feature["properties"]
    assert props["request_id"] == "g0" and props["dataset"] == "KIEL"
    assert props["model_id"] and "elapsed_ms" in props and "fallback" in props
    json.dumps(feature)  # must be JSON-serialisable as-is


# -- typed-model serving -------------------------------------------------


def test_registry_typed_publish_and_resolve(tmp_path, tiny_kiel, service_model):
    reg = ModelRegistry(tmp_path / "models")
    config = service_model.config
    typed = TypedHabitImputer(config, min_group_rows=100).fit_from_trips(
        tiny_kiel.train
    )
    reg.publish("KIEL", service_model)
    typed_id, _ = reg.publish("KIEL", typed)
    plain_id = ModelRegistry.model_id("KIEL", config)
    assert typed_id == ModelRegistry.model_id("KIEL", config, typed=True)
    assert typed_id != plain_id and "_TYPED_" in typed_id
    # The two kinds resolve independently, and a cold load restores types.
    reg.evict_all()
    plain_got, _, _ = reg.get("KIEL", config)
    typed_got, _, _ = reg.get("KIEL", config, typed=True)
    assert isinstance(plain_got, HabitImputer)
    assert isinstance(typed_got, TypedHabitImputer)
    assert typed_got.fitted_groups == typed.fitted_groups
    by_id = {e["model_id"]: e for e in reg.list_models()}
    assert by_id[typed_id]["typed"] is True and by_id[typed_id]["dataset"] == "KIEL"
    assert by_id[plain_id]["typed"] is False


def test_typed_miss_needs_typed_capable_fitter(tmp_path, tiny_kiel):
    config = HabitConfig()
    legacy = ModelRegistry(
        tmp_path / "legacy",
        fitter=lambda d, c: HabitImputer(c).fit_from_trips(tiny_kiel.train),
    )
    with pytest.raises(ModelNotFound, match="typed model"):
        legacy.get("KIEL", config, typed=True)

    def typed_fitter(dataset, cfg, typed=False):
        cls = TypedHabitImputer if typed else HabitImputer
        return cls(cfg).fit_from_trips(tiny_kiel.train)

    capable = ModelRegistry(tmp_path / "capable", fitter=typed_fitter)
    imputer, _, source = capable.get("KIEL", config, typed=True)
    assert source == "fit" and isinstance(imputer, TypedHabitImputer)


def test_engine_routes_typed_requests(registry, service_model, tiny_kiel):
    typed = TypedHabitImputer(service_model.config, min_group_rows=100).fit_from_trips(
        tiny_kiel.train
    )
    typed_id, _ = registry.publish("KIEL", typed)
    gap = tiny_kiel.gaps(3600.0)[0]
    requests = [
        GapRequest("KIEL", gap.start, gap.end, "plain"),
        GapRequest(
            "KIEL", gap.start, gap.end, "typed", typed=True, vessel_type="cargo"
        ),
    ]
    plain_result, typed_result = BatchImputationEngine(registry).run(
        requests, service_model.config
    )
    assert plain_result.provenance.model_id == ModelRegistry.model_id(
        "KIEL", service_model.config
    )
    assert typed_result.provenance.model_id == typed_id
    assert typed_result.num_points >= 2


def test_parse_impute_payload_typed_fields():
    requests, _ = parse_impute_payload(
        {
            "requests": [
                {
                    "dataset": "KIEL",
                    "start": [54.0, 10.0],
                    "end": [55.0, 11.0],
                    "typed": True,
                    "vessel_type": "cargo",
                }
            ]
        }
    )
    assert requests[0].typed is True and requests[0].vessel_type == "cargo"
    with pytest.raises(SchemaError, match="typed"):
        parse_impute_payload(
            {"dataset": "KIEL", "start": [1, 2], "end": [3, 4], "typed": "yes"}
        )
    with pytest.raises(SchemaError, match="vessel_type"):
        parse_impute_payload(
            {"dataset": "KIEL", "start": [1, 2], "end": [3, 4], "vessel_type": 7}
        )


# -- incremental refresh -------------------------------------------------


def test_registry_refresh_bumps_revision_in_provenance(registry, service_model, tiny_kiel):
    config = service_model.config
    gap = tiny_kiel.gaps(3600.0)[0]
    (before,) = BatchImputationEngine(registry).run(
        [GapRequest("KIEL", gap.start, gap.end, "r0")], config
    )
    assert before.provenance.revision == 1
    refreshed, model_id, revision = registry.refresh("KIEL", tiny_kiel.test, config)
    assert revision == 2 and refreshed.revision == 2
    assert registry.stats.refreshes == 1
    (after,) = BatchImputationEngine(registry).run(
        [GapRequest("KIEL", gap.start, gap.end, "r1")], config
    )
    assert after.provenance.revision == 2
    # The refreshed model (and its revision) survive a cold process.
    other = ModelRegistry(registry.root)
    loaded, _, source = other.get("KIEL", config)
    assert source == "load" and loaded.revision == 2


def test_refresh_grows_coverage_not_mutating_served_instance(
    registry, service_model, tiny_kiel
):
    config = service_model.config
    served, _, _ = registry.get("KIEL", config)
    nodes_before = served.graph.num_nodes
    refreshed, _, _ = registry.refresh("KIEL", tiny_kiel.test, config)
    assert refreshed is not served  # replace semantics, never in-place
    assert served.graph.num_nodes == nodes_before
    assert refreshed.graph.num_nodes >= nodes_before


def test_registry_refresh_typed_model(registry, service_model, tiny_kiel):
    config = service_model.config
    typed = TypedHabitImputer(config, min_group_rows=100).fit_from_trips(
        tiny_kiel.train
    )
    typed_id, _ = registry.publish("KIEL", typed)
    refreshed, model_id, revision = registry.refresh(
        "KIEL", tiny_kiel.test, config, typed=True
    )
    assert model_id == typed_id and revision == 2
    assert refreshed is not typed  # replace semantics for typed models too
    # Rebuilt graphs take the new revision (path-cache keys read them);
    # the chunk is cargo-only, so the untouched tanker class keeps its
    # revision and its warm cached routes.
    assert refreshed.fallback.revision == 2
    assert refreshed.by_type["cargo"].revision == 2
    assert refreshed.by_type["tanker"].revision == 1
    # The refreshed typed model round-trips through a cold process.
    loaded, _, source = ModelRegistry(registry.root).get("KIEL", config, typed=True)
    assert source == "load" and loaded.revision == 2
    gap = tiny_kiel.gaps(3600.0)[0]
    (result,) = BatchImputationEngine(registry).run(
        [GapRequest("KIEL", gap.start, gap.end, "t0", typed=True)], config
    )
    assert result.provenance.revision == 2


def test_models_feed_reports_revision_and_refresh(registry, service_model, tiny_kiel):
    (entry,) = registry.list_models()
    assert entry["revision"] == 1
    assert entry["last_refresh"] is None and entry["rows_ingested"] == 0
    registry.refresh("KIEL", tiny_kiel.test, service_model.config)
    (entry,) = registry.list_models()
    assert entry["revision"] == 2 and entry["refreshes"] == 1
    assert entry["rows_ingested"] == tiny_kiel.test.num_rows
    assert entry["last_refresh"] is not None
    # A cold registry on the same directory reads the revision from the
    # file (refresh bookkeeping is daemon-local and starts over).
    (cold,) = ModelRegistry(registry.root).list_models()
    assert cold["revision"] == 2 and cold["loaded"] is False
    assert cold["rows_ingested"] == 0


def test_refresh_rejects_stateless_models(tmp_path, tiny_kiel, service_model):
    # A serve-only artefact (no fit state) must refuse refresh rather
    # than silently rebuilding the model from the new chunk alone.
    reg = ModelRegistry(tmp_path / "models")
    config = service_model.config
    path = reg.path_for("KIEL", config)
    service_model.save(path, include_state=False)
    nodes_before = reg.get("KIEL", config)[0].graph.num_nodes
    with pytest.raises(ValueError, match="without its fit state"):
        reg.refresh("KIEL", tiny_kiel.test, config)
    # The full-history model on disk is untouched.
    assert HabitImputer.load(path).graph.num_nodes == nodes_before


# -- schema validation ---------------------------------------------------


@pytest.mark.parametrize(
    "payload, fragment",
    [
        ([], "JSON object"),
        ({}, "requests"),
        ({"requests": []}, "non-empty"),
        ({"requests": [{"start": [1, 2], "end": [3, 4]}]}, "dataset"),
        ({"requests": [{"dataset": "KIEL", "start": [1], "end": [3, 4]}]}, "start"),
        (
            {"requests": [{"dataset": "KIEL", "start": [95.0, 2], "end": [3, 4]}]},
            "out of range",
        ),
        (
            {"requests": [{"dataset": "KIEL", "start": ["a", "b"], "end": [3, 4]}]},
            "two numbers",
        ),
        (
            {"dataset": "KIEL", "start": [1, 2], "end": [3, 4], "config": {"nope": 1}},
            "unknown config fields",
        ),
        (
            {"dataset": "KIEL", "start": [1, 2], "end": [3, 4], "config": [1]},
            "config must be",
        ),
        (
            {"dataset": "KIEL", "start": [1, 2], "end": [3, 4], "max_points": 0},
            "max_points",
        ),
        (
            {"dataset": "KIEL", "start": [1, 2], "end": [3, 4], "max_points": -3},
            "max_points",
        ),
        (
            {"dataset": "KIEL", "start": [1, 2], "end": [3, 4], "max_points": "ten"},
            "max_points",
        ),
        (
            {"dataset": "KIEL", "start": [1, 2], "end": [3, 4], "max_points": 2.5},
            "max_points",
        ),
        (
            {"dataset": "KIEL", "start": [1, 2], "end": [3, 4], "max_points": True},
            "max_points",
        ),
    ],
)
def test_parse_impute_payload_rejects(payload, fragment):
    with pytest.raises(SchemaError, match=fragment):
        parse_impute_payload(payload)


def test_parse_impute_payload_shorthand_and_config():
    requests, config = parse_impute_payload(
        {
            "dataset": "KIEL",
            "start": [54.0, 10.0],
            "end": [55.0, 11.0],
            "config": {"resolution": 8, "tolerance_m": 50},
        }
    )
    assert len(requests) == 1
    assert requests[0].dataset == "KIEL"
    assert requests[0].start == (54.0, 10.0)
    assert config == HabitConfig(resolution=8, tolerance_m=50.0)


# -- HTTP transport ------------------------------------------------------


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode() if not isinstance(payload, bytes) else payload,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.status, json.loads(response.read())


@pytest.fixture()
def server(registry):
    server = make_server(registry, port=0, max_workers=4)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def test_http_impute_returns_geojson_with_provenance(server, tiny_kiel, service_model):
    gap = tiny_kiel.gaps(3600.0)[0]
    status, body = _post(
        server,
        "/impute",
        {"dataset": "KIEL", "start": list(gap.start), "end": list(gap.end)},
    )
    assert status == 200 and body["count"] == 1
    assert body["results"][0]["provenance"]["model_id"] == ModelRegistry.model_id(
        "KIEL", service_model.config
    )
    feature = body["geojson"]["features"][0]
    assert feature["geometry"]["type"] == "LineString"
    assert len(feature["geometry"]["coordinates"]) >= 2
    assert feature["properties"]["fallback"] in (False, True)


def test_http_health_and_models(server):
    status, health = _get(server, "/healthz")
    assert status == 200 and health["status"] == "ok"
    assert {"hits", "loads", "fits", "evictions", "refreshes"} <= set(health["cache"])
    assert {"hits", "misses", "entries", "capacity"} <= set(health["path_cache"])
    assert health["executor"] == "thread"
    assert "follow" not in health  # no daemon attached to this server
    status, models = _get(server, "/models")
    assert status == 200 and len(models["models"]) == 1
    entry = models["models"][0]
    assert {"revision", "last_refresh", "rows_ingested"} <= set(entry)
    assert entry["revision"] == 1


def test_http_error_statuses(server):
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(server, "/impute", b"this is not json")
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(server, "/impute", {"requests": []})
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(
            server,
            "/impute",
            {"dataset": "ATLANTIS", "start": [54.0, 10.0], "end": [55.0, 11.0]},
        )
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(server, "/nope")
    assert err.value.code == 404


def test_http_concurrent_imputes(server, tiny_kiel):
    gaps = tiny_kiel.gaps(3600.0)

    def one(i):
        gap = gaps[i % len(gaps)]
        payload = {
            "requests": [
                {
                    "dataset": "KIEL",
                    "start": list(gap.start),
                    "end": list(gap.end),
                    "id": f"c{i}",
                }
            ]
        }
        status, body = _post(server, "/impute", payload)
        return status, body["results"][0]["request_id"]

    with ThreadPoolExecutor(max_workers=8) as pool:
        outcomes = list(pool.map(one, range(16)))
    assert all(status == 200 for status, _ in outcomes)
    assert [rid for _, rid in outcomes] == [f"c{i}" for i in range(16)]


# -- CLI -----------------------------------------------------------------


def test_cli_fit_populates_registry(tmp_path):
    src = Path(__file__).resolve().parent.parent / "src"
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.service",
            "--fit",
            "KIEL",
            "--scale",
            "0.02",
            "--registry",
            str(tmp_path / "models"),
            "--data-cache",
            str(tmp_path / "data"),
        ],
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "fitted KIEL_" in result.stdout
    published = list((tmp_path / "models").glob("KIEL_*.npz"))
    assert len(published) == 1
    restored = HabitImputer.load(published[0])
    assert restored.graph.num_nodes > 0


def test_cli_requires_an_action():
    src = Path(__file__).resolve().parent.parent / "src"
    result = subprocess.run(
        [sys.executable, "-m", "repro.service"],
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode != 0
    assert "nothing to do" in result.stderr


def test_engine_results_are_finite(registry, service_model, tiny_kiel):
    gaps = tiny_kiel.gaps(3600.0)
    results = BatchImputationEngine(registry).run(
        _gap_requests("KIEL", gaps, n=3), service_model.config
    )
    for result in results:
        assert np.all(np.isfinite(result.lats)) and np.all(np.isfinite(result.lngs))


# -- snap-and-path cache --------------------------------------------------


def test_engine_path_cache_hits_on_repeat(registry, service_model, tiny_kiel):
    gap = tiny_kiel.gaps(3600.0)[0]
    engine = BatchImputationEngine(registry)
    request = [GapRequest("KIEL", gap.start, gap.end, "r0")]
    (first,) = engine.run(request, service_model.config)
    assert first.provenance.path_cache == "miss"
    assert first.provenance.expanded > 0
    (second,) = engine.run(request, service_model.config)
    assert second.provenance.path_cache == "hit"
    # Cached routes render identically, and keep the original search effort.
    assert np.array_equal(first.lats, second.lats)
    assert np.array_equal(first.lngs, second.lngs)
    assert second.provenance.expanded == first.provenance.expanded
    assert engine.path_cache.hits == 1 and engine.path_cache.misses == 1
    # A nearby-but-distinct endpoint that snaps to the same cells also hits.
    nudged = [
        GapRequest(
            "KIEL",
            (gap.start[0] + 1e-7, gap.start[1]),
            (gap.end[0], gap.end[1] - 1e-7),
            "r1",
        )
    ]
    (third,) = engine.run(nudged, service_model.config)
    assert third.provenance.path_cache == "hit"
    # ...while the exact endpoints are still pinned per request.
    assert third.lats[0] == pytest.approx(gap.start[0] + 1e-7)


def test_engine_path_cache_bypasses_fallback(registry, service_model):
    request = [GapRequest("KIEL", (10.0, -40.0), (11.0, -41.0), "ocean")]
    engine = BatchImputationEngine(registry)
    (result,) = engine.run(request, service_model.config)
    assert result.provenance.fallback is True
    assert result.provenance.path_cache == "bypass"
    assert result.provenance.expanded == 0


def test_engine_path_cache_disabled(registry, service_model, tiny_kiel):
    gap = tiny_kiel.gaps(3600.0)[0]
    engine = BatchImputationEngine(registry, path_cache_size=0)
    request = [GapRequest("KIEL", gap.start, gap.end, "r0")]
    for _ in range(2):
        (result,) = engine.run(request, service_model.config)
        assert result.provenance.path_cache == "bypass"
        assert result.provenance.expanded > 0  # search still ran


def test_engine_path_cache_invalidated_by_refresh(registry, service_model, tiny_kiel):
    gap = tiny_kiel.gaps(3600.0)[0]
    engine = BatchImputationEngine(registry)
    request = [GapRequest("KIEL", gap.start, gap.end, "r0")]
    engine.run(request, service_model.config)
    (warm,) = engine.run(request, service_model.config)
    assert warm.provenance.path_cache == "hit"
    registry.refresh("KIEL", tiny_kiel.test, service_model.config)
    (after,) = engine.run(request, service_model.config)
    # New revision => new cache key: the stale route is never served.
    assert after.provenance.revision == 2
    assert after.provenance.path_cache == "miss"


def test_engine_coalesces_identical_routes_in_batch(registry, service_model, tiny_kiel):
    """Identical (model, class, snapped src, snapped dst) requests in one
    batch are searched once: the first is a 'miss', the riders record
    'coalesced', and everyone gets the same route."""
    gap = tiny_kiel.gaps(3600.0)[0]
    engine = BatchImputationEngine(registry)
    requests = _gap_requests("KIEL", [gap], n=4)  # 4 requests, one route
    results = engine.run(requests, service_model.config)
    assert [r.provenance.path_cache for r in results] == [
        "miss",
        "coalesced",
        "coalesced",
        "coalesced",
    ]
    # One search: the cache saw exactly one probe-miss and one insert.
    assert engine.path_cache.misses == 1 and len(engine.path_cache) == 1
    for rider in results[1:]:
        assert np.array_equal(rider.lats, results[0].lats)
        assert np.array_equal(rider.lngs, results[0].lngs)
        assert rider.provenance.expanded == results[0].provenance.expanded
        assert rider.provenance.elapsed_ms > 0.0
    # A later batch finds the coalesced route cached like any other.
    (warm,) = engine.run(requests[:1], service_model.config)
    assert warm.provenance.path_cache == "hit"


def test_engine_coalescing_keeps_distinct_routes_apart(
    registry, service_model, tiny_kiel
):
    gaps = tiny_kiel.gaps(3600.0)
    assert len(gaps) >= 2
    requests = [
        GapRequest("KIEL", gaps[0].start, gaps[0].end, "a0"),
        GapRequest("KIEL", gaps[1].start, gaps[1].end, "b0"),
        GapRequest("KIEL", gaps[0].start, gaps[0].end, "a1"),
    ]
    engine = BatchImputationEngine(registry)
    a0, b0, a1 = engine.run(requests, service_model.config)
    assert a0.provenance.path_cache == "miss"
    assert b0.provenance.path_cache == "miss"
    assert a1.provenance.path_cache == "coalesced"
    assert np.array_equal(a0.lats, a1.lats)
    # Scalar equivalence: the batched engine returns exactly what
    # single-request batches produce.
    solo = [
        BatchImputationEngine(registry).run([r], service_model.config)[0]
        for r in requests
    ]
    for batched, alone in zip((a0, b0, a1), solo):
        assert np.array_equal(batched.lats, alone.lats)
        assert np.array_equal(batched.lngs, alone.lngs)


def test_engine_no_coalescing_when_cache_disabled(registry, service_model, tiny_kiel):
    gap = tiny_kiel.gaps(3600.0)[0]
    engine = BatchImputationEngine(registry, path_cache_size=0)
    results = engine.run(_gap_requests("KIEL", [gap], n=3), service_model.config)
    for result in results:
        assert result.provenance.path_cache == "bypass"
        assert result.provenance.expanded > 0  # every request searched


def test_engine_path_cache_typed_routes_by_class(registry, service_model, tiny_kiel):
    from repro.core import TypedHabitImputer

    typed = TypedHabitImputer(service_model.config, min_group_rows=100).fit_from_trips(
        tiny_kiel.train
    )
    registry.publish("KIEL", typed)
    gap = tiny_kiel.gaps(3600.0)[0]
    engine = BatchImputationEngine(registry)
    known = typed.fitted_groups[0]
    req = lambda rid, vt: [  # noqa: E731
        GapRequest("KIEL", gap.start, gap.end, rid, typed=True, vessel_type=vt)
    ]
    (a,) = engine.run(req("a", known), service_model.config)
    (b,) = engine.run(req("b", known), service_model.config)
    assert a.provenance.path_cache == "miss" and b.provenance.path_cache == "hit"
    # A different class resolves a different graph: no cross-class reuse.
    (c,) = engine.run(req("c", "submarine"), service_model.config)
    assert c.provenance.path_cache == "miss"


# -- budget compression (max_points) --------------------------------------


def _compressible_gap(engine, config, gaps, min_points=6):
    """First gap whose rendered path is long enough to actually compress."""
    for gap in gaps:
        (probe,) = engine.run([GapRequest("KIEL", gap.start, gap.end, "probe")], config)
        if probe.num_points >= min_points and not probe.provenance.fallback:
            return gap, probe
    pytest.skip(f"no rendered KIEL path reaches {min_points} points")


def test_engine_max_points_compresses_and_reports(registry, service_model, tiny_kiel):
    engine = BatchImputationEngine(registry)
    gap, full = _compressible_gap(engine, service_model.config, tiny_kiel.gaps(3600.0))
    budget = max(2, full.num_points // 2)
    (squeezed,) = engine.run(
        [GapRequest("KIEL", gap.start, gap.end, "r0", max_points=budget)],
        service_model.config,
    )
    assert squeezed.num_points <= budget
    prov = squeezed.provenance
    assert prov.points_in == full.num_points
    assert prov.points_out == squeezed.num_points
    assert prov.max_sed_m > 0.0
    # Endpoints are pinned through compression; the chord can only shrink.
    assert squeezed.lats[0] == full.lats[0] and squeezed.lats[-1] == full.lats[-1]
    assert squeezed.lngs[0] == full.lngs[0] and squeezed.lngs[-1] == full.lngs[-1]
    assert prov.path_length_m <= full.provenance.path_length_m + 1e-6
    # The output is a subsequence of the uncompressed rendering.
    positions = {(lat, lng) for lat, lng in zip(full.lats, full.lngs)}
    assert all((lat, lng) in positions for lat, lng in zip(squeezed.lats, squeezed.lngs))


def test_engine_max_points_noop_is_bit_identical(registry, service_model, tiny_kiel):
    engine = BatchImputationEngine(registry)
    gap, _ = _compressible_gap(engine, service_model.config, tiny_kiel.gaps(3600.0))
    plain_req = [GapRequest("KIEL", gap.start, gap.end, "r0")]
    engine.run(plain_req, service_model.config)  # warm route cache + memo
    (reference,) = engine.run(plain_req, service_model.config)
    assert reference.provenance.path_cache == "hit"
    (capped,) = engine.run(
        [GapRequest("KIEL", gap.start, gap.end, "r0", max_points=10_000)],
        service_model.config,
    )
    # Over-large budget: memo still hit (the very same cached arrays come
    # back) and the response is bit-identical to omitting max_points.
    assert capped.provenance.path_cache == "hit"
    assert capped.lats is reference.lats and capped.lngs is reference.lngs
    ref_dict = reference.provenance.to_dict()
    cap_dict = capped.provenance.to_dict()
    ref_dict.pop("elapsed_ms"), cap_dict.pop("elapsed_ms")
    assert cap_dict == ref_dict
    assert cap_dict["points_in"] == 0 and cap_dict["max_sed_m"] == 0.0


def test_http_impute_max_points_bounded(server, tiny_kiel):
    gaps = tiny_kiel.gaps(3600.0)
    for gap in gaps:
        status, body = _post(
            server,
            "/impute",
            {"dataset": "KIEL", "start": list(gap.start), "end": list(gap.end)},
        )
        n = len(body["geojson"]["features"][0]["geometry"]["coordinates"])
        if n >= 6 and not body["results"][0]["provenance"]["fallback"]:
            break
    else:
        pytest.skip("no rendered KIEL path reaches 6 points")
    budget = max(2, n // 2)
    status, body = _post(
        server,
        "/impute",
        {
            "dataset": "KIEL",
            "start": list(gap.start),
            "end": list(gap.end),
            "max_points": budget,
        },
    )
    assert status == 200
    coords = body["geojson"]["features"][0]["geometry"]["coordinates"]
    prov = body["results"][0]["provenance"]
    assert len(coords) <= budget
    assert prov["points_in"] == n
    assert prov["points_out"] == len(coords)
    assert prov["max_sed_m"] > 0.0


def test_http_invalid_max_points_is_400(server):
    for bad in (0, -3, "ten", 2.5, True):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(
                server,
                "/impute",
                {
                    "dataset": "KIEL",
                    "start": [54.0, 10.0],
                    "end": [55.0, 11.0],
                    "max_points": bad,
                },
            )
        assert err.value.code == 400
        assert "max_points" in err.value.read().decode()
