"""Live refresh: CsvFollower tailing and the FollowDaemon loop.

The daemon test is the acceptance criterion for follow mode: a server
started over a growing dump picks up appended rows and bumps the model
revision visible at ``/models`` without restarting.  When the
``REPRO_MODELS_FEED`` environment variable names a file, the final
``/models`` payload is written there (CI uploads it as an artifact).
"""

import json
import os
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.ais import CsvFollower, read_csv
from repro.ais.reader import AISFormatError
from repro.minidb import Table
from repro.service import FollowDaemon, GapRequest, ModelRegistry, make_server

HEADER = "vessel_id,t,lat,lon,sog,cog,vessel_type\n"


def _trip_rows(vessel_id, t0, n=12, lat0=54.4, lon0=10.3):
    """One plausible cargo trip at ~30 s cadence plus a far-future lone
    report that seals it at the next poll (the lone report itself stays
    open and is eventually dropped by min_points)."""
    rows = [
        f"{vessel_id},{t0 + 30 * i},{lat0 + 0.001 * i:.6f},{lon0 + 0.001 * i:.6f},8.0,45.0,cargo\n"
        for i in range(n)
    ]
    rows.append(f"{vessel_id},{t0 + 7200},{lat0:.6f},{lon0:.6f},8.0,45.0,cargo\n")
    return rows


# -- CsvFollower ----------------------------------------------------------


def test_follower_consumes_only_complete_lines(tmp_path):
    path = tmp_path / "dump.csv"
    follower = CsvFollower(path, chunk_rows=100)
    assert follower.poll() == []  # file does not exist yet
    path.write_text(HEADER + "1,1000,54.0,10.0,5.0,90.0,cargo\n" + "2,1000,54.1")
    (chunk,) = follower.poll()
    assert chunk.num_rows == 1  # the torn row stays unread
    with open(path, "a") as handle:
        handle.write(",10.1,5.0,90.0,tanker\n")
    (chunk,) = follower.poll()
    assert chunk.num_rows == 1
    assert np.asarray(chunk.column("vessel_id")).tolist() == [2]
    assert follower.poll() == []  # nothing new


def test_follower_chunks_and_matches_read_csv(tmp_path):
    path = tmp_path / "dump.csv"
    path.write_text(HEADER)
    follower = CsvFollower(path, chunk_rows=5)
    collected = []
    for batch in range(3):
        with open(path, "a") as handle:
            for i in range(7):
                handle.write(f"{batch + 1},{1000 + 30 * i},54.{i},10.{i},5.0,90.0,cargo\n")
        chunks = follower.poll()
        assert [c.num_rows for c in chunks] == [5, 2]
        collected.extend(chunks)
    assert follower.rows_read == 21
    merged = Table.concat(collected)
    direct = read_csv(path)
    for name in direct.column_names:
        assert np.array_equal(
            np.asarray(merged.column(name)), np.asarray(direct.column(name))
        ), name


def test_follower_rejects_truncation(tmp_path):
    path = tmp_path / "dump.csv"
    path.write_text(HEADER + "1,1000,54.0,10.0,5.0,90.0,cargo\n")
    follower = CsvFollower(path)
    follower.poll()
    path.write_text(HEADER)  # rotation: file shrank under the offset
    with pytest.raises(AISFormatError, match="shrank"):
        follower.poll()


def test_follower_rejects_replacement_file(tmp_path):
    path = tmp_path / "dump.csv"
    path.write_text(HEADER + "1,1000,54.0,10.0,5.0,90.0,cargo\n")
    follower = CsvFollower(path)
    follower.poll()
    # Create-mode rotation: new inode, regrown past the old offset --
    # size alone would not notice.  (Rename keeps the old inode alive so
    # the filesystem cannot hand the replacement the same one.)
    path.rename(path.with_suffix(".1"))
    path.write_text(HEADER + "".join(
        f"2,{2000 + i},54.0,10.0,5.0,90.0,cargo\n" for i in range(50)
    ))
    with pytest.raises(AISFormatError, match="replaced"):
        follower.poll()


def test_follower_allows_replacement_before_consumption(tmp_path):
    """A writer atomically publishing the first real content over an
    empty placeholder (tmp + rename) must not read as a rotation."""
    path = tmp_path / "dump.csv"
    path.write_text("")
    follower = CsvFollower(path)
    assert follower.poll() == []
    tmp = tmp_path / "dump.csv.tmp"
    tmp.write_text(HEADER + "1,1000,54.0,10.0,5.0,90.0,cargo\n")
    tmp.rename(path)
    (chunk,) = follower.poll()
    assert chunk.num_rows == 1


def test_follower_validates_header_on_first_sight(tmp_path):
    path = tmp_path / "dump.csv"
    path.write_text("just,some,columns\n1,2,3\n")
    with pytest.raises(AISFormatError, match="required columns"):
        CsvFollower(path).poll()


# -- FollowDaemon against a live server -----------------------------------


@pytest.fixture()
def followed_service(tmp_path, service_model):
    """A registry with the KIEL model, a growing dump, a follow daemon,
    and an HTTP server wired together -- the full ``--serve --follow``
    stack on an ephemeral port."""
    registry = ModelRegistry(tmp_path / "models", capacity=4)
    registry.publish("KIEL", service_model)
    dump = tmp_path / "live.csv"
    dump.write_text(HEADER)
    daemon = FollowDaemon(
        registry,
        dump,
        "KIEL",
        config=service_model.config,
        refresh_interval_s=0.05,
        poll_interval_s=0.02,
    ).start()
    server = make_server(registry, port=0, max_workers=2, follow=daemon)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", dump, registry
    daemon.stop()
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get_json(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


def _wait_for_revision(base, target, timeout_s=20.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        (entry,) = _get_json(base, "/models")["models"]
        if entry["revision"] is not None and entry["revision"] >= target:
            return entry
        time.sleep(0.05)
    raise AssertionError(f"revision never reached {target}; last entry: {entry}")


def test_follow_daemon_bumps_revision_as_dump_grows(followed_service, service_model):
    base, dump, _ = followed_service
    (entry,) = _get_json(base, "/models")["models"]
    assert entry["revision"] == 1 and entry["rows_ingested"] == 0

    with open(dump, "a") as handle:
        handle.writelines(_trip_rows(901, t0=1_000_000))
    entry = _wait_for_revision(base, 2)
    assert entry["rows_ingested"] > 0 and entry["last_refresh"] is not None

    # Appending more rows bumps the revision again -- no restart anywhere.
    with open(dump, "a") as handle:
        handle.writelines(_trip_rows(902, t0=1_100_000, lat0=54.41, lon0=10.31))
    entry = _wait_for_revision(base, 3)

    health = _get_json(base, "/healthz")
    follow = health["follow"]
    assert follow["running"] is True and follow["last_error"] is None
    assert follow["refreshes"] >= 2 and follow["trips_closed"] >= 2
    assert follow["rows_read"] > 0 and follow["revision"] == entry["revision"]
    assert health["cache"]["refreshes"] >= 2

    # Queries served now carry the refreshed revision in provenance.
    gap_payload = {"dataset": "KIEL", "start": [54.4, 10.3], "end": [54.45, 10.35]}
    request = urllib.request.Request(
        base + "/impute",
        data=json.dumps(gap_payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        body = json.loads(response.read())
    assert body["results"][0]["provenance"]["revision"] == entry["revision"]

    artifact = os.environ.get("REPRO_MODELS_FEED")
    if artifact:
        with open(artifact, "w") as handle:
            json.dump(_get_json(base, "/models"), handle, indent=2)


def test_follow_refresh_changes_served_paths(tmp_path, service_model, tiny_kiel):
    """A refresh is visible on the request path: the snap-and-path cache
    invalidates (new revision key) and re-searches the refreshed graph."""
    from repro.service import BatchImputationEngine

    registry = ModelRegistry(tmp_path / "models", capacity=4)
    registry.publish("KIEL", service_model)
    engine = BatchImputationEngine(registry)
    gap = tiny_kiel.gaps(3600.0)[0]
    request = [GapRequest("KIEL", gap.start, gap.end, "r0")]
    engine.run(request, service_model.config)
    (warm,) = engine.run(request, service_model.config)
    assert warm.provenance.path_cache == "hit" and warm.provenance.revision == 1

    dump = tmp_path / "live.csv"
    dump.write_text(HEADER)
    daemon = FollowDaemon(
        registry,
        dump,
        "KIEL",
        config=service_model.config,
        refresh_interval_s=0.05,
        poll_interval_s=0.02,
    ).start()
    try:
        with open(dump, "a") as handle:
            handle.writelines(_trip_rows(903, t0=2_000_000))
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline and daemon.status()["refreshes"] < 1:
            time.sleep(0.05)
        assert daemon.status()["refreshes"] >= 1, daemon.status()
    finally:
        daemon.stop()
    (after,) = engine.run(request, service_model.config)
    assert after.provenance.revision == 2
    assert after.provenance.path_cache == "miss"  # stale route never served


def test_follow_daemon_restart_resumes_without_reingesting(tmp_path, service_model):
    """A restarted daemon continues from the persisted byte offset --
    re-ingesting the dump from byte 0 would fold every historical trip
    into the model a second time."""
    registry = ModelRegistry(tmp_path / "models", capacity=4)
    registry.publish("KIEL", service_model)
    dump = tmp_path / "live.csv"
    dump.write_text(HEADER)

    def run_daemon_until_refresh(expected_refreshes=1):
        daemon = FollowDaemon(
            registry, dump, "KIEL", config=service_model.config,
            refresh_interval_s=0.05, poll_interval_s=0.02,
        ).start()
        deadline = time.monotonic() + 20.0
        while (
            time.monotonic() < deadline
            and daemon.status()["refreshes"] < expected_refreshes
        ):
            time.sleep(0.05)
        daemon.stop()
        status = daemon.status()
        assert status["last_error"] is None, status
        return status

    with open(dump, "a") as handle:
        handle.writelines(_trip_rows(911, t0=1_000_000))
    first = run_daemon_until_refresh()
    assert first["refreshes"] == 1
    (entry,) = registry.list_models()
    assert entry["revision"] == 2 and entry["rows_ingested"] == 12

    # Restart with a *new* daemon object: nothing already ingested is
    # re-read (rows_read resumes), and only freshly appended rows refresh.
    with open(dump, "a") as handle:
        handle.writelines(_trip_rows(912, t0=1_100_000, lat0=54.41))
    second = run_daemon_until_refresh()
    assert second["rows_read"] > first["rows_read"]  # resumed, then read new
    (entry,) = registry.list_models()
    assert entry["revision"] == 3
    # Only the new trip's source rows were re-parsed; the refresh
    # ingested its 12 closed-trip rows on top of the first daemon's 12.
    assert entry["rows_ingested"] == 24


def test_follow_daemon_surfaces_refresh_errors(tmp_path):
    """A poisoned feed (here: no resolvable model) stops the loop and
    lands in status.last_error instead of spinning or crashing serving."""
    registry = ModelRegistry(tmp_path / "empty")
    dump = tmp_path / "live.csv"
    dump.write_text(HEADER)
    daemon = FollowDaemon(
        registry, dump, "ATLANTIS", refresh_interval_s=0.05, poll_interval_s=0.02
    ).start()
    try:
        with open(dump, "a") as handle:
            handle.writelines(_trip_rows(904, t0=3_000_000))
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline and daemon.status()["last_error"] is None:
            time.sleep(0.05)
    finally:
        daemon.stop()
    status = daemon.status()
    assert status["last_error"] is not None and "ATLANTIS" in status["last_error"]
    assert status["running"] is False


def _lane_rows(vessel_id, t0, n=400):
    """A long curved single-vessel lane at 30 s cadence: steady eastward
    progress with a gentle cross-track sinusoid, never breaking the
    gap/jump thresholds -- one ever-growing open trip."""
    rows = []
    for i in range(n):
        lat = 54.4 + 0.002 * np.sin(i / 40.0)
        lon = 10.3 + 0.0005 * i
        rows.append(f"{vessel_id},{t0 + 30 * i},{lat:.6f},{lon:.6f},8.0,45.0,cargo\n")
    return rows


def test_follow_buffer_budget_bounds_open_trips(tmp_path, service_model):
    """--buffer-budget holds the open-trip buffer at the budget while the
    refreshed model still covers the vessel's lane cells (fit quality
    degrades gracefully, not catastrophically)."""
    from repro.hexgrid import latlng_to_cell_array

    budget = 60
    t0 = 5_000_000
    lane = _lane_rows(921, t0=t0)
    sealing = f"921,{t0 + 7 * 86_400},54.4,10.3,8.0,45.0,cargo\n"

    def run(name, buffer_budget):
        registry = ModelRegistry(tmp_path / name, capacity=4)
        registry.publish("KIEL", service_model)
        dump = tmp_path / f"{name}.csv"
        dump.write_text(HEADER + "".join(lane))
        daemon = FollowDaemon(
            registry,
            dump,
            "KIEL",
            config=service_model.config,
            refresh_interval_s=0.05,
            poll_interval_s=0.02,
            chunk_rows=64,
            buffer_budget=buffer_budget,
        ).start()
        try:
            # The whole lane is one open trip; wait for it to be buffered.
            # status open_rows is only ever published post-compaction, so a
            # bounded run may never report more than the budget.
            expected_open = budget if buffer_budget else len(lane)
            observed_max = 0
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline:
                status = daemon.status()
                observed_max = max(observed_max, status["open_rows"])
                if (
                    status["rows_read"] >= len(lane)
                    and status["open_rows"] == expected_open
                ):
                    break
                time.sleep(0.02)
            status = daemon.status()
            assert status["open_rows"] == expected_open, status
            assert status["last_error"] is None, status
            if buffer_budget:
                assert observed_max <= budget
                assert status["buffer_budget"] == budget
            # Seal the trip; the refresh folds the buffered rows in.
            with open(dump, "a") as handle:
                handle.write(sealing)
            deadline = time.monotonic() + 20.0
            while time.monotonic() < deadline and daemon.status()["refreshes"] < 1:
                time.sleep(0.02)
            status = daemon.status()
            assert status["refreshes"] >= 1 and status["last_error"] is None, status
        finally:
            daemon.stop()
        imputer, _, _ = registry.get("KIEL", service_model.config)
        return set(np.asarray(imputer.graph.cells).tolist())

    unbounded_cells = run("unbounded", None)
    bounded_cells = run("bounded", budget)

    resolution = service_model.config.resolution
    lane_lat = 54.4 + 0.002 * np.sin(np.arange(len(lane)) / 40.0)
    lane_lon = 10.3 + 0.0005 * np.arange(len(lane))
    lane_cells = set(latlng_to_cell_array(lane_lat, lane_lon, resolution).tolist())
    baseline = set(np.asarray(service_model.graph.cells).tolist())

    # Coverage the refresh contributed along the lane, bounded vs not.
    gained_unbounded = (unbounded_cells - baseline) & lane_cells
    gained_bounded = (bounded_cells - baseline) & lane_cells
    assert gained_unbounded, "unbounded refresh never covered the lane"
    overlap = len(gained_bounded & gained_unbounded) / len(gained_unbounded)
    assert overlap >= 0.5, (
        f"budgeted refresh covers {overlap:.0%} of the lane cells the "
        f"unbounded run learned ({len(gained_bounded)} vs {len(gained_unbounded)})"
    )
