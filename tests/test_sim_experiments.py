"""Dataset generation and experiment preparation."""

import numpy as np

from repro.ais import schema
from repro.experiments import common
from repro.sim.datasets import build_dataset


def test_build_dataset_deterministic():
    a = build_dataset("KIEL", scale=0.01, seed=3)
    b = build_dataset("KIEL", scale=0.01, seed=3)
    assert a.num_positions == b.num_positions
    assert np.array_equal(a.table.column(schema.LAT), b.table.column(schema.LAT))
    c = build_dataset("KIEL", scale=0.01, seed=4)
    assert not np.array_equal(a.table.column(schema.LAT), c.table.column(schema.LAT))


def test_build_dataset_schema_and_ranges():
    bundle = build_dataset("SAR", scale=0.005, seed=0)
    table = bundle.table
    for column in schema.RAW_COLUMNS:
        assert column in table
    assert bundle.num_positions == table.num_rows > 0
    assert np.all(np.abs(table.column(schema.LAT)) <= 90.0)
    assert np.all(np.abs(table.column(schema.LON)) <= 180.0)
    assert np.all(table.column(schema.SOG) >= 0.0)
    cog = table.column(schema.COG)
    assert np.all((cog >= 0.0) & (cog < 360.0))


def test_scale_grows_dataset():
    small = build_dataset("DAN", scale=0.005, seed=0)
    large = build_dataset("DAN", scale=0.02, seed=0)
    assert large.num_positions > small.num_positions


def test_prepare_split_is_by_trip(tiny_kiel):
    train_trips = set(np.unique(tiny_kiel.train.column(schema.TRIP_ID)).tolist())
    test_trips = set(np.unique(tiny_kiel.test.column(schema.TRIP_ID)).tolist())
    assert train_trips and test_trips
    assert not train_trips & test_trips


def test_prepare_cache_round_trip(tmp_path):
    first = common.prepare("KIEL", scale=0.01, cache_dir=str(tmp_path), seed=1)
    cached = common.prepare("KIEL", scale=0.01, cache_dir=str(tmp_path), seed=1)
    assert first.trips.num_rows == cached.trips.num_rows
    assert np.array_equal(
        first.train.column(schema.T), cached.train.column(schema.T)
    )
    assert any(tmp_path.iterdir())  # the cache file landed on disk


def test_gaps_have_truth_and_context(tiny_kiel):
    gaps = tiny_kiel.gaps(3600.0)
    assert gaps
    for gap in gaps:
        assert len(gap.truth_lats) >= 3
        assert gap.duration_s >= 3600.0 * 0.9
        # Endpoints are the boundary truth points.
        assert gap.start == (gap.truth_lats[0], gap.truth_lngs[0])
        assert gap.end == (gap.truth_lats[-1], gap.truth_lngs[-1])


def test_longer_gaps_are_scarcer(tiny_kiel):
    assert len(tiny_kiel.gaps(7200.0)) <= len(tiny_kiel.gaps(3600.0))


def test_gap_sweep_covers_the_grid(tiny_kiel):
    cells = list(
        common.gap_sweep(tiny_kiel, durations_s=(1800.0, 3600.0), densities=(1, 2))
    )
    assert [(c.duration_s, c.max_per_trip) for c in cells] == [
        (1800.0, 1),
        (1800.0, 2),
        (3600.0, 1),
        (3600.0, 2),
    ]
    by_cell = {(c.duration_s, c.max_per_trip): c for c in cells}
    # Each cell matches the equivalent single-configuration call ...
    assert by_cell[(3600.0, 1)].num_gaps == len(tiny_kiel.gaps(3600.0))
    # ... and higher density never yields fewer gaps.
    assert by_cell[(1800.0, 2)].num_gaps >= by_cell[(1800.0, 1)].num_gaps
    for cell in cells:
        for gap in cell.gaps:
            assert gap.duration_s >= cell.duration_s * 0.9
