"""Hexgrid: packing round-trips, distances, rings, scalar/array parity."""

import numpy as np
import pytest

from repro.hexgrid import (
    cell_edge_length_m,
    cell_resolution,
    cell_to_latlng,
    cell_to_latlng_array,
    grid_distance,
    grid_distance_array,
    latlng_to_cell,
    latlng_to_cell_array,
    ring,
)


def test_center_round_trip():
    cell = latlng_to_cell(55.5, 10.5, 9)
    lat, lng = cell_to_latlng(cell)
    assert latlng_to_cell(lat, lng, 9) == cell


def test_round_trip_bulk(rng):
    lats = rng.uniform(-60.0, 70.0, 5000)
    lngs = rng.uniform(-170.0, 170.0, 5000)
    for resolution in (6, 9, 11):
        cells = latlng_to_cell_array(lats, lngs, resolution)
        clat, clng = cell_to_latlng_array(cells)
        again = latlng_to_cell_array(clat, clng, resolution)
        assert np.array_equal(cells, again)
        assert np.all(cell_resolution(cells) == resolution)


def test_cell_center_is_close():
    lat, lng = 56.0, 11.0
    for resolution in (7, 9, 10):
        cell = latlng_to_cell(lat, lng, resolution)
        clat, clng = cell_to_latlng(cell)
        # Centre within one circumradius (= edge length) of the query point.
        dy = (clat - lat) * 111_320.0
        dx = (clng - lng) * 111_320.0 * np.cos(np.radians(lat))
        assert np.hypot(dx, dy) <= cell_edge_length_m(resolution) + 1e-6


def test_scalar_array_parity(rng):
    lats = rng.uniform(54.0, 58.0, 100)
    lngs = rng.uniform(8.0, 13.0, 100)
    cells = latlng_to_cell_array(lats, lngs, 9)
    for i in range(0, 100, 17):
        assert latlng_to_cell(lats[i], lngs[i], 9) == cells[i]
    pair_d = grid_distance_array(cells[:-1], cells[1:])
    for i in range(0, 99, 13):
        assert grid_distance(int(cells[i]), int(cells[i + 1])) == pair_d[i]


def test_scalar_array_parity_all_resolutions(rng):
    # The scalar indexer is pure-python math on the serve path; it must
    # agree bit-for-bit with the vectorised kernel everywhere.
    lats = rng.uniform(-75.0, 75.0, 500)
    lngs = rng.uniform(-179.0, 179.0, 500)
    for resolution in (0, 5, 9, 12, 15):
        cells = latlng_to_cell_array(lats, lngs, resolution)
        for i in range(0, 500, 23):
            assert latlng_to_cell(lats[i], lngs[i], resolution) == cells[i]


def test_cell_axial_array_matches_packing(rng):
    from repro.hexgrid import cell_axial_array

    lats = rng.uniform(50.0, 60.0, 200)
    lngs = rng.uniform(5.0, 15.0, 200)
    cells = latlng_to_cell_array(lats, lngs, 9)
    q, r = cell_axial_array(cells)
    # (q, r) plus the resolution reconstruct the very same ids.
    rebuilt = (np.int64(9) << 56) | ((q + (1 << 27)) << 28) | (r + (1 << 27))
    assert np.array_equal(rebuilt, cells)
    # And pairwise grid distances derived from (q, r) match the kernel.
    dq = q[:-1] - q[1:]
    dr = r[:-1] - r[1:]
    manual = (np.abs(dq) + np.abs(dr) + np.abs(dq + dr)) // 2
    assert np.array_equal(manual, grid_distance_array(cells[:-1], cells[1:]))


def test_grid_distance_metric_properties(rng):
    lats = rng.uniform(54.0, 55.0, 60)
    lngs = rng.uniform(10.0, 11.0, 60)
    c = latlng_to_cell_array(lats, lngs, 8)
    a, b, m = c[:20], c[20:40], c[40:60]
    d_ab = grid_distance_array(a, b)
    assert np.array_equal(d_ab, grid_distance_array(b, a))  # symmetry
    assert np.all(grid_distance_array(a, a) == 0)  # identity
    # triangle inequality through an arbitrary midpoint
    assert np.all(d_ab <= grid_distance_array(a, m) + grid_distance_array(m, b))


def test_grid_distance_rejects_mixed_resolution():
    a = np.asarray([latlng_to_cell(55.0, 10.0, 8)])
    b = np.asarray([latlng_to_cell(55.0, 10.0, 9)])
    with pytest.raises(ValueError):
        grid_distance_array(a, b)


def test_ring_sizes_and_distances():
    cell = latlng_to_cell(55.0, 10.0, 9)
    assert ring(cell, 0) == [cell]
    for k in (1, 2, 5):
        cells = ring(cell, k)
        assert len(cells) == 6 * k
        assert len(set(cells)) == 6 * k
        assert all(grid_distance(cell, c) == k for c in cells)


def test_neighbors_are_adjacent():
    cell = latlng_to_cell(55.0, 10.0, 9)
    for neighbour in ring(cell, 1):
        lat, lng = cell_to_latlng(neighbour)
        assert latlng_to_cell(lat, lng, 9) == neighbour
