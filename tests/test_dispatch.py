"""Concurrency suite for the cross-request micro-batching dispatcher.

Two layers: :class:`repro.service.dispatch.BatchDispatcher` is driven
directly with stub imputers and hand-controlled thread interleavings
(deterministic window/fusion/flush semantics -- every request answered
exactly once, no torn futures, window-timeout and max-lanes flush
paths, close with requests in flight, error poisoning), and the engine
integration is barrier-hammered through real concurrent ``run`` calls
(results always correct and tiers always a coherent story, whichever
way the races land).
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import BatchImputationEngine, GapRequest, ModelRegistry
from repro.service.dispatch import BatchDispatcher

# -- dispatcher unit layer (stub imputers, controlled interleavings) -----


class StubImputer:
    """route_batch stand-in: answers each (src, dst) pair with a tag,
    recording every call so tests can assert fusion happened."""

    def __init__(self, fail=False):
        self.calls = []
        self.fail = fail
        self.lock = threading.Lock()

    def route_batch(self, pairs):
        with self.lock:
            self.calls.append(list(pairs))
        if self.fail:
            raise RuntimeError("search exploded")
        return [("route", src, dst) for src, dst in pairs]


def _submit_in_thread(dispatcher, token, entries):
    """Run submit on a worker thread; returns (thread, box) where box
    collects the result or the raised error."""
    box = {}

    def work():
        try:
            box["results"] = dispatcher.submit(token, entries)
        except BaseException as exc:  # noqa: BLE001 - recorded for asserts
            box["error"] = exc

    thread = threading.Thread(target=work, daemon=True)
    thread.start()
    return thread, box


def test_lone_submission_executes_immediately():
    """The idle bypass: a lone in-flight run satisfies the all-parked
    condition by itself, so its flush starts with zero window wait."""
    dispatcher = BatchDispatcher(window_s=30.0, max_lanes=64)
    stub = StubImputer()
    token = dispatcher.enter()
    started = time.perf_counter()
    results = dispatcher.submit(token, [("k1", stub, (1, 2), True, 1)])
    waited = time.perf_counter() - started
    dispatcher.leave(token)
    assert results == {"k1": (("route", 1, 2), False, pytest.approx(results["k1"][2]))}
    assert waited < 1.0  # nowhere near the 30s window
    assert stub.calls == [[(1, 2)]]


def test_two_runs_fuse_into_one_kernel_call_with_cross_tier():
    """Deterministic fusion: run B holds the window open (entered, not
    yet submitted) while run A submits; B then submits the identical
    shared key.  One route_batch call answers both; exactly one side is
    flagged cross."""
    dispatcher = BatchDispatcher(window_s=30.0, max_lanes=64)
    stub = StubImputer()
    token_a = dispatcher.enter()
    token_b = dispatcher.enter()
    thread_a, box_a = _submit_in_thread(
        dispatcher, token_a, [("key", stub, (1, 2), True, 1)]
    )
    # A is parked: B still pre-submit, no deadline for 30s.
    time.sleep(0.05)
    assert "results" not in box_a
    results_b = dispatcher.submit(token_b, [("key", stub, (1, 2), True, 2)])
    thread_a.join(timeout=10)
    assert not thread_a.is_alive()
    dispatcher.leave(token_a)
    dispatcher.leave(token_b)
    assert stub.calls == [[(1, 2)]]  # one fused search, not two
    (result_a, cross_a, share_a) = box_a["results"]["key"]
    (result_b, cross_b, share_b) = results_b["key"]
    assert result_a == result_b == ("route", 1, 2)
    assert sorted([cross_a, cross_b]) == [False, True]
    assert share_a == share_b > 0.0


def test_unshared_lanes_never_fuse():
    """Cache-off lanes (shared=False) keep one search lane per request
    even for identical pairs -- the engine's bypass contract."""
    dispatcher = BatchDispatcher(window_s=30.0, max_lanes=64)
    stub = StubImputer()
    token_a = dispatcher.enter()
    token_b = dispatcher.enter()
    thread_a, box_a = _submit_in_thread(
        dispatcher, token_a, [(("key", 0), stub, (1, 2), False, 1)]
    )
    time.sleep(0.05)
    results_b = dispatcher.submit(token_b, [(("key", 0), stub, (1, 2), False, 1)])
    thread_a.join(timeout=10)
    dispatcher.leave(token_a)
    dispatcher.leave(token_b)
    assert len(stub.calls) == 1 and len(stub.calls[0]) == 2  # fused, not deduped
    assert box_a["results"][("key", 0)][1] is False
    assert results_b[("key", 0)][1] is False


def test_window_timeout_flushes_without_stragglers():
    """A run stuck pre-submit (e.g. a slow fit) must not hold the window
    past its deadline: the parked submitter flushes alone."""
    dispatcher = BatchDispatcher(window_s=0.05, max_lanes=64)
    stub = StubImputer()
    token_a = dispatcher.enter()
    straggler = dispatcher.enter()  # never submits until after the flush
    started = time.perf_counter()
    results = dispatcher.submit(token_a, [("k", stub, (3, 4), True, 1)])
    waited = time.perf_counter() - started
    assert results["k"][0] == ("route", 3, 4)
    assert 0.05 <= waited < 5.0
    dispatcher.leave(token_a)
    dispatcher.leave(straggler)


def test_max_lanes_flushes_early():
    """Reaching the lane cap flushes immediately even though another
    run is still pre-submit and the window is huge."""
    dispatcher = BatchDispatcher(window_s=30.0, max_lanes=4)
    stub = StubImputer()
    token = dispatcher.enter()
    straggler = dispatcher.enter()
    entries = [(f"k{i}", stub, (i, i + 1), True, 1) for i in range(4)]
    started = time.perf_counter()
    results = dispatcher.submit(token, entries)
    assert time.perf_counter() - started < 5.0
    assert len(results) == 4
    dispatcher.leave(token)
    dispatcher.leave(straggler)


def test_leave_without_submitting_releases_the_window():
    """A run whose lanes were all cache hits never submits; its leave()
    must unblock waiting submitters (the all-parked flush rule)."""
    dispatcher = BatchDispatcher(window_s=30.0, max_lanes=64)
    stub = StubImputer()
    token_a = dispatcher.enter()
    hits_only = dispatcher.enter()
    thread_a, box_a = _submit_in_thread(
        dispatcher, token_a, [("k", stub, (1, 2), True, 1)]
    )
    time.sleep(0.05)
    assert "results" not in box_a
    dispatcher.leave(hits_only)
    thread_a.join(timeout=10)
    assert not thread_a.is_alive()
    assert box_a["results"]["k"][0] == ("route", 1, 2)
    dispatcher.leave(token_a)


def test_close_flushes_parked_submissions_and_serves_later_ones():
    """close() with a request in flight: the parked submitter leads the
    final flush and completes; submissions after close run immediately,
    unbatched."""
    dispatcher = BatchDispatcher(window_s=30.0, max_lanes=64)
    stub = StubImputer()
    token = dispatcher.enter()
    holder = dispatcher.enter()  # keeps the window open across close()
    thread, box = _submit_in_thread(dispatcher, token, [("k", stub, (1, 2), True, 1)])
    time.sleep(0.05)
    assert "results" not in box
    dispatcher.close()
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert box["results"]["k"][0] == ("route", 1, 2)
    dispatcher.leave(token)
    dispatcher.leave(holder)
    late = dispatcher.enter()
    assert dispatcher.submit(late, [("k2", stub, (5, 6), True, 1)])["k2"][0] == (
        "route",
        5,
        6,
    )
    dispatcher.leave(late)


def test_search_error_poisons_the_whole_flush():
    """A route_batch exception propagates to every fused submitter, and
    the dispatcher stays usable afterwards."""
    dispatcher = BatchDispatcher(window_s=30.0, max_lanes=64)
    bad = StubImputer(fail=True)
    good = StubImputer()
    token_a = dispatcher.enter()
    token_b = dispatcher.enter()
    thread_a, box_a = _submit_in_thread(
        dispatcher, token_a, [("ka", bad, (1, 2), True, 1)]
    )
    time.sleep(0.05)
    with pytest.raises(RuntimeError, match="search exploded"):
        dispatcher.submit(token_b, [("kb", bad, (3, 4), True, 1)])
    thread_a.join(timeout=10)
    assert isinstance(box_a["error"], RuntimeError)
    dispatcher.leave(token_a)
    dispatcher.leave(token_b)
    healthy = dispatcher.enter()
    assert dispatcher.submit(healthy, [("k", good, (7, 8), True, 1)])["k"][0] == (
        "route",
        7,
        8,
    )
    dispatcher.leave(healthy)


def test_hammer_every_submission_answered_exactly_once():
    """Barrier-hammered: many threads, many rounds, mixed shared keys.
    Every submission gets exactly its own keys back, each mapping to the
    right route -- no torn or crossed futures under any interleaving."""
    dispatcher = BatchDispatcher(window_s=0.01, max_lanes=8)
    stub = StubImputer()
    threads, rounds = 8, 15
    barrier = threading.Barrier(threads)
    failures = []

    def client(tid):
        try:
            for round_no in range(rounds):
                barrier.wait(timeout=30)
                token = dispatcher.enter()
                # Half the threads share a key each round; half are solo.
                if tid % 2 == 0:
                    entries = [(("hub", round_no), stub, (round_no, 99), True, 1)]
                else:
                    entries = [
                        ((tid, round_no), stub, (tid * 1000 + round_no, tid), True, 1)
                    ]
                results = dispatcher.submit(token, entries)
                dispatcher.leave(token)
                assert set(results) == {entries[0][0]}, results
                result, _, share = results[entries[0][0]]
                assert result == ("route", *entries[0][2]), result
                assert share >= 0.0
        except Exception as exc:  # noqa: BLE001 - surface in the main thread
            failures.append(exc)
            barrier.abort()

    with ThreadPoolExecutor(max_workers=threads) as pool:
        list(pool.map(client, range(threads)))
    assert not failures, failures
    # Shared hub lanes deduped: per round at most one (round, 99) search
    # ran, however many of the 4 sharing threads fused.
    for round_no in range(rounds):
        hub_searches = sum(
            pairs.count((round_no, 99)) for pairs in stub.calls
        )
        assert 1 <= hub_searches <= 4, (round_no, hub_searches)


# -- engine integration layer (real models, real races) ------------------


@pytest.fixture(scope="module")
def dispatch_engine(tmp_path_factory, service_model):
    registry = ModelRegistry(tmp_path_factory.mktemp("dispatch_registry"))
    registry.publish("KIEL", service_model)
    engine = BatchImputationEngine(
        registry, max_workers=4, batch_window_ms=50.0, batch_max_lanes=64
    )
    yield engine, service_model.config
    engine.close()


def _gap_requests(model, n, offset=0):
    """Distinct-route singleton requests built from graph node positions."""
    graph = model.graph
    step = max(1, graph.num_nodes // (2 * n + 2 * offset + 2))
    out = []
    for i in range(offset, offset + n):
        a = (2 * i * step) % graph.num_nodes
        b = (2 * i * step + step) % graph.num_nodes
        out.append(
            GapRequest(
                dataset="KIEL",
                start=(float(graph.lats[a]), float(graph.lngs[a])),
                end=(float(graph.lats[b]), float(graph.lngs[b])),
                request_id=f"g{i}",
            )
        )
    return out


def test_engine_concurrent_identical_singletons_coalesce_across_requests(
    dispatch_engine,
):
    """N threads fire the same fresh route concurrently: every result is
    identical, and the tier story is coherent -- at least one searched
    ("miss") and the rest rode it ("cross_batch", or "hit" for a thread
    that raced in after the cache was filled)."""
    engine, config = dispatch_engine
    (request,) = _gap_requests(engine.registry.get("KIEL", config)[0], 1, offset=40)
    n = 8
    barrier = threading.Barrier(n)

    def one(_):
        barrier.wait(timeout=30)
        (result,) = engine.run([request], config)
        return result

    with ThreadPoolExecutor(max_workers=n) as pool:
        results = list(pool.map(one, range(n)))
    tiers = [r.provenance.path_cache for r in results]
    assert set(tiers) <= {"miss", "cross_batch", "hit"}, tiers
    assert tiers.count("miss") >= 1
    reference = results[0]
    for result in results[1:]:
        assert result.provenance.num_cells == reference.provenance.num_cells
        assert result.num_points == reference.num_points
        assert result.lats[0] == reference.lats[0]
        assert result.lngs[-1] == reference.lngs[-1]
    # The cache ends up warm either way.
    (after,) = engine.run([request], config)
    assert after.provenance.path_cache == "hit"


def test_engine_concurrent_distinct_singletons_all_answered(dispatch_engine):
    """Distinct concurrent routes fuse into shared windows but never mix
    up results: each response matches the solo run of the same gap."""
    engine, config = dispatch_engine
    model = engine.registry.get("KIEL", config)[0]
    requests = _gap_requests(model, 12, offset=60)
    solo = {r.request_id: model.impute(r.start, r.end) for r in requests}
    barrier = threading.Barrier(len(requests))

    def one(request):
        barrier.wait(timeout=30)
        (result,) = engine.run([request], config)
        return request.request_id, result

    with ThreadPoolExecutor(max_workers=len(requests)) as pool:
        results = dict(pool.map(one, requests))
    for rid, expected in solo.items():
        got = results[rid]
        assert got.num_points == len(expected.lats), rid
        assert got.provenance.method == expected.method, rid
        assert got.lats[0] == pytest.approx(expected.lats[0]), rid
        assert got.lngs[-1] == pytest.approx(expected.lngs[-1]), rid


def test_engine_close_with_requests_in_flight(tmp_path, service_model):
    """Engine close while a window is parked: the in-flight request still
    completes, and post-close requests are served unbatched."""
    registry = ModelRegistry(tmp_path / "close_registry")
    registry.publish("KIEL", service_model)
    engine = BatchImputationEngine(
        registry, max_workers=2, batch_window_ms=30_000.0, batch_max_lanes=64
    )
    (request,) = _gap_requests(service_model, 1, offset=90)
    # Hold the window open so the request below parks instead of flushing.
    holder = engine.dispatcher.enter()
    box = {}

    def work():
        box["result"] = engine.run([request], service_model.config)

    thread = threading.Thread(target=work, daemon=True)
    thread.start()
    time.sleep(0.1)
    assert "result" not in box  # parked in the 30s window
    engine.close()
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert box["result"][0].provenance.path_cache == "miss"
    engine.dispatcher.leave(holder)
    (late,) = engine.run([request], service_model.config)
    assert late.provenance.path_cache == "hit"


def test_engine_window_zero_disables_dispatcher(tmp_path, service_model):
    registry = ModelRegistry(tmp_path / "nodispatch_registry")
    registry.publish("KIEL", service_model)
    engine = BatchImputationEngine(registry, batch_window_ms=0)
    assert engine.dispatcher is None
    (request,) = _gap_requests(service_model, 1, offset=10)
    (result,) = engine.run([request], service_model.config)
    assert result.provenance.path_cache in {"miss", "bypass"}
