"""Real-AIS CSV/parquet loaders: header mapping, coercion, pipeline fit."""

import numpy as np
import pytest

from repro import ais
from repro.ais import schema
from repro.core import clean_messages, segment_trips

MARINE_CADASTRE_CSV = """\
MMSI,BaseDateTime,LAT,LON,SOG,COG,Heading,VesselName,VesselType
367000001,2023-01-01T00:00:00,54.5000,10.2000,8.5,120.0,119,EVER FORWARD,Cargo
367000001,2023-01-01T00:00:30,54.5010,10.2030,8.6,121.0,120,EVER FORWARD,Cargo
367000001,2023-01-01T00:01:00,54.5020,10.2060,8.4,122.0,121,EVER FORWARD,Cargo
219000002,2023-01-01T00:00:10,55.1000,11.3000,11.2,200.0,199,FERRY ONE,Passenger
219000002,2023-01-01T00:00:40,55.0990,11.2970,11.1,201.0,200,FERRY ONE,Passenger
"""

DANISH_CSV = """\
# Timestamp,Type of mobile,MMSI,Latitude,Longitude,Navigational status,ROT,SOG,COG,Heading,Ship type
23/02/2023 00:00:00,Class A,219000001,56.1000,11.2000,Under way using engine,0,9.1,45.0,44,Tanker
23/02/2023 00:00:30,Class A,219000001,56.1010,11.2020,Under way using engine,0,9.2,46.0,45,Tanker
23/02/2023 00:01:00,Class A,219000001,56.1020,11.2040,Under way using engine,0,9.0,47.0,46,Tanker
"""


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


def test_read_csv_marine_cadastre_style(tmp_path):
    table = ais.read_csv(_write(tmp_path, "mc.csv", MARINE_CADASTRE_CSV))
    assert table.column_names == list(schema.RAW_COLUMNS)
    assert table.num_rows == 5
    vessel = table.column(schema.VESSEL_ID)
    assert vessel.dtype == np.int64
    assert set(vessel.tolist()) == {367000001, 219000002}
    t = table.column(schema.T)
    assert t.dtype == np.float64
    # ISO timestamps 30 s apart become epoch seconds 30 s apart.
    first_vessel = t[vessel == 367000001]
    assert np.allclose(np.diff(first_vessel), 30.0)
    assert np.allclose(table.column(schema.LAT)[:3], [54.5, 54.501, 54.502])
    # Vessel classes are normalised to lowercase (the generators' style).
    assert set(table.column(schema.VESSEL_TYPE).tolist()) == {"cargo", "passenger"}


def test_read_csv_danish_style(tmp_path):
    table = ais.read_csv(_write(tmp_path, "dk.csv", DANISH_CSV))
    assert table.num_rows == 3
    t = table.column(schema.T)
    assert np.allclose(np.diff(t), 30.0)  # dd/mm/yyyy HH:MM:SS parsed
    assert np.all(table.column(schema.VESSEL_ID) == 219000001)
    assert set(table.column(schema.VESSEL_TYPE).tolist()) == {"tanker"}
    assert np.allclose(table.column(schema.SOG), [9.1, 9.2, 9.0])


def test_read_csv_missing_required_column(tmp_path):
    headerless = MARINE_CADASTRE_CSV.replace("LON", "FOO")
    with pytest.raises(ais.AISFormatError, match="lon"):
        ais.read_csv(_write(tmp_path, "bad.csv", headerless))


def test_read_csv_empty_file(tmp_path):
    with pytest.raises(ais.AISFormatError, match="empty"):
        ais.read_csv(_write(tmp_path, "empty.csv", ""))


def test_read_csv_optional_columns_default(tmp_path):
    text = "mmsi,epoch,latitude,longitude\n1,0.0,54.0,10.0\n1,30.0,54.01,10.01\n"
    table = ais.read_csv(_write(tmp_path, "min.csv", text))
    assert table.num_rows == 2
    assert np.all(table.column(schema.SOG) == 0.0)
    assert np.all(table.column(schema.COG) == 0.0)
    assert set(table.column(schema.VESSEL_TYPE).tolist()) == {"unknown"}


def test_read_csv_drops_and_coerces_bad_rows(tmp_path):
    text = (
        "MMSI,BaseDateTime,LAT,LON,SOG,COG\n"
        "1,2023-01-01T00:00:00,54.0,10.0,5.0,90.0\n"
        "not-a-vessel,2023-01-01T00:00:30,54.0,10.0,5.0,90.0\n"  # dropped
        "1,never,54.0,10.0,5.0,90.0\n"  # dropped
        "1,2023-01-01T00:01:00,bogus,10.1,5.0,90.0\n"  # lat -> NaN, kept
        "1,2023-01-01T00:01:30,54.2,10.2\n"  # short row skipped
    )
    table = ais.read_csv(_write(tmp_path, "messy.csv", text))
    assert table.num_rows == 2  # identity/time failures dropped, short row skipped
    lat = table.column(schema.LAT)
    assert np.isfinite(lat[0]) and np.isnan(lat[1])
    # clean_messages owns the policy for the NaN survivor.
    cleaned = clean_messages(table)
    assert cleaned.num_rows == 1


def test_read_csv_feeds_the_pipeline(tmp_path):
    # A denser dump: one vessel, 20 reports, 30 s cadence -> one trip.
    rows = ["MMSI,Timestamp,Latitude,Longitude,SOG,COG,Ship type"]
    for i in range(20):
        rows.append(
            f"219000009,{float(i) * 30.0},{54.0 + i * 1e-3:.4f},{10.0 + i * 1e-3:.4f},"
            f"8.0,45.0,Cargo"
        )
    table = ais.read_csv(_write(tmp_path, "trip.csv", "\n".join(rows) + "\n"))
    trips = segment_trips(clean_messages(table))
    assert schema.TRIP_ID in trips
    assert len(np.unique(trips.column(schema.TRIP_ID))) == 1
    assert trips.num_rows == 20


def test_read_csv_keeps_long_vessel_type_labels(tmp_path):
    text = (
        "MMSI,epoch,Latitude,Longitude,Ship type\n"
        "1,0.0,54.0,10.0,Not party to conflict\n"
    )
    table = ais.read_csv(_write(tmp_path, "long.csv", text))
    assert table.column(schema.VESSEL_TYPE)[0] == "not party to conflict"


def test_to_epoch_drops_nat_timestamps():
    from repro.ais.reader import _to_epoch

    stamped = np.array(["2023-01-01T00:00:00", "NaT"], dtype="datetime64[s]")
    out = _to_epoch(stamped)
    assert np.isfinite(out[0]) and np.isnan(out[1])  # NaT must not pass as -2**63 ns


def test_read_parquet_is_gated_or_works(tmp_path):
    try:
        import pandas as pd
    except ImportError:
        with pytest.raises(RuntimeError, match="pandas"):
            ais.read_parquet(tmp_path / "missing.parquet")
        return
    frame = pd.DataFrame(
        {
            "MMSI": [219000001, 219000001],
            "BaseDateTime": pd.to_datetime(["2023-01-01T00:00:00", "2023-01-01T00:00:30"]),
            "LAT": [54.0, 54.01],
            "LON": [10.0, 10.01],
            "SOG": [8.0, 8.1],
            "COG": [90.0, 91.0],
            "VesselType": ["Cargo", "Cargo"],
        }
    )
    path = tmp_path / "dump.parquet"
    try:
        frame.to_parquet(path)
    except ImportError:
        pytest.skip("pandas present but no parquet engine")
    table = ais.read_parquet(path)
    assert table.num_rows == 2
    assert np.allclose(np.diff(table.column(schema.T)), 30.0)
    assert set(table.column(schema.VESSEL_TYPE).tolist()) == {"cargo"}
