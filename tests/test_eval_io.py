"""Evaluation harness and GeoJSON export."""

import json

import numpy as np

from repro.baselines import StraightLineImputer
from repro.eval import evaluate_imputer
from repro.experiments.common import Gap
from repro.io import feature_collection, linestring_feature, point_feature, write_geojson


def _fake_gaps(n=3):
    gaps = []
    for i in range(n):
        lats = 55.0 + i * 0.01 + np.linspace(0.0, 0.02, 9)
        lngs = 10.0 + np.linspace(0.0, 0.03, 9)
        gaps.append(
            Gap(
                start=(float(lats[0]), float(lngs[0])),
                end=(float(lats[-1]), float(lngs[-1])),
                truth_lats=lats,
                truth_lngs=lngs,
                duration_s=3600.0,
                trip_id=i,
            )
        )
    return gaps


def test_evaluate_imputer_aggregates():
    gaps = _fake_gaps()
    result = evaluate_imputer(StraightLineImputer(), gaps, "SLI")
    assert result.name == "SLI"
    assert result.num_gaps == 3
    assert len(result.dtw_m) == 3
    assert np.all(np.isfinite(result.dtw_m))
    assert result.mean_dtw_m >= 0.0
    assert result.mean_latency_s >= 0.0
    assert result.storage_bytes == 0
    assert result.fallback_rate == 0.0


def test_evaluate_without_storage():
    result = evaluate_imputer(
        StraightLineImputer(), _fake_gaps(1), "SLI", measure_storage=False
    )
    assert result.storage_bytes is None


def test_geojson_shapes(tmp_path):
    line = linestring_feature([55.0, 55.1], [10.0, 10.1], {"name": "truth"})
    assert line["geometry"]["type"] == "LineString"
    # GeoJSON is [lng, lat] ordered.
    assert line["geometry"]["coordinates"][0] == [10.0, 55.0]
    point = point_feature(55.0, 10.0, {"kind": "endpoint"})
    assert point["geometry"]["coordinates"] == [10.0, 55.0]
    collection = feature_collection([line, point])
    assert collection["type"] == "FeatureCollection"
    path = write_geojson(collection, tmp_path / "case.geojson")
    assert path.exists()
    loaded = json.loads(path.read_text())
    assert loaded["features"][0]["properties"]["name"] == "truth"
