"""Shared unit-test fixtures: one tiny prepared dataset per session."""

import numpy as np
import pytest

from repro.experiments import common


@pytest.fixture(scope="session")
def tiny_cache(tmp_path_factory):
    return str(tmp_path_factory.mktemp("tiny_data"))


@pytest.fixture(scope="session")
def tiny_kiel(tiny_cache):
    """A miniature KIEL dataset shared by the integration-flavoured tests."""
    return common.prepare("KIEL", scale=0.02, cache_dir=tiny_cache)


@pytest.fixture(scope="session")
def service_model(tiny_kiel):
    """One fitted KIEL model shared by the serving-layer tests."""
    from repro.core import HabitConfig, HabitImputer

    return HabitImputer(HabitConfig(resolution=9, tolerance_m=100.0)).fit_from_trips(
        tiny_kiel.train
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(7)
