"""Shared unit-test fixtures: one tiny prepared dataset per session."""

import numpy as np
import pytest

from repro.experiments import common


@pytest.fixture(scope="session")
def tiny_cache(tmp_path_factory):
    return str(tmp_path_factory.mktemp("tiny_data"))


@pytest.fixture(scope="session")
def tiny_kiel(tiny_cache):
    """A miniature KIEL dataset shared by the integration-flavoured tests."""
    return common.prepare("KIEL", scale=0.02, cache_dir=tiny_cache)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)
