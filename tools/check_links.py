#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every tracked ``*.md`` file for ``[text](target)`` links, resolves
relative targets against the file's directory, and exits non-zero
listing any that point at nothing.  External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#...``) are skipped; a relative
target's ``#anchor`` suffix is ignored (only file existence is checked).

Run from anywhere inside the repo::

    python tools/check_links.py
"""

import re
import sys
from pathlib import Path

#: Inline markdown links; images share the syntax (the leading ``!`` is
#: irrelevant to target resolution).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_DIRS = {".git", ".pytest_cache", ".cache", "__pycache__", "node_modules"}


def iter_markdown(root):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_DIRS.intersection(part for part in path.parts):
            yield path


def check(root):
    broken = []
    for path in iter_markdown(root):
        text = path.read_text(encoding="utf-8")
        # Fenced code blocks legitimately contain link-shaped syntax
        # (e.g. JSON examples); strip them before scanning.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                continue  # in-page anchor
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                broken.append((path.relative_to(root), target))
    return broken


def main():
    root = Path(__file__).resolve().parent.parent
    broken = check(root)
    if broken:
        print(f"{len(broken)} broken intra-repo markdown link(s):")
        for source, target in broken:
            print(f"  {source}: {target}")
        return 1
    print("all intra-repo markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
