#!/usr/bin/env python3
"""Run the README's quickstart and live-refresh stories as a smoke test.

Two stages, both against temp directories (nothing lands in the repo):

1. **Quickstart** -- extracts the first ``python`` code block under the
   README's "## Quickstart" heading and ``exec``s it verbatim, so the
   snippet users copy-paste is guaranteed runnable.
2. **Live refresh** -- drives the README's live-refresh story through
   the public API at test scale: fit a model into a registry, start a
   :class:`repro.service.FollowDaemon` plus HTTP server over a growing
   dump, append rows, and wait for the ``/models`` revision to bump.
   Then a ``POST /impute`` exercises the serving path and ``GET
   /metrics`` is scraped: every ``repro_*`` metric named in the
   ``docs/OPERATIONS.md`` Monitoring catalogue must appear in the
   scrape, so the documented catalogue cannot drift from the code.
   Pass ``--models-feed FILE`` / ``--metrics-scrape FILE`` to save the
   final ``/models`` payload and the raw Prometheus scrape (CI uploads
   both as artifacts).

Usage::

    python tools/docs_smoke.py [--models-feed models_feed.json]
                               [--metrics-scrape metrics_scrape.txt]
"""

import argparse
import json
import os
import re
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))


def run_quickstart(workdir):
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    section = readme.split("## Quickstart", 1)[1]
    match = re.search(r"```python\n(.*?)```", section, flags=re.DOTALL)
    if match is None:
        raise SystemExit("README.md: no python code block under '## Quickstart'")
    snippet = match.group(1)
    os.chdir(workdir)  # the snippet writes its dataset cache to ./.cache
    print("-- quickstart snippet --")
    exec(compile(snippet, "README.md#quickstart", "exec"), {"__name__": "__main__"})


def _get_json(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


def _get_text(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.read().decode("utf-8")


def _post_json(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


def documented_metrics():
    """Every ``repro_*`` metric named in the OPERATIONS.md Monitoring section.

    The section must also state its own size ("catalogue covers **N**
    series"), and N must equal the number of distinct metric names found
    -- so a new metric cannot land half-documented (named in a playbook
    but missing from the catalogue table, or added to the code with the
    count left stale).
    """
    ops = (REPO / "docs" / "OPERATIONS.md").read_text(encoding="utf-8")
    if "## 4. Monitoring" not in ops:
        raise SystemExit("docs/OPERATIONS.md: no '## 4. Monitoring' section")
    section = ops.split("## 4. Monitoring", 1)[1].split("\n## ", 1)[0]
    names = sorted(set(re.findall(r"\brepro_[a-z_]+", section)))
    if len(names) < 10:
        raise SystemExit(
            f"docs/OPERATIONS.md: Monitoring catalogue looks gutted ({names})"
        )
    declared = re.search(r"catalogue covers \*\*(\d+)\*\* series", section)
    if declared is None:
        raise SystemExit(
            "docs/OPERATIONS.md: Monitoring section must declare its size "
            "('catalogue covers **N** series')"
        )
    if int(declared.group(1)) != len(names):
        raise SystemExit(
            f"docs/OPERATIONS.md: Monitoring section declares "
            f"{declared.group(1)} series but names {len(names)} distinct "
            f"repro_* metrics -- update the count alongside the catalogue"
        )
    return names


def check_metrics_scrape(base, data, scrape_path):
    """POST an impute batch, scrape /metrics, verify the documented catalogue."""
    print("-- metrics scrape --")
    gap = data.gaps(3600.0)[0]
    reply = _post_json(
        base,
        "/impute",
        {"dataset": "KIEL", "start": list(gap.start), "end": list(gap.end)},
    )
    assert reply["count"] == 1, reply
    scrape = _get_text(base, "/metrics")
    missing = [name for name in documented_metrics() if name not in scrape]
    if missing:
        raise SystemExit(
            "documented in docs/OPERATIONS.md but absent from /metrics: "
            + ", ".join(missing)
        )
    samples = sum(1 for line in scrape.splitlines() if not line.startswith("#"))
    print(
        f"scrape: {samples} samples, all {len(documented_metrics())} "
        f"documented metrics present"
    )
    if scrape_path:
        scrape_path.write_text(scrape)
        print(f"wrote /metrics scrape to {scrape_path}")


def run_live_refresh(workdir, feed_path, scrape_path):
    from repro.core import HabitConfig, HabitImputer
    from repro.experiments import common
    from repro.service import FollowDaemon, ModelRegistry, make_server

    print("-- live refresh --")
    config = HabitConfig(resolution=9)
    data = common.prepare("KIEL", scale=0.02, cache_dir=str(workdir / "data"))
    registry = ModelRegistry(workdir / "models")
    registry.publish("KIEL", HabitImputer(config).fit_from_trips(data.train))

    dump = workdir / "live.csv"
    dump.write_text("vessel_id,t,lat,lon,sog,cog,vessel_type\n")
    daemon = FollowDaemon(
        registry, dump, "KIEL", config=config,
        refresh_interval_s=0.1, poll_interval_s=0.05,
    ).start()
    server = make_server(registry, port=0, follow=daemon)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = "http://{}:{}".format(*server.server_address[:2])
    try:
        (entry,) = _get_json(base, "/models")["models"]
        assert entry["revision"] == 1, entry
        with open(dump, "a") as handle:
            t0 = 1_000_000
            for i in range(20):
                handle.write(f"901,{t0 + 30 * i},{54.4 + 0.001 * i:.6f},{10.3 + 0.001 * i:.6f},8.0,45.0,cargo\n")
            handle.write(f"901,{t0 + 9000},54.4,10.3,8.0,45.0,cargo\n")
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            (entry,) = _get_json(base, "/models")["models"]
            if (entry["revision"] or 0) >= 2:
                break
            time.sleep(0.1)
        else:
            raise SystemExit(f"revision never bumped; last /models entry: {entry}")
        print(
            f"revision {entry['revision']}, rows_ingested {entry['rows_ingested']}, "
            f"follow status: {daemon.status()}"
        )
        if feed_path:
            feed_path.write_text(json.dumps(_get_json(base, "/models"), indent=2))
            print(f"wrote /models feed to {feed_path}")
        check_metrics_scrape(base, data, scrape_path)
    finally:
        daemon.stop()
        server.shutdown()
        server.server_close()
        server.engine.close()
        thread.join(timeout=5)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--models-feed",
        type=Path,
        default=None,
        help="write the final /models payload to this file",
    )
    parser.add_argument(
        "--metrics-scrape",
        type=Path,
        default=None,
        help="write the raw /metrics Prometheus scrape to this file",
    )
    args = parser.parse_args()
    feed_path = args.models_feed.resolve() if args.models_feed else None
    scrape_path = args.metrics_scrape.resolve() if args.metrics_scrape else None
    with tempfile.TemporaryDirectory(prefix="docs-smoke-") as tmp:
        workdir = Path(tmp)
        run_quickstart(workdir)
        run_live_refresh(workdir, feed_path, scrape_path)
    print("docs smoke: OK")


if __name__ == "__main__":
    main()
