#!/usr/bin/env python3
"""Run the README's quickstart and live-refresh stories as a smoke test.

Two stages, both against temp directories (nothing lands in the repo):

1. **Quickstart** -- extracts the first ``python`` code block under the
   README's "## Quickstart" heading and ``exec``s it verbatim, so the
   snippet users copy-paste is guaranteed runnable.
2. **Live refresh** -- drives the README's live-refresh story through
   the public API at test scale: fit a model into a registry, start a
   :class:`repro.service.FollowDaemon` plus HTTP server over a growing
   dump, append rows, and wait for the ``/models`` revision to bump.
   Pass ``--models-feed FILE`` to save the final ``/models`` payload
   (CI uploads it as an artifact).

Usage::

    python tools/docs_smoke.py [--models-feed models_feed.json]
"""

import argparse
import json
import os
import re
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))


def run_quickstart(workdir):
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    section = readme.split("## Quickstart", 1)[1]
    match = re.search(r"```python\n(.*?)```", section, flags=re.DOTALL)
    if match is None:
        raise SystemExit("README.md: no python code block under '## Quickstart'")
    snippet = match.group(1)
    os.chdir(workdir)  # the snippet writes its dataset cache to ./.cache
    print("-- quickstart snippet --")
    exec(compile(snippet, "README.md#quickstart", "exec"), {"__name__": "__main__"})


def _get_json(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


def run_live_refresh(workdir, feed_path):
    from repro.core import HabitConfig, HabitImputer
    from repro.experiments import common
    from repro.service import FollowDaemon, ModelRegistry, make_server

    print("-- live refresh --")
    config = HabitConfig(resolution=9)
    data = common.prepare("KIEL", scale=0.02, cache_dir=str(workdir / "data"))
    registry = ModelRegistry(workdir / "models")
    registry.publish("KIEL", HabitImputer(config).fit_from_trips(data.train))

    dump = workdir / "live.csv"
    dump.write_text("vessel_id,t,lat,lon,sog,cog,vessel_type\n")
    daemon = FollowDaemon(
        registry, dump, "KIEL", config=config,
        refresh_interval_s=0.1, poll_interval_s=0.05,
    ).start()
    server = make_server(registry, port=0, follow=daemon)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = "http://{}:{}".format(*server.server_address[:2])
    try:
        (entry,) = _get_json(base, "/models")["models"]
        assert entry["revision"] == 1, entry
        with open(dump, "a") as handle:
            t0 = 1_000_000
            for i in range(20):
                handle.write(f"901,{t0 + 30 * i},{54.4 + 0.001 * i:.6f},{10.3 + 0.001 * i:.6f},8.0,45.0,cargo\n")
            handle.write(f"901,{t0 + 9000},54.4,10.3,8.0,45.0,cargo\n")
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            (entry,) = _get_json(base, "/models")["models"]
            if (entry["revision"] or 0) >= 2:
                break
            time.sleep(0.1)
        else:
            raise SystemExit(f"revision never bumped; last /models entry: {entry}")
        print(
            f"revision {entry['revision']}, rows_ingested {entry['rows_ingested']}, "
            f"follow status: {daemon.status()}"
        )
        if feed_path:
            feed_path.write_text(json.dumps(_get_json(base, "/models"), indent=2))
            print(f"wrote /models feed to {feed_path}")
    finally:
        daemon.stop()
        server.shutdown()
        server.server_close()
        server.engine.close()
        thread.join(timeout=5)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--models-feed",
        type=Path,
        default=None,
        help="write the final /models payload to this file",
    )
    args = parser.parse_args()
    feed_path = args.models_feed.resolve() if args.models_feed else None
    with tempfile.TemporaryDirectory(prefix="docs-smoke-") as tmp:
        workdir = Path(tmp)
        run_quickstart(workdir)
        run_live_refresh(workdir, feed_path)
    print("docs smoke: OK")


if __name__ == "__main__":
    main()
